"""Baseline designs: no DRAM cache, and a perfect L3 (Table 3's reference).

``NoCacheDesign`` sends every L3 miss to off-chip memory — the baseline all
of the paper's speedups are normalized to. ``PerfectL3Design`` services every
access at L3 latency (charged by the system loop), which is how Table 3's
"Perfect-L3 Speedup" workload characterization is computed.
"""

from __future__ import annotations

from repro.dramcache.base import AccessOutcome, DramCacheDesign
from repro.lifecycle import STAGE_MEMORY, LatencyBreakdown


class NoCacheDesign(DramCacheDesign):
    """Baseline memory system without a DRAM cache."""

    name = "no-cache"

    def access(self, now, line_address, is_write, pc, core_id):
        if is_write:
            self._record_write(hit=False)
            self._schedule_memory_write(now, line_address)
            return AccessOutcome(
                done=now, cache_hit=False, served_by_memory=True
            )
        result = self._memory_read(now, line_address)
        self._record_read(hit=False, latency=result.done - now)
        breakdown = self._attribute(LatencyBreakdown(), result, STAGE_MEMORY)
        return AccessOutcome(
            done=result.done,
            cache_hit=False,
            served_by_memory=True,
            breakdown=breakdown,
        )


class PerfectL3Design(DramCacheDesign):
    """Idealized 100%-hit L3: every access completes at the L3 boundary.

    The system loop already charges the L3 latency before calling the
    design, so the perfect L3 adds nothing.
    """

    name = "perfect-l3"

    def access(self, now, line_address, is_write, pc, core_id):
        if is_write:
            self._record_write(hit=True)
            return AccessOutcome(done=now, cache_hit=True, served_by_memory=False)
        self._record_read(hit=True, latency=0.0)
        return AccessOutcome(
            done=now,
            cache_hit=True,
            served_by_memory=False,
            breakdown=LatencyBreakdown(),
        )
