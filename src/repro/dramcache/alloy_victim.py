"""Alloy Cache + SRAM victim buffer (the paper's §6.7 future-work direction).

The paper closes by inviting research into reducing the direct-mapped Alloy
Cache's conflict misses *without* hurting hit latency. This design explores
the classic answer: a small fully-associative SRAM victim buffer
(Jouppi-style) holding the last N evicted TADs.

* The buffer is SRAM next to the cache controller: it is probed in parallel
  with the MAP predictor, so a victim hit is served in a few cycles and the
  TAD probe / memory access are skipped entirely.
* On a DRAM-cache fill, the displaced TAD moves into the victim buffer; a
  line falling out of the buffer goes to memory if dirty.
* On a victim hit the line is *swapped back*: it refills the DRAM cache
  (background) and the displaced occupant takes its slot in the buffer.

Conflict pairs that ping-pong in the direct-mapped array therefore ride the
buffer — recovering associativity where it is needed while keeping the
common-case hit a single 80-byte TAD burst.
"""

from __future__ import annotations

from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import SetAssocCache
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.base import AccessOutcome
from repro.lifecycle import STAGE_DATA, LatencyBreakdown

#: Cycles to read a line out of the small SRAM victim buffer.
VICTIM_HIT_CYCLES = 3


class AlloyVictimDesign(AlloyCacheDesign):
    """Direct-mapped Alloy Cache backed by an SRAM victim buffer."""

    def __init__(
        self,
        config,
        stacked,
        memory,
        schedule,
        predictor=None,
        victim_entries: int = 16,
    ) -> None:
        from repro.cache.missmap import MissMap

        if isinstance(predictor, MissMap):
            raise ValueError("the victim-buffer variant does not take a MissMap")
        super().__init__(config, stacked, memory, schedule, predictor=predictor)
        self.name = f"{self.name}+victim{victim_entries}"
        self.stats.name = self.name
        self.victim_entries = victim_entries
        #: Fully associative LRU buffer of evicted lines (one set, N ways).
        self.victims = SetAssocCache(
            1, victim_entries, policy=LRUPolicy(), name=f"{self.name}-buffer"
        )

    # ------------------------------------------------------------------
    def warm(self, line_address, is_write, pc, core_id):
        if not is_write and self.victims.probe(line_address):
            self.victims.lookup(line_address)  # refresh buffer LRU state
            self._swap_back_functional(line_address)
            self._train(core_id, pc, went_to_memory=False)
            return
        hit = self.cache.lookup(line_address, is_write=is_write)
        if is_write:
            return
        if not hit:
            evicted = self.cache.fill(line_address)
            if evicted.valid:
                self._stash_victim_functional(evicted)
        self._train(core_id, pc, went_to_memory=not hit)

    def access(self, now, line_address, is_write, pc, core_id):
        if not is_write and self.victims.lookup(line_address):
            # SRAM victim hit: served without touching DRAM at all.
            self.stats.counter("victim_hits").add()
            self._classify(predicted_memory=False, actual_memory=False)
            done = now + VICTIM_HIT_CYCLES
            self._record_read(hit=True, latency=done - now)
            self._train(core_id, pc, went_to_memory=False)
            self._swap_back(now, line_address)
            return AccessOutcome(
                done=done, cache_hit=True, served_by_memory=False,
                predicted_memory=False,
                # An SRAM read next to the controller: pure data service.
                breakdown=LatencyBreakdown({STAGE_DATA: float(VICTIM_HIT_CYCLES)}),
            )
        return super().access(now, line_address, is_write, pc, core_id)

    # ------------------------------------------------------------------
    def _swap_back_functional(self, line_address: int) -> None:
        """Move a buffered line back into the cache, displacing the occupant
        into the buffer (functional part shared with warmup)."""
        dirty = self.victims.is_dirty(line_address)
        self.victims.invalidate(line_address)
        displaced = self.cache.fill(line_address, dirty=dirty)
        if displaced.valid:
            self._stash_victim_functional(displaced)

    def _stash_victim_functional(self, evicted) -> None:
        overflow = self.victims.fill(evicted.line_address, dirty=evicted.dirty)
        if overflow.valid and overflow.dirty:
            self._overflow_writeback(overflow.line_address)

    def _overflow_writeback(self, line_address: int) -> None:
        self.schedule(0.0, lambda t, a=line_address: self._memory_write(t, a))

    def _swap_back(self, now: float, line_address: int) -> None:
        self._swap_back_functional(line_address)
        # The refill writes a TAD into the DRAM cache in the background.
        set_index, loc = self._set_and_loc(line_address)
        self.schedule(
            now,
            lambda t, loc=loc, burst=self._tad_burst(set_index): self.stacked.access(
                t, loc, burst, is_write=True, background=True
            ),
        )

    # ------------------------------------------------------------------
    def _fill(self, now: float, line_address: int) -> None:
        """As the base fill, but displaced victims drop into the buffer
        instead of (if dirty) going straight to memory."""
        set_index, loc = self._set_and_loc(line_address)
        burst = self._tad_burst(set_index)
        evicted = self.cache.fill(line_address)
        if evicted.valid:
            self._stash_victim_functional(evicted)
        self.stacked.access(now, loc, burst, is_write=True, background=True)
        self.stats.counter("fills").add()

    # ------------------------------------------------------------------
    @property
    def victim_hit_rate(self) -> float:
        hits = self.stats.counter("victim_hits").value
        reads = (
            self.stats.counter("read_hits").value
            + self.stats.counter("read_misses").value
        )
        return hits / reads if reads else 0.0

    def sram_overhead_bytes(self) -> int:
        """Victim buffer SRAM: N x 72 B TADs (still tiny vs SRAM-Tags)."""
        return self.victim_entries * 72
