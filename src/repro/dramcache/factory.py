"""Factory building any of the paper's design configurations by name.

Names used throughout the experiments and the CLI:

==========================  ====================================================
Name                        Configuration
==========================  ====================================================
``no-cache``                Baseline: off-chip memory only
``perfect-l3``              100%-hit L3 (Table 3 reference)
``sram-tag``                SRAM tags, 32-way, DIP (Section 2.1)
``sram-tag-1way``           SRAM tags, direct-mapped (Table 1)
``lh-cache``                LH-Cache, 29-way, DIP + MissMap (Section 2.2)
``lh-cache-rand``           LH-Cache with random replacement (Table 1)
``lh-cache-1way``           LH-Cache, direct-mapped variant (Table 1)
``alloy-nopred``            Alloy Cache, no predictor (pure SAM, Figure 6)
``alloy-missmap``           Alloy Cache + MissMap predictor (Figure 6)
``alloy-sam``               Alloy Cache + static SAM (Figure 8)
``alloy-pam``               Alloy Cache + static PAM (Figure 8)
``alloy-map-g``             Alloy Cache + MAP-Global (Figure 8)
``alloy-map-i``             Alloy Cache + MAP-Instruction (the paper's design)
``alloy-perfect``           Alloy Cache + perfect predictor (Figure 8)
``alloy-burst8``            Alloy + MAP-I, 8-beat bursts (Section 6.5)
``alloy-2way``              Two-way Alloy + MAP-I (Section 6.7)
``alloy-4way``              Four-way Alloy + MAP-I (associativity sweep)
``alloy-victim16/64``       Alloy + MAP-I + SRAM victim buffer (extension)
``ideal-lo``                IDEAL-LO bound (Section 2.3)
``ideal-lo-notag``          IDEAL-LO with zero tag overhead (Table 7)
==========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.missmap import MissMap
from repro.cache.replacement import make_policy
from repro.core.predictors import make_predictor
from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.alloy_victim import AlloyVictimDesign
from repro.dramcache.base import DramCacheDesign, Scheduler
from repro.dramcache.ideal_lo import IdealLODesign
from repro.dramcache.lh_cache import LHCacheDesign
from repro.dramcache.no_cache import NoCacheDesign, PerfectL3Design
from repro.dramcache.sram_tag import SramTagDesign
from repro.sim.config import SystemConfig

_Builder = Callable[
    [SystemConfig, DramDevice, DramDevice, Scheduler], DramCacheDesign
]


def _alloy_with(predictor_name: str, **kwargs) -> _Builder:
    def build(config, stacked, memory, schedule):
        predictor = make_predictor(predictor_name, config.num_cores)
        return AlloyCacheDesign(
            config, stacked, memory, schedule, predictor=predictor, **kwargs
        )

    return build


_BUILDERS: Dict[str, _Builder] = {
    "no-cache": NoCacheDesign,
    "perfect-l3": PerfectL3Design,
    "sram-tag": lambda c, s, m, sch: SramTagDesign(c, s, m, sch, ways=32),
    "sram-tag-1way": lambda c, s, m, sch: SramTagDesign(c, s, m, sch, ways=1),
    "lh-cache": lambda c, s, m, sch: LHCacheDesign(c, s, m, sch, ways=29),
    "lh-cache-rand": lambda c, s, m, sch: LHCacheDesign(
        c, s, m, sch, ways=29, policy=make_policy("random")
    ),
    "lh-cache-1way": lambda c, s, m, sch: LHCacheDesign(c, s, m, sch, ways=1),
    "alloy-nopred": lambda c, s, m, sch: AlloyCacheDesign(
        c, s, m, sch, predictor=None
    ),
    "alloy-missmap": lambda c, s, m, sch: AlloyCacheDesign(
        c, s, m, sch, predictor=MissMap()
    ),
    "alloy-sam": _alloy_with("sam"),
    "alloy-pam": _alloy_with("pam"),
    "alloy-map-g": _alloy_with("map-g"),
    "alloy-map-i": _alloy_with("map-i"),
    "alloy-perfect": _alloy_with("perfect"),
    "alloy-burst8": _alloy_with("map-i", burst_beats=8),
    "alloy-2way": _alloy_with("map-i", ways=2),
    "alloy-4way": _alloy_with("map-i", ways=4),
    "alloy-victim16": lambda c, s, m, sch: AlloyVictimDesign(
        c, s, m, sch, predictor=make_predictor("map-i", c.num_cores),
        victim_entries=16,
    ),
    "alloy-victim64": lambda c, s, m, sch: AlloyVictimDesign(
        c, s, m, sch, predictor=make_predictor("map-i", c.num_cores),
        victim_entries=64,
    ),
    "ideal-lo": lambda c, s, m, sch: IdealLODesign(c, s, m, sch, tag_overhead=True),
    "ideal-lo-notag": lambda c, s, m, sch: IdealLODesign(
        c, s, m, sch, tag_overhead=False
    ),
}

#: All recognised design names, in a stable order for CLIs and reports.
DESIGN_NAMES = tuple(_BUILDERS)


def make_design(
    name: str,
    config: SystemConfig,
    stacked: DramDevice,
    memory: DramDevice,
    schedule: Scheduler,
) -> DramCacheDesign:
    """Build a design by its canonical name."""
    key = name.lower()
    if key not in _BUILDERS:
        raise ValueError(f"unknown design {name!r}; choose from {DESIGN_NAMES}")
    return _BUILDERS[key](config, stacked, memory, schedule)
