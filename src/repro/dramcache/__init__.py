"""DRAM-cache timing designs: one class per organization the paper studies.

Each design combines a functional cache model (what is resident) with a
timing policy (which DRAM accesses each event costs, and in what order).
All designs share the same interface, :class:`~repro.dramcache.base.DramCacheDesign`,
so the system simulator and the experiment harness treat them uniformly.
"""

from repro.dramcache.base import AccessOutcome, DramCacheDesign
from repro.lifecycle import LatencyBreakdown, MemoryRequest
from repro.dramcache.no_cache import NoCacheDesign, PerfectL3Design
from repro.dramcache.sram_tag import SramTagDesign
from repro.dramcache.lh_cache import LHCacheDesign
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.ideal_lo import IdealLODesign
from repro.dramcache.factory import make_design, DESIGN_NAMES

__all__ = [
    "AccessOutcome",
    "DramCacheDesign",
    "MemoryRequest",
    "LatencyBreakdown",
    "NoCacheDesign",
    "PerfectL3Design",
    "SramTagDesign",
    "LHCacheDesign",
    "AlloyCacheDesign",
    "IdealLODesign",
    "make_design",
    "DESIGN_NAMES",
]
