"""Alloy Cache timing design (paper Sections 4-5).

Each access streams one TAD — tag and data in a single burst of five 16 B
beats — so there is no tag serialization: a hit completes when the TAD
arrives. The Memory Access Predictor decides, per L3 read miss, whether to
launch the off-chip access in parallel (PAM) or wait for the tag check
(SAM). On a parallel access, memory data cannot be consumed before the tag
check confirms the line is not dirty in the cache, so the completion time is
``max(tad.done, mem.done)``.

Variants:
* ``burst_beats=8`` — Section 6.5's power-of-two burst restriction (128 B).
* ``ways=2`` — Section 6.7's two-way Alloy (streams two TADs, ~2x burst);
  wider ways (any divisor of 28) scale the same streamed-TAD scheme.
* ``predictor`` — any of :mod:`repro.core.predictors`, the MissMap
  (Figure 6's Alloy+MissMap), or ``None`` for no prediction (pure SAM with
  zero predictor latency).
"""

from __future__ import annotations

from typing import Union

from repro.cache.missmap import MissMap
from repro.core.alloy import AlloyCache
from repro.core.predictors import MemoryAccessPredictor, PerfectPredictor
from repro.dramcache.base import AccessOutcome, DramCacheDesign, RowMapper
from repro.lifecycle import (
    STAGE_DATA,
    STAGE_MEMORY,
    STAGE_PREDICTOR,
    STAGE_TAG,
    LatencyBreakdown,
)


#: Canonical short labels for predictor classes, matching the factory's
#: design names (``alloy-map-i`` etc.).
_PREDICTOR_LABELS = {
    "SamPredictor": "sam",
    "PamPredictor": "pam",
    "MapGPredictor": "map-g",
    "MapIPredictor": "map-i",
    "PerfectPredictor": "perfect",
}

#: Table 5 scenario keys by (predicted_memory, actual_memory); hoisted to
#: module scope so the per-read classification is a tuple-keyed dict hit.
_SCENARIO_KEYS = {
    (True, True): "pred_mem_actual_mem",
    (True, False): "pred_mem_actual_cache",
    (False, True): "pred_cache_actual_mem",
    (False, False): "pred_cache_actual_cache",
}


class AlloyCacheDesign(DramCacheDesign):
    """Direct-mapped TAD cache with dynamic access-model prediction."""

    def __init__(
        self,
        config,
        stacked,
        memory,
        schedule,
        predictor: Union[MemoryAccessPredictor, MissMap, None] = None,
        ways: int = 1,
        burst_beats: int = 0,
    ) -> None:
        pieces = ["alloy"]
        if ways != 1:
            pieces.append(f"{ways}way")
        if burst_beats:
            pieces.append(f"burst{burst_beats}")
        if isinstance(predictor, MemoryAccessPredictor):
            pieces.append(_PREDICTOR_LABELS[type(predictor).__name__])
        elif isinstance(predictor, MissMap):
            pieces.append("missmap")
        else:
            pieces.append("nopred")
        self.name = "-".join(pieces)
        super().__init__(config, stacked, memory, schedule)

        self.cache = AlloyCache(config.scaled_cache_bytes, ways=ways)
        self.predictor = predictor
        self.burst_beats = burst_beats
        self._rows = RowMapper(stacked)
        # --- hot-path precomputation -----------------------------------
        geometry = self.cache.geometry
        self._num_sets = geometry.num_sets
        self._sets_per_row = geometry.sets_per_row
        # The TAD transfer depends only on the set's slot within its row.
        self._burst_by_slot = [
            geometry.transfer_for_set(slot, burst_beats).bus_beats
            for slot in range(geometry.sets_per_row)
        ]
        # RowLocation is immutable, so one instance per cache row can be
        # cached and shared across accesses.
        self._loc_by_row: dict = {}
        # Predictor dispatch resolved once instead of isinstance per read.
        if predictor is None:
            self._pred_kind = 0
        elif isinstance(predictor, MissMap):
            self._pred_kind = 1
        elif predictor.is_perfect:
            self._pred_kind = 2
        else:
            self._pred_kind = 3
            self._pred_latency = max(predictor.latency_cycles, 0)
        self._trainable = isinstance(predictor, MemoryAccessPredictor)
        self._missmap = predictor if isinstance(predictor, MissMap) else None
        self._missmap_latency = config.missmap_latency
        # Lazily-bound stat handles (lazy to keep ``design_stats`` key sets
        # identical to the unoptimized lazy-creation behavior).
        self._scenario_counters: dict = {}
        self._c_tad_row_hits = None
        self._c_wasted = None
        self._c_fills = None

    # ------------------------------------------------------------------
    def _set_and_loc(self, line_address: int):
        set_index = line_address % self._num_sets
        row = set_index // self._sets_per_row
        loc = self._loc_by_row.get(row)
        if loc is None:
            loc = self._loc_by_row[row] = self._rows.locate(row)
        return set_index, loc

    def data_location(self, line_address: int):
        return self._set_and_loc(line_address)[1]

    def _tad_burst(self, set_index: int) -> int:
        return self._burst_by_slot[set_index % self._sets_per_row]

    def _predict_memory(self, now: float, core_id: int, pc: int, actual_miss: bool):
        """Run the predictor; returns (prediction, time prediction is ready).

        ``None`` predictor means no prediction machinery at all: behave like
        SAM without even the 1-cycle predictor latency (Figure 6's
        "Alloy+NoPred"). A MissMap predictor costs an L3 access and is exact.
        """
        kind = self._pred_kind
        if kind == 3:  # MAP family (the common case)
            return self.predictor.predict(core_id, pc), now + self._pred_latency
        if kind == 0:
            return False, now
        if kind == 1:  # MissMap: exact, at an L3 access's cost
            return actual_miss, now + self._missmap_latency
        assert isinstance(self.predictor, PerfectPredictor)
        return self.predictor.predict_with_oracle(actual_miss), now

    def _train(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        if self._trainable:
            self.predictor.update(core_id, pc, went_to_memory)

    def _classify(self, predicted_memory: bool, actual_memory: bool) -> None:
        """Table 5 scenario accounting."""
        scenario = (predicted_memory, actual_memory)
        counter = self._scenario_counters.get(scenario)
        if counter is None:
            counter = self._scenario_counters[scenario] = self.stats.counter(
                _SCENARIO_KEYS[scenario]
            )
        counter.value += 1

    # ------------------------------------------------------------------
    def warm(self, line_address, is_write, pc, core_id):
        hit = self.cache.lookup(line_address, is_write=is_write)
        if is_write:
            return
        if not hit:
            evicted = self.cache.fill(line_address)
            missmap = self._missmap
            if missmap is not None:
                missmap.insert(line_address)
                if evicted.valid:
                    missmap.remove(evicted.line_address)
        self._train(core_id, pc, went_to_memory=not hit)

    # ------------------------------------------------------------------
    def access(self, now, line_address, is_write, pc, core_id):
        set_index, loc = self._set_and_loc(line_address)
        burst = self._burst_by_slot[set_index % self._sets_per_row]
        hit = self.cache.lookup(line_address, is_write=is_write)

        if is_write:
            # Writebacks always use SAM and are off the critical path: probe
            # the TAD, then either write it (hit) or send to memory (miss).
            self._record_write(hit)
            self.schedule(now, lambda t: self._write_traffic(t, line_address, hit))
            return AccessOutcome(done=now, cache_hit=hit, served_by_memory=not hit)

        predicted_memory, pred_ready = self._predict_memory(
            now, core_id, pc, actual_miss=not hit
        )
        self._classify(predicted_memory, actual_memory=not hit)
        breakdown = LatencyBreakdown({STAGE_PREDICTOR: pred_ready - now})

        # The TAD probe always happens (tags live in the TAD).
        tad = self.stacked.access(pred_ready, loc, burst)
        if tad.row_hit:
            c = self._c_tad_row_hits
            if c is None:
                c = self._c_tad_row_hits = self.stats.counter("tad_row_hits")
            c.value += 1

        if hit:
            if predicted_memory:
                # Wasted parallel memory access: bandwidth cost only.
                self._memory_read(pred_ready, line_address)
                c = self._c_wasted
                if c is None:
                    c = self._c_wasted = self.stats.counter("wasted_memory_reads")
                c.value += 1
            done = tad.done
            # The TAD stream *is* the data access: no tag serialization.
            breakdown.attribute_device(tad, STAGE_DATA)
            self._record_read(hit=True, latency=done - now)
            self._train(core_id, pc, went_to_memory=False)
            return AccessOutcome(
                done=done,
                cache_hit=True,
                served_by_memory=False,
                predicted_memory=predicted_memory,
                breakdown=breakdown,
            )

        if predicted_memory:
            mem = self._memory_read(pred_ready, line_address)
            # Memory data is usable only after the tag check rules out a
            # dirty copy in the cache.
            done = max(mem.done, tad.done)
            # Attribute the critical path; the shorter leg fully overlaps.
            # When the tag check gates consumption, the probe is pure tag
            # serialization; otherwise the memory access alone is exposed.
            if tad.done > mem.done:
                breakdown.attribute_device(tad, STAGE_TAG)
            else:
                breakdown.attribute_device(mem, STAGE_MEMORY)
        else:
            # Serial Access Model: the probe rules the access a miss before
            # memory is consulted — tag serialization, then memory.
            breakdown.attribute_device(tad, STAGE_TAG)
            mem = self._memory_read(tad.done, line_address)  # serialized (SAM)
            breakdown.attribute_device(mem, STAGE_MEMORY)
            done = mem.done
        self._record_read(hit=False, latency=done - now)
        self._train(core_id, pc, went_to_memory=True)
        self.schedule(done, lambda t: self._fill(t, line_address))
        return AccessOutcome(
            done=done,
            cache_hit=False,
            served_by_memory=True,
            predicted_memory=predicted_memory,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def _write_traffic(self, now: float, line_address: int, hit: bool) -> None:
        set_index, loc = self._set_and_loc(line_address)
        burst = self._tad_burst(set_index)
        probe = self.stacked.access(now, loc, burst, background=True)
        if hit:
            self.stacked.access(probe.done, loc, burst, is_write=True, background=True)
        else:
            self._memory_write(probe.done, line_address)

    def _fill(self, now: float, line_address: int) -> None:
        """Write the new TAD; the probe already streamed the victim out, so
        a dirty victim goes straight to memory with no extra cache read."""
        set_index, loc = self._set_and_loc(line_address)
        burst = self._burst_by_slot[set_index % self._sets_per_row]
        evicted = self.cache.fill(line_address)
        missmap = self._missmap
        if missmap is not None:
            missmap.insert(line_address)
            if evicted.valid:
                missmap.remove(evicted.line_address)
        if evicted.valid and evicted.dirty:
            self._schedule_memory_write(now, evicted.line_address)
        self.stacked.access(now, loc, burst, is_write=True, background=True)
        c = self._c_fills
        if c is None:
            c = self._c_fills = self.stats.counter("fills")
        c.value += 1
