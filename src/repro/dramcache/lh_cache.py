"""LH-Cache: tags-in-DRAM with a MissMap (Loh & Hill, Sections 2.2 / 2.4).

Organization: each 2 KB stacked row holds 3 tag lines plus 29 data lines and
forms one 29-way set. Every L3 miss first queries the MissMap embedded in
the L3 (24-cycle *Predictor Serialization Latency*, hit and miss alike).

* **Hit**: read the tag lines (ACT+CAS + 3-line burst), one cycle of tag
  check, then the data line — guaranteed a row-buffer hit by *Compound
  Access Scheduling* (the bank stays reserved between the two accesses).
  The replacement update (LRU/DIP) writes a tag line back, consuming
  bandwidth; the Table 1 random-replacement de-optimization drops it.
* **Miss**: the MissMap is exact, so the request goes straight to memory at
  t+24. The fill still needs the tag lines (victim selection + dirty check),
  then writes the data line and the updated tags — the ~4x per-access
  traffic of Section 2.5.

The direct-mapped de-optimization (Table 1) keeps the 3-tag-line row layout
but treats the 29 data lines of a row as 29 consecutive direct-mapped sets,
so only one tag line is streamed and spatially-local accesses get row-buffer
hits.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.missmap import MissMap
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.set_assoc import SetAssocCache
from repro.dramcache.base import AccessOutcome, DramCacheDesign, RowMapper
from repro.lifecycle import (
    STAGE_DATA,
    STAGE_MEMORY,
    STAGE_PREDICTOR,
    STAGE_TAG,
    LatencyBreakdown,
)
from repro.units import LH_TAG_LINES, LH_WAYS, ROW_BUFFER_SIZE

#: One stacked-DRAM clock (2 CPU cycles) to compare the streamed-out tags
#: against the request address.
TAG_CHECK_CYCLES = 2


class LHCacheDesign(DramCacheDesign):
    """The Loh-Hill DRAM cache with an idealized MissMap."""

    def __init__(
        self,
        config,
        stacked,
        memory,
        schedule,
        ways: int = LH_WAYS,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        if ways not in (1, LH_WAYS):
            raise ValueError("LH-Cache supports 29-way or the 1-way variant")
        self.ways = ways
        if policy is None:
            policy = make_policy("dip") if ways > 1 else make_policy("lru")
        suffix = "" if ways == LH_WAYS else "-1way"
        if not policy.requires_update_traffic:
            suffix += "-rand"
        self.name = f"lh-cache{suffix}"
        super().__init__(config, stacked, memory, schedule)

        capacity = config.scaled_cache_bytes
        self.num_rows = capacity // ROW_BUFFER_SIZE
        self.sets_per_row = 1 if ways == LH_WAYS else LH_WAYS
        num_sets = self.num_rows * self.sets_per_row
        self.tags = SetAssocCache(num_sets, ways, policy=policy, name=self.name)
        self.missmap = MissMap(name=f"{self.name}-missmap")
        self._rows = RowMapper(stacked)
        #: Tag lines streamed per access: all 3 for the 29-way set, 1 for
        #: the direct-mapped variant.
        self.tag_lines_read = LH_TAG_LINES if ways == LH_WAYS else 1
        # --- hot-path precomputation -----------------------------------
        self._num_sets = num_sets
        self._missmap_latency = config.missmap_latency
        self._missmap_latency_f = float(config.missmap_latency)
        line_burst = stacked.timings.line_burst
        self._tag_burst_v = self.tag_lines_read * line_burst
        self._line_burst_v = line_burst
        self._update_burst_v = max(line_burst // 4, 1)
        self._requires_update = policy.requires_update_traffic
        self._loc_by_row: dict = {}
        # Lazily-bound counters (lazy to keep ``design_stats`` key sets
        # identical to the unoptimized lazy-creation behavior).
        self._c_reopens = None
        self._c_updates = None
        self._c_fills = None

    # ------------------------------------------------------------------
    def _row_of(self, line_address: int):
        row = (line_address % self._num_sets) // self.sets_per_row
        loc = self._loc_by_row.get(row)
        if loc is None:
            loc = self._loc_by_row[row] = self._rows.locate(row)
        return loc

    def data_location(self, line_address: int):
        return self._row_of(line_address)

    def _tag_burst(self) -> int:
        return self._tag_burst_v

    def _line_burst(self) -> int:
        return self._line_burst_v

    def _update_burst(self) -> int:
        """Replacement-state update: one 16 B beat (Table 4: 256+16 bytes)."""
        return self._update_burst_v

    # ------------------------------------------------------------------
    def warm(self, line_address, is_write, pc, core_id):
        hit = self.tags.lookup(line_address, is_write=is_write)
        if not hit and not is_write:
            evicted = self.tags.fill(line_address)
            self.missmap.insert(line_address)
            if evicted.valid:
                self.missmap.remove(evicted.line_address)

    # ------------------------------------------------------------------
    def access(self, now, line_address, is_write, pc, core_id):
        t0 = now + self._missmap_latency  # PSL on hits and misses
        present = self.missmap.contains(line_address)
        hit = self.tags.lookup(line_address, is_write=is_write)
        # The idealized MissMap is exact; keep ourselves honest.
        assert present == hit, "MissMap diverged from the tag array"

        if is_write:
            self._record_write(hit)
            if hit:
                self.schedule(t0, lambda t: self._write_hit_traffic(t, line_address))
            else:
                self._schedule_memory_write(t0, line_address)
            return AccessOutcome(done=now, cache_hit=hit, served_by_memory=not hit)

        # Predictor Serialization Latency: the MissMap gates both paths.
        breakdown = LatencyBreakdown(
            {STAGE_PREDICTOR: self._missmap_latency_f}
        )
        if hit:
            loc = self._row_of(line_address)
            stacked_access = self.stacked.access
            tag_read = stacked_access(t0, loc, self._tag_burst_v)
            breakdown.attribute_device(tag_read, STAGE_TAG)
            breakdown.add(STAGE_TAG, TAG_CHECK_CYCLES)
            # Compound Access Scheduling: the data access reuses the open row.
            data = stacked_access(
                tag_read.done + TAG_CHECK_CYCLES, loc, self._line_burst_v
            )
            breakdown.attribute_device(data, STAGE_DATA)
            if not data.row_hit:
                c = self._c_reopens
                if c is None:
                    c = self._c_reopens = self.stats.counter("compound_row_reopens")
                c.value += 1
            if self._requires_update:
                # LRU/DIP state lives in the tag lines: a 16-byte update
                # write (one bus beat, per Table 4's 256+16 bytes/access)
                # rides the compound access and holds the bank, delaying
                # later demand accesses — the contention that the Table 1
                # random-replacement de-optimization removes.
                stacked_access(data.done, loc, self._update_burst_v, is_write=True)
                c = self._c_updates
                if c is None:
                    c = self._c_updates = self.stats.counter("replacement_updates")
                c.value += 1
            self._record_read(hit=True, latency=data.done - now)
            return AccessOutcome(
                done=data.done,
                cache_hit=True,
                served_by_memory=False,
                breakdown=breakdown,
            )

        mem = self._memory_read(t0, line_address)
        breakdown.attribute_device(mem, STAGE_MEMORY)
        self._record_read(hit=False, latency=mem.done - now)
        self.schedule(mem.done, lambda t: self._fill(t, line_address))
        return AccessOutcome(
            done=mem.done,
            cache_hit=False,
            served_by_memory=True,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def _write_hit_traffic(self, now: float, line_address: int) -> None:
        """A write hit reads the tags, writes the data line, updates tags."""
        loc = self._row_of(line_address)
        tag_read = self.stacked.access(now, loc, self._tag_burst(), background=True)
        self.stacked.access(
            tag_read.done + TAG_CHECK_CYCLES,
            loc,
            self._line_burst(),
            is_write=True,
            background=True,
        )

    def _fill(self, now: float, line_address: int) -> None:
        """Install a returned line: tag read, data write, tag write, victim."""
        loc = self._row_of(line_address)
        stacked_access = self.stacked.access
        # Victim selection and dirty check require the tag lines even though
        # the MissMap already ruled the access a miss (Section 5.1).
        tag_read = stacked_access(now, loc, self._tag_burst_v, background=True)
        evicted = self.tags.fill(line_address)
        self.missmap.insert(line_address)
        t = tag_read.done + TAG_CHECK_CYCLES
        if evicted.valid:
            self.missmap.remove(evicted.line_address)
            if evicted.dirty:
                victim = stacked_access(
                    t, loc, self._line_burst_v, background=True
                )
                self.stats.counter("victim_reads").add()
                self._schedule_memory_write(victim.done, evicted.line_address)
                t = victim.done
        data_write = stacked_access(
            t, loc, self._line_burst_v, is_write=True, background=True
        )
        stacked_access(
            data_write.done, loc, self._line_burst_v, is_write=True, background=True
        )  # tag-line update
        c = self._c_fills
        if c is None:
            c = self._c_fills = self.stats.counter("fills")
        c.value += 1
