"""IDEAL-LO: the latency-optimized upper bound (paper Section 2.3).

IDEAL-LO has zero tag-serialization and zero predictor-serialization
latency, knows hit/miss a priori (perfect, zero-latency prediction), streams
exactly one 64 B line per hit, and adds no miss-path overhead. Like the
Alloy Cache it maps 28 consecutive sets per row, so spatially-local streams
get row-buffer hits (CAS-only, 22-cycle isolated hits for "type X").

``tag_overhead=False`` models Table 7's "IDEAL-LO + NoTagOverhead": all of
the nominal capacity stores data (32 sets per row instead of 28).
"""

from __future__ import annotations

from repro.cache.direct_mapped import DirectMappedCache
from repro.dramcache.base import AccessOutcome, DramCacheDesign, RowMapper
from repro.lifecycle import STAGE_DATA, STAGE_MEMORY, LatencyBreakdown
from repro.units import LINES_PER_ROW, ROW_BUFFER_SIZE, TADS_PER_ROW


class IdealLODesign(DramCacheDesign):
    """Theoretical latency-optimized design (perfect prediction, lean bursts)."""

    def __init__(self, config, stacked, memory, schedule, tag_overhead: bool = True):
        self.name = "ideal-lo" if tag_overhead else "ideal-lo-notag"
        super().__init__(config, stacked, memory, schedule)
        capacity = config.scaled_cache_bytes
        self.num_rows = capacity // ROW_BUFFER_SIZE
        self.sets_per_row = TADS_PER_ROW if tag_overhead else LINES_PER_ROW
        self.cache = DirectMappedCache(self.num_rows * self.sets_per_row, name=self.name)
        self._rows = RowMapper(stacked)

    # ------------------------------------------------------------------
    def _loc(self, line_address: int):
        set_index = self.cache.set_index(line_address)
        return self._rows.locate(set_index // self.sets_per_row)

    def data_location(self, line_address: int):
        return self._loc(line_address)

    def warm(self, line_address, is_write, pc, core_id):
        hit = self.cache.lookup(line_address, is_write=is_write)
        if not hit and not is_write:
            self.cache.fill(line_address)

    def access(self, now, line_address, is_write, pc, core_id):
        hit = self.cache.lookup(line_address, is_write=is_write)
        if is_write:
            self._record_write(hit)
            if hit:
                loc = self._loc(line_address)
                self.schedule(
                    now,
                    lambda t, loc=loc: self.stacked.access(
                        t,
                        loc,
                        self.stacked.timings.line_burst,
                        is_write=True,
                        background=True,
                    ),
                )
            else:
                self._schedule_memory_write(now, line_address)
            return AccessOutcome(done=now, cache_hit=hit, served_by_memory=not hit)

        if hit:
            result = self.stacked.access(
                now, self._loc(line_address), self.stacked.timings.line_burst
            )
            if result.row_hit:
                self.stats.counter("row_hits").add()
            self._record_read(hit=True, latency=result.done - now)
            return AccessOutcome(
                done=result.done, cache_hit=True, served_by_memory=False,
                predicted_memory=False,
                breakdown=self._attribute(LatencyBreakdown(), result, STAGE_DATA),
            )

        # Perfect prediction: the miss goes to memory immediately.
        mem = self._memory_read(now, line_address)
        self._record_read(hit=False, latency=mem.done - now)
        self.schedule(mem.done, lambda t: self._fill(t, line_address))
        return AccessOutcome(
            done=mem.done, cache_hit=False, served_by_memory=True,
            predicted_memory=True,
            breakdown=self._attribute(LatencyBreakdown(), mem, STAGE_MEMORY),
        )

    # ------------------------------------------------------------------
    def _fill(self, now: float, line_address: int) -> None:
        evicted = self.cache.fill(line_address)
        loc = self._loc(line_address)
        if evicted.valid and evicted.dirty:
            victim = self.stacked.access(
                now, loc, self.stacked.timings.line_burst, background=True
            )
            self._schedule_memory_write(victim.done, evicted.line_address)
            now = victim.done
        self.stacked.access(
            now, loc, self.stacked.timings.line_burst, is_write=True, background=True
        )
        self.stats.counter("fills").add()
