"""SRAM-Tag design: tags in an (impractically large) SRAM array (Section 2.1).

Every access first consults the SRAM tag store — the 24-cycle *Tag
Serialization Latency* (TSL) — and then either reads the data line from the
stacked DRAM (hit) or goes to memory (miss; the SRAM tags make the miss known
at TSL, so no DRAM-cache probe is wasted).

The default 32-way organization maps one whole set per 2 KB row, which is why
its DRAM-cache row-buffer hit rate is near zero (Section 2.3). The 1-way
variant of Table 1 maps 32 consecutive sets per row, recovering row-buffer
locality but barely changing performance because the TSL still dominates.

Storage overhead accounting (Section 6.1): ~6 bytes of SRAM tag per 64 B
line, i.e. 24 MB for a 256 MB cache — the "impractical" part.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.set_assoc import SetAssocCache
from repro.dramcache.base import AccessOutcome, DramCacheDesign, RowMapper
from repro.lifecycle import STAGE_DATA, STAGE_MEMORY, STAGE_TAG, LatencyBreakdown
from repro.units import LINES_PER_ROW

#: SRAM bytes of tag state per cached line (5-6 bytes, Section 2).
SRAM_TAG_BYTES_PER_LINE = 6


class SramTagDesign(DramCacheDesign):
    """DRAM cache with an SRAM tag store."""

    def __init__(
        self,
        config,
        stacked,
        memory,
        schedule,
        ways: int = 32,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.ways = ways
        self.name = f"sram-tag-{ways}way" if ways != 32 else "sram-tag"
        super().__init__(config, stacked, memory, schedule)
        capacity = config.scaled_cache_bytes
        total_lines = capacity // 64
        if total_lines % ways:
            total_lines -= total_lines % ways
        num_sets = total_lines // ways
        self.sets_per_row = LINES_PER_ROW // ways if ways < LINES_PER_ROW else 1
        self.tags = SetAssocCache(
            num_sets,
            ways,
            policy=policy if policy is not None else make_policy("dip"),
            name=self.name,
        )
        self._rows = RowMapper(stacked)

    # ------------------------------------------------------------------
    def _row_of(self, line_address: int):
        set_index = self.tags.set_index(line_address)
        return self._rows.locate(set_index // self.sets_per_row)

    def data_location(self, line_address: int):
        return self._row_of(line_address)

    def sram_overhead_bytes(self) -> int:
        """SRAM tag-store size for the *nominal* capacity (Section 6.1)."""
        return (self.config.cache_size_bytes // 64) * SRAM_TAG_BYTES_PER_LINE

    # ------------------------------------------------------------------
    def warm(self, line_address, is_write, pc, core_id):
        hit = self.tags.lookup(line_address, is_write=is_write)
        if not hit and not is_write:
            self.tags.fill(line_address)

    # ------------------------------------------------------------------
    def access(self, now, line_address, is_write, pc, core_id):
        t_tag = now + self.config.sram_tag_latency  # TSL
        hit = self.tags.lookup(line_address, is_write=is_write)

        if is_write:
            self._record_write(hit)
            if hit:
                loc = self._row_of(line_address)
                self.schedule(
                    t_tag,
                    lambda t, loc=loc: self.stacked.access(
                        t,
                        loc,
                        self.stacked.timings.line_burst,
                        is_write=True,
                        background=True,
                    ),
                )
            else:
                self._schedule_memory_write(t_tag, line_address)
            return AccessOutcome(done=now, cache_hit=hit, served_by_memory=not hit)

        # Tag Serialization Latency: paid before any data access can issue.
        breakdown = LatencyBreakdown({STAGE_TAG: float(self.config.sram_tag_latency)})
        if hit:
            loc = self._row_of(line_address)
            result = self.stacked.access(t_tag, loc, self.stacked.timings.line_burst)
            self._attribute(breakdown, result, STAGE_DATA)
            self._record_read(hit=True, latency=result.done - now)
            return AccessOutcome(
                done=result.done,
                cache_hit=True,
                served_by_memory=False,
                breakdown=breakdown,
            )

        mem = self._memory_read(t_tag, line_address)
        self._attribute(breakdown, mem, STAGE_MEMORY)
        self._record_read(hit=False, latency=mem.done - now)
        self.schedule(mem.done, lambda t: self._fill(t, line_address))
        return AccessOutcome(
            done=mem.done,
            cache_hit=False,
            served_by_memory=True,
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def _fill(self, now: float, line_address: int) -> None:
        """Install a returned line: one stacked write, plus victim handling."""
        evicted = self.tags.fill(line_address)
        loc = self._row_of(line_address)
        if evicted.valid and evicted.dirty:
            # Read the victim's data out of the cache, then write it back.
            victim = self.stacked.access(
                now, loc, self.stacked.timings.line_burst, background=True
            )
            self.stats.counter("victim_reads").add()
            self._schedule_memory_write(victim.done, evicted.line_address)
            fill_at = victim.done
        else:
            fill_at = now
        self.stacked.access(
            fill_at, loc, self.stacked.timings.line_burst, is_write=True, background=True
        )
        self.stats.counter("fills").add()
