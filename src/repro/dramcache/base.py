"""Design interface and shared plumbing for DRAM-cache organizations.

A design receives every L3 miss (reads block the issuing core; writes are
posted L3 writebacks) and returns an :class:`AccessOutcome` whose ``done``
time is when read data is available to the core. Background work — fills,
replacement updates, dirty writebacks — is posted through a scheduler
callback so device reservations happen in (approximate) time order.

Common accounting lives here so that every design reports hit rate, average
hit latency and traffic identically (Figures 4/6/8/10, Tables 1/5/6).

Request lifecycle
-----------------
The system loop wraps each L3 miss in a
:class:`~repro.lifecycle.MemoryRequest` and calls :meth:`handle`, which
dispatches to the design's :meth:`access` and audits the returned
:class:`~repro.lifecycle.LatencyBreakdown`: every demand read's stage
cycles are accumulated per stage (mean + histogram for p95) and any gap
between the breakdown total and the end-to-end latency is recorded as
``unattributed_cycles`` — which the test suite pins at zero, so no cycle
ever goes missing from the decomposition.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Tuple

from repro.dram.device import AccessResult, DramDevice
from repro.dram.mapping import RowLocation
from repro.lifecycle import STAGES, LatencyBreakdown, MemoryRequest
from repro.sim.config import SystemConfig
from repro.stats import Accumulator, Counter, Histogram, StatGroup

#: Bucket edges (cycles) for hit/read latency distributions.
LATENCY_BUCKETS = (25, 50, 75, 100, 150, 200, 300, 500)

#: Frozenset mirror of the canonical stages for O(1) membership tests on
#: the per-read custom-stage check.
_STAGE_SET = frozenset(STAGES)

#: Attribution gaps below this are floating-point association noise (trace
#: gaps are fractional, and the breakdown sums stages in a different order
#: than the device chained them), not missing cycles.
ATTRIBUTION_EPSILON = 1e-6

#: Scheduler signature: ``schedule(when, fn)`` runs ``fn(when)`` at ``when``.
Scheduler = Callable[[float, Callable[[float], None]], None]


class AccessOutcome:
    """Result of one L3 miss handled by a DRAM-cache design.

    Attributes:
        done: Cycle at which read data is available (== issue time for
            posted writes).
        cache_hit: Whether the DRAM cache held the line.
        served_by_memory: Whether off-chip memory supplied the data.
        predicted_memory: The access predictor's decision (None if the
            design does not predict, e.g. SRAM-Tag).
        breakdown: Per-stage attribution of a demand read's latency; its
            stages sum to ``done - issue``. None for writes (posted, zero
            observed latency).

    A ``__slots__`` class rather than a frozen dataclass: one is allocated
    per simulated access, which made dataclass ``__init__`` overhead show
    up in profiles. Treat instances as immutable.
    """

    __slots__ = (
        "done", "cache_hit", "served_by_memory", "predicted_memory", "breakdown"
    )

    def __init__(
        self,
        done: float,
        cache_hit: bool,
        served_by_memory: bool,
        predicted_memory: Optional[bool] = None,
        breakdown: Optional[LatencyBreakdown] = None,
    ) -> None:
        self.done = done
        self.cache_hit = cache_hit
        self.served_by_memory = served_by_memory
        self.predicted_memory = predicted_memory
        self.breakdown = breakdown

    def _astuple(self) -> Tuple:
        return (
            self.done,
            self.cache_hit,
            self.served_by_memory,
            self.predicted_memory,
            self.breakdown,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessOutcome):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            "AccessOutcome(done={}, cache_hit={}, served_by_memory={}, "
            "predicted_memory={}, breakdown={})".format(*self._astuple())
        )


class DramCacheDesign(ABC):
    """Base class for all DRAM-cache organizations."""

    name: str = "base"

    def __init__(
        self,
        config: SystemConfig,
        stacked: DramDevice,
        memory: DramDevice,
        schedule: Scheduler,
    ) -> None:
        self.config = config
        self.stacked = stacked
        self.memory = memory
        self.schedule = schedule
        self.stats = StatGroup(self.name)
        self.hit_latency_hist = Histogram("hit_latency", LATENCY_BUCKETS)
        self.read_latency_hist = Histogram("read_latency", LATENCY_BUCKETS)
        #: Per-stage latency accumulators (one per lifecycle stage); every
        #: demand read samples every canonical stage (0.0 when absent) so
        #: stage means decompose the average read latency exactly.
        self.stage_stats = StatGroup(f"{self.name}.stages")
        self._stage_hists: Dict[str, Histogram] = {}
        # Percentile (histogram) sampling can be disabled per-run; the
        # means/counters are unaffected, only p95-style outputs go empty.
        self._track_hists = getattr(config, "track_percentiles", True)
        # Hot-path stat handles, bound lazily on first use so the stat
        # groups' key sets (which feed ``SimResult.design_stats``) match
        # the original lazy-creation behavior exactly.
        self._stage_recorders: Optional[
            List[Tuple[str, Accumulator, Histogram]]
        ] = None
        self._acc_unattributed: Optional[Accumulator] = None
        self._c_read_hits: Optional[Counter] = None
        self._c_read_misses: Optional[Counter] = None
        self._acc_hit_latency: Optional[Accumulator] = None
        self._acc_miss_latency: Optional[Accumulator] = None
        self._acc_read_latency: Optional[Accumulator] = None
        self._c_memory_reads: Optional[Counter] = None
        self._c_memory_writes: Optional[Counter] = None

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def access(
        self,
        now: float,
        line_address: int,
        is_write: bool,
        pc: int,
        core_id: int,
    ) -> AccessOutcome:
        """Handle one L3 miss arriving at the DRAM-cache controller."""

    def handle(self, request: MemoryRequest) -> AccessOutcome:
        """Full request lifecycle: dispatch to :meth:`access`, then audit
        and accumulate the returned per-stage latency breakdown.

        This is the entry point the system loop (and the measured-breakdown
        replay in :mod:`repro.analysis.latency`) uses; calling
        :meth:`access` directly skips only the stage accounting.
        """
        issue = request.issue_cycle
        outcome = self.access(
            issue,
            request.line_address,
            request.is_write,
            request.pc,
            request.core_id,
        )
        breakdown = outcome.breakdown
        if breakdown is not None and not request.is_write:
            self._record_stages(breakdown, outcome.done - issue)
        return outcome

    def data_location(self, line_address: int) -> Optional[RowLocation]:
        """Stacked-DRAM coordinate holding ``line_address``'s data, or None
        for designs without a stacked array (baselines). Used by the
        isolated-access replay to prime row-buffer state deterministically.
        """
        return None

    def warm(self, line_address: int, is_write: bool, pc: int, core_id: int) -> None:
        """Replay one record functionally (no timing): fill tag state and
        train predictors so the timed phase starts from steady state.

        Designs without functional state (the baselines) inherit this no-op.
        """

    # ------------------------------------------------------------------
    # Shared accounting helpers
    # ------------------------------------------------------------------
    def _record_stages(self, breakdown: LatencyBreakdown, latency: float) -> None:
        """Accumulate one read's stage attribution into the per-stage stats.

        The audit: ``unattributed_cycles`` sums the absolute gap between the
        breakdown total and the observed end-to-end latency. Tests pin it at
        zero, so every design's arithmetic stays honest under load.
        """
        recorders = self._stage_recorders
        if recorders is None:
            # First demand read: bind every canonical stage's accumulator
            # (and histogram) in STAGES order, matching the key order the
            # unoptimized per-read lazy lookups produced.
            recorders = self._stage_recorders = [
                (
                    stage,
                    self.stage_stats.accumulator(stage),
                    Histogram(stage, LATENCY_BUCKETS),
                )
                for stage in STAGES
            ]
            if self._track_hists:
                for stage, _, hist in recorders:
                    self._stage_hists[stage] = hist
            acc = self._acc_unattributed = self.stats.accumulator(
                "unattributed_cycles"
            )
        else:
            acc = self._acc_unattributed

        stages = breakdown._stages
        gap = abs(latency - sum(stages.values()))
        v = gap if gap > ATTRIBUTION_EPSILON else 0.0
        acc.total += v
        acc.count += 1
        m = acc.min
        if m is None or v < m:
            acc.min = v
        m = acc.max
        if m is None or v > m:
            acc.max = v
        stages_get = stages.get
        # Accumulator.sample / Histogram.sample inlined (same ops, same
        # order): five stages per demand read made the call overhead a
        # measurable slice of the whole simulation.
        if self._track_hists:
            for stage, stage_acc, hist in recorders:
                cycles = stages_get(stage, 0.0)
                stage_acc.total += cycles
                stage_acc.count += 1
                m = stage_acc.min
                if m is None or cycles < m:
                    stage_acc.min = cycles
                m = stage_acc.max
                if m is None or cycles > m:
                    stage_acc.max = cycles
                hist.counts[bisect_left(hist.edges, cycles)] += 1
        else:
            for stage, stage_acc, _ in recorders:
                cycles = stages_get(stage, 0.0)
                stage_acc.total += cycles
                stage_acc.count += 1
                m = stage_acc.min
                if m is None or cycles < m:
                    stage_acc.min = cycles
                m = stage_acc.max
                if m is None or cycles > m:
                    stage_acc.max = cycles
        for stage, cycles in stages.items():
            if stage not in _STAGE_SET:  # forward-compat: custom stages
                self.stage_stats.accumulator(stage).sample(cycles)

    def _attribute(
        self, breakdown: LatencyBreakdown, result: AccessResult, stage: str
    ) -> LatencyBreakdown:
        """Fold one device access into ``breakdown``: queueing (bank + bus)
        to the shared ``queue`` stage, service cycles to ``stage``."""
        return breakdown.attribute_device(result, stage)

    def stage_means(self) -> Dict[str, float]:
        """Average cycles per demand read spent in each lifecycle stage;
        the values sum to the average read latency."""
        return {
            stage: acc.mean for stage, acc in self.stage_stats.accumulators.items()
        }

    def stage_p95s(self) -> Dict[str, float]:
        """Per-stage p95 cycles (bucket-edge approximation, like the
        hit/read latency percentiles)."""
        return {
            stage: hist.percentile(0.95)
            for stage, hist in self._stage_hists.items()
        }

    @property
    def unattributed_cycles(self) -> float:
        """Total absolute cycles the stage breakdowns failed to account for
        (the lifecycle audit; 0.0 when every design attributed exactly)."""
        acc = self.stats.accumulators.get("unattributed_cycles")
        return acc.total if acc else 0.0

    def _record_read(self, hit: bool, latency: float) -> None:
        # Accumulator.sample bodies are inlined (identical op order) —
        # this runs once per demand read.
        if hit:
            c = self._c_read_hits
            if c is None:
                c = self._c_read_hits = self.stats.counter("read_hits")
            c.value += 1
            a = self._acc_hit_latency
            if a is None:
                a = self._acc_hit_latency = self.stats.accumulator("hit_latency")
            a.total += latency
            a.count += 1
            m = a.min
            if m is None or latency < m:
                a.min = latency
            m = a.max
            if m is None or latency > m:
                a.max = latency
            if self._track_hists:
                hist = self.hit_latency_hist
                hist.counts[bisect_left(hist.edges, latency)] += 1
        else:
            c = self._c_read_misses
            if c is None:
                c = self._c_read_misses = self.stats.counter("read_misses")
            c.value += 1
            a = self._acc_miss_latency
            if a is None:
                a = self._acc_miss_latency = self.stats.accumulator("miss_latency")
            a.total += latency
            a.count += 1
            m = a.min
            if m is None or latency < m:
                a.min = latency
            m = a.max
            if m is None or latency > m:
                a.max = latency
        a = self._acc_read_latency
        if a is None:
            a = self._acc_read_latency = self.stats.accumulator("read_latency")
        a.total += latency
        a.count += 1
        m = a.min
        if m is None or latency < m:
            a.min = latency
        m = a.max
        if m is None or latency > m:
            a.max = latency
        if self._track_hists:
            hist = self.read_latency_hist
            hist.counts[bisect_left(hist.edges, latency)] += 1

    def _record_write(self, hit: bool) -> None:
        self.stats.counter("write_hits" if hit else "write_misses").add()

    def _memory_read(self, now: float, line_address: int):
        c = self._c_memory_reads
        if c is None:
            c = self._c_memory_reads = self.stats.counter("memory_reads")
        c.value += 1
        return self.memory.access_line(now, line_address)

    def _memory_write(self, now: float, line_address: int) -> None:
        c = self._c_memory_writes
        if c is None:
            c = self._c_memory_writes = self.stats.counter("memory_writes")
        c.value += 1
        self.memory.access_line(now, line_address, is_write=True, background=True)

    def _schedule_memory_write(self, when: float, line_address: int) -> None:
        self.schedule(when, lambda t: self._memory_write(t, line_address))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def read_hit_rate(self) -> float:
        hits = self.stats.counter("read_hits").value
        misses = self.stats.counter("read_misses").value
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def overall_hit_rate(self) -> float:
        hits = (
            self.stats.counter("read_hits").value
            + self.stats.counter("write_hits").value
        )
        total = hits + (
            self.stats.counter("read_misses").value
            + self.stats.counter("write_misses").value
        )
        return hits / total if total else 0.0

    @property
    def avg_hit_latency(self) -> float:
        return self.stats.accumulator("hit_latency").mean

    @property
    def avg_read_latency(self) -> float:
        return self.stats.accumulator("read_latency").mean

    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name


class RowMapper:
    """Maps a design's stacked-DRAM rows onto device coordinates.

    Designs address the stacked device by *cache row id*; this helper spreads
    consecutive rows across channels and banks (row-interleaved) so adjacent
    sets exploit bank-level parallelism the way the paper's designs do.
    """

    def __init__(self, device: DramDevice) -> None:
        self._channels = device.timings.channels
        self._banks = device.timings.banks_per_channel

    def locate(self, cache_row: int) -> RowLocation:
        channel = cache_row % self._channels
        per_channel = cache_row // self._channels
        bank = per_channel % self._banks
        row = per_channel // self._banks
        return RowLocation(channel=channel, bank=bank, row=row)
