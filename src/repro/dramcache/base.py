"""Design interface and shared plumbing for DRAM-cache organizations.

A design receives every L3 miss (reads block the issuing core; writes are
posted L3 writebacks) and returns an :class:`AccessOutcome` whose ``done``
time is when read data is available to the core. Background work — fills,
replacement updates, dirty writebacks — is posted through a scheduler
callback so device reservations happen in (approximate) time order.

Common accounting lives here so that every design reports hit rate, average
hit latency and traffic identically (Figures 4/6/8/10, Tables 1/5/6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dram.device import DramDevice
from repro.dram.mapping import RowLocation
from repro.sim.config import SystemConfig
from repro.stats import Histogram, StatGroup

#: Bucket edges (cycles) for hit/read latency distributions.
LATENCY_BUCKETS = (25, 50, 75, 100, 150, 200, 300, 500)

#: Scheduler signature: ``schedule(when, fn)`` runs ``fn(when)`` at ``when``.
Scheduler = Callable[[float, Callable[[float], None]], None]


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one L3 miss handled by a DRAM-cache design.

    Attributes:
        done: Cycle at which read data is available (== issue time for
            posted writes).
        cache_hit: Whether the DRAM cache held the line.
        served_by_memory: Whether off-chip memory supplied the data.
        predicted_memory: The access predictor's decision (None if the
            design does not predict, e.g. SRAM-Tag).
    """

    done: float
    cache_hit: bool
    served_by_memory: bool
    predicted_memory: Optional[bool] = None


class DramCacheDesign(ABC):
    """Base class for all DRAM-cache organizations."""

    name: str = "base"

    def __init__(
        self,
        config: SystemConfig,
        stacked: DramDevice,
        memory: DramDevice,
        schedule: Scheduler,
    ) -> None:
        self.config = config
        self.stacked = stacked
        self.memory = memory
        self.schedule = schedule
        self.stats = StatGroup(self.name)
        self.hit_latency_hist = Histogram("hit_latency", LATENCY_BUCKETS)
        self.read_latency_hist = Histogram("read_latency", LATENCY_BUCKETS)

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    @abstractmethod
    def access(
        self,
        now: float,
        line_address: int,
        is_write: bool,
        pc: int,
        core_id: int,
    ) -> AccessOutcome:
        """Handle one L3 miss arriving at the DRAM-cache controller."""

    def warm(self, line_address: int, is_write: bool, pc: int, core_id: int) -> None:
        """Replay one record functionally (no timing): fill tag state and
        train predictors so the timed phase starts from steady state.

        Designs without functional state (the baselines) inherit this no-op.
        """

    # ------------------------------------------------------------------
    # Shared accounting helpers
    # ------------------------------------------------------------------
    def _record_read(self, hit: bool, latency: float) -> None:
        if hit:
            self.stats.counter("read_hits").add()
            self.stats.accumulator("hit_latency").sample(latency)
            self.hit_latency_hist.sample(latency)
        else:
            self.stats.counter("read_misses").add()
            self.stats.accumulator("miss_latency").sample(latency)
        self.stats.accumulator("read_latency").sample(latency)
        self.read_latency_hist.sample(latency)

    def _record_write(self, hit: bool) -> None:
        self.stats.counter("write_hits" if hit else "write_misses").add()

    def _memory_read(self, now: float, line_address: int):
        self.stats.counter("memory_reads").add()
        return self.memory.access_line(now, line_address)

    def _memory_write(self, now: float, line_address: int) -> None:
        self.stats.counter("memory_writes").add()
        self.memory.access_line(now, line_address, is_write=True, background=True)

    def _schedule_memory_write(self, when: float, line_address: int) -> None:
        self.schedule(when, lambda t: self._memory_write(t, line_address))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def read_hit_rate(self) -> float:
        hits = self.stats.counter("read_hits").value
        misses = self.stats.counter("read_misses").value
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def overall_hit_rate(self) -> float:
        hits = (
            self.stats.counter("read_hits").value
            + self.stats.counter("write_hits").value
        )
        total = hits + (
            self.stats.counter("read_misses").value
            + self.stats.counter("write_misses").value
        )
        return hits / total if total else 0.0

    @property
    def avg_hit_latency(self) -> float:
        return self.stats.accumulator("hit_latency").mean

    @property
    def avg_read_latency(self) -> float:
        return self.stats.accumulator("read_latency").mean

    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name


class RowMapper:
    """Maps a design's stacked-DRAM rows onto device coordinates.

    Designs address the stacked device by *cache row id*; this helper spreads
    consecutive rows across channels and banks (row-interleaved) so adjacent
    sets exploit bank-level parallelism the way the paper's designs do.
    """

    def __init__(self, device: DramDevice) -> None:
        self._channels = device.timings.channels
        self._banks = device.timings.banks_per_channel

    def locate(self, cache_row: int) -> RowLocation:
        channel = cache_row % self._channels
        per_channel = cache_row // self._channels
        bank = per_channel % self._banks
        row = per_channel // self._banks
        return RowLocation(channel=channel, bank=bank, row=row)
