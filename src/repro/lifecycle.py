"""Request lifecycle objects: :class:`MemoryRequest` and per-stage latency.

The paper's entire argument is a latency *decomposition* — tag-serialization
vs. hit-latency vs. miss-penalty (Sections 2.4-3, Figure 3) — so the
simulator carries stage-level attribution end-to-end instead of returning
only a scalar completion time. Every demand read that flows through a
DRAM-cache design yields a :class:`LatencyBreakdown` whose stages sum
exactly to the request's end-to-end latency (asserted in the test suite:
no unattributed cycles).

Stage taxonomy (controller level)
---------------------------------
``queue``
    Cycles spent waiting for busy resources anywhere: bank queues and
    channel-bus queues in either DRAM device. Zero for isolated accesses.
``predictor``
    Predictor Serialization Latency: MissMap lookups (24 cycles) and MAP
    predictor decisions (1 cycle) spent before any DRAM access can issue.
``tag``
    Tag Serialization Latency: SRAM tag-store lookups, LH-Cache tag-line
    streaming plus the tag-check cycles, and — on a Serial Access Model
    miss — the Alloy TAD probe that ruled the access a miss.
``data``
    Cache data service: ACT/CAS/burst cycles of the stacked-DRAM access
    that delivers the line (the TAD stream on an Alloy hit, the compound
    data access on an LH hit, an SRAM victim-buffer read).
``memory``
    Off-chip service on the miss path: ACT/CAS/burst cycles of the memory
    access that supplies the data.

Device-level results decompose further (bank queue, activation, CAS, bus
queue, burst — see :meth:`repro.dram.device.AccessResult.breakdown`); the
designs fold those into the five controller stages via
:meth:`LatencyBreakdown.attribute_device`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

#: Canonical controller-level stages, in presentation order.
STAGE_QUEUE = "queue"
STAGE_PREDICTOR = "predictor"
STAGE_TAG = "tag"
STAGE_DATA = "data"
STAGE_MEMORY = "memory"

STAGES: Tuple[str, ...] = (
    STAGE_QUEUE,
    STAGE_PREDICTOR,
    STAGE_TAG,
    STAGE_DATA,
    STAGE_MEMORY,
)


class MemoryRequest:
    """One L3 miss travelling through the DRAM-cache controller.

    Attributes:
        line_address: 64 B line address of the access.
        is_write: True for posted L3 writebacks, False for demand reads.
        pc: Program counter of the missing instruction (predictor input).
        core_id: Issuing core.
        issue_cycle: Cycle the request arrives at the DRAM-cache controller
            (after the L3 lookup); per-stage latencies are measured from
            here, so a read's breakdown sums to ``done - issue_cycle``.

    A plain ``__slots__`` class (not a frozen dataclass): the event loop
    allocates one per simulated access, so construction cost matters, and
    the mutable fields let :class:`~repro.sim.system.System` reuse a
    single scratch instance on its hot path. Designs must treat a request
    as read-only and never retain it past :meth:`handle`.
    """

    __slots__ = ("line_address", "is_write", "pc", "core_id", "issue_cycle")

    def __init__(
        self,
        line_address: int,
        is_write: bool,
        pc: int,
        core_id: int,
        issue_cycle: float,
    ) -> None:
        self.line_address = line_address
        self.is_write = is_write
        self.pc = pc
        self.core_id = core_id
        self.issue_cycle = issue_cycle

    def _astuple(self) -> Tuple:
        return (
            self.line_address,
            self.is_write,
            self.pc,
            self.core_id,
            self.issue_cycle,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryRequest):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            "MemoryRequest(line_address={}, is_write={}, pc={}, "
            "core_id={}, issue_cycle={})".format(*self._astuple())
        )


class LatencyBreakdown:
    """Cycles attributed to named stages of one request's lifetime.

    A small mutable accumulator: designs build one per demand read and
    attach it to the returned :class:`~repro.dramcache.base.AccessOutcome`.
    Stages with zero cycles are not stored; :meth:`get` returns 0.0 for
    them, so consumers can iterate :data:`STAGES` uniformly.
    """

    __slots__ = ("_stages",)

    def __init__(self, stages: Optional[Dict[str, float]] = None) -> None:
        self._stages: Dict[str, float] = {}
        if stages:
            for stage, cycles in stages.items():
                self.add(stage, cycles)

    def add(self, stage: str, cycles: float) -> "LatencyBreakdown":
        """Attribute ``cycles`` to ``stage`` (no-op for zero); returns self."""
        if cycles:
            self._stages[stage] = self._stages.get(stage, 0.0) + cycles
        return self

    def attribute_device(self, result, stage: str) -> "LatencyBreakdown":
        """Fold one device :class:`~repro.dram.device.AccessResult` in:
        waiting (bank + bus queues) goes to the shared ``queue`` stage,
        service cycles (ACT + CAS + burst) to ``stage``.

        The :meth:`add` calls are inlined (same zero-skip and accumulate
        order) — this runs several times per simulated access.
        """
        stages = self._stages
        cycles = result.queue_delay + result.bus_queue_delay
        if cycles:
            stages[STAGE_QUEUE] = stages.get(STAGE_QUEUE, 0.0) + cycles
        cycles = result.act_cycles + result.cas_cycles + result.burst_cycles
        if cycles:
            stages[stage] = stages.get(stage, 0.0) + cycles
        return self

    # ------------------------------------------------------------------
    def get(self, stage: str) -> float:
        return self._stages.get(stage, 0.0)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(self._stages.items())

    def as_dict(self) -> Dict[str, float]:
        """Plain dict copy (JSON-friendly)."""
        return dict(self._stages)

    @property
    def total(self) -> float:
        """Sum over all stages; equals the end-to-end latency when the
        producing design attributed every cycle."""
        return sum(self._stages.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyBreakdown):
            return NotImplemented
        return self._stages == other._stages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{s}={c:g}" for s, c in sorted(self._stages.items()))
        return f"LatencyBreakdown({inner})"
