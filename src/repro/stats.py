"""Lightweight statistics primitives used by the simulator.

The simulator accumulates everything through these small objects so that every
design exposes the same measurement surface (hit rates, latencies, traffic)
and the experiment harness can render paper tables uniformly.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Tracks a running sum/count/min/max of a sampled quantity.

    Used for latency statistics: each completed request samples its latency
    and the experiment reports the mean.
    """

    __slots__ = ("name", "total", "count", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def sample(self, value: float) -> None:
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Accumulator({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-bucket histogram for latency distributions."""

    __slots__ = ("name", "edges", "counts")

    def __init__(self, name: str, bucket_edges: Iterable[float]) -> None:
        self.name = name
        self.edges: List[float] = sorted(bucket_edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)

    def sample(self, value: float) -> None:
        # bisect_left finds the first edge with value <= edge (edges are
        # sorted), i.e. the bucket a linear scan would pick; index len(edges)
        # is the overflow bucket. Called once per latency sample (hot path).
        self.counts[bisect_left(self.edges, value)] += 1

    def reset(self) -> None:
        """Zero every bucket (the edges are part of the histogram's shape)."""
        self.counts = [0] * (len(self.edges) + 1)

    @property
    def total(self) -> int:
        return sum(self.counts)

    def percentile(self, q: float) -> float:
        """Approximate percentile: the smallest bucket edge covering ``q``.

        Returns ``inf`` when the q-th sample falls in the overflow bucket.
        ``q=0.0`` returns the upper edge of the first *non-empty* bucket
        (the bucket actually holding the minimum sample), not ``edges[0]``
        regardless of occupancy.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        total = self.total
        if not total:
            return 0.0
        running = 0
        for i, edge in enumerate(self.edges):
            running += self.counts[i]
            if running and running / total >= q:
                return edge
        return float("inf")

    @property
    def overflow_count(self) -> int:
        """Samples that fell beyond the last bucket edge."""
        return self.counts[-1]

    @property
    def overflow_fraction(self) -> float:
        """Fraction of samples beyond the last bucket edge (0.0 if empty)."""
        total = self.total
        return self.counts[-1] / total if total else 0.0

    def fraction_at_or_below(self, edge: float) -> float:
        """Fraction of samples in buckets whose upper edge is <= ``edge``.

        The overflow bucket (samples beyond the last edge) has an upper
        edge of ``+inf``, so it is included exactly when ``edge`` is
        ``inf`` — making ``fraction_at_or_below(float("inf")) == 1.0``
        for any non-empty histogram. (It used to be silently excluded,
        so the fraction could never reach 1.0 once any sample overflowed;
        use :attr:`overflow_fraction` to inspect that mass directly.)
        """
        if not self.total:
            return 0.0
        running = 0
        for i, e in enumerate(self.edges):
            if e > edge:
                break
            running += self.counts[i]
        else:
            if edge == float("inf"):
                running += self.counts[-1]
        return running / self.total


def ratio(numerator: float, denominator: float) -> float:
    """Safe division returning 0.0 on an empty denominator."""
    return numerator / denominator if denominator else 0.0


@dataclass
class StatGroup:
    """A named bag of counters/accumulators with lazy creation.

    Components create their stats through a group so everything is
    discoverable for reporting: ``group.counter("row_hits").add()``.
    """

    name: str
    counters: Dict[str, Counter] = field(default_factory=dict)
    accumulators: Dict[str, Accumulator] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(name)
        return self.accumulators[name]

    def histogram(self, name: str, bucket_edges: Iterable[float]) -> Histogram:
        """Register (or fetch) a histogram so :meth:`reset` covers it.

        Histograms are excluded from :meth:`as_dict` (their buckets are not
        a scalar metric); registering them here only ties their lifetime to
        the group's reset path, fixing the stale-bucket leak between
        :meth:`repro.dram.device.DramDevice.reset` calls.
        """
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, bucket_edges)
        return self.histograms[name]

    def reset(self) -> None:
        for c in self.counters.values():
            c.reset()
        for a in self.accumulators.values():
            a.reset()
        for h in self.histograms.values():
            h.reset()

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, a in self.accumulators.items():
            out[f"{name}_mean"] = a.mean
            out[f"{name}_count"] = a.count
        return out
