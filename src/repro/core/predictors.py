"""Memory Access Predictors (paper Section 5).

An L3 miss can be serviced under the Serial Access Model (SAM: probe the
DRAM cache, go to memory only on a confirmed miss) or the Parallel Access
Model (PAM: probe cache and memory together). The Dynamic Access Model (DAM)
chooses per-access using a *Memory Access Predictor*:

* :class:`SamPredictor` — static "always cache hit" (pure SAM).
* :class:`PamPredictor` — static "never cache hit" (pure PAM).
* :class:`MapGPredictor` — MAP-Global: one 3-bit saturating Memory Access
  Counter (MAC) per core, trained on whether recent L3 misses were serviced
  by memory; the MSB selects PAM.
* :class:`MapIPredictor` — MAP-Instruction: a per-core, 256-entry Memory
  Access Counter Table (MACT) indexed by a folded-XOR hash of the miss-
  causing instruction address. Storage: 256 x 3 bits = 96 bytes per core.
* :class:`PerfectPredictor` — oracle with 100% accuracy and zero latency.

All predictors cost one cycle (modeled in the timing layer) except the
perfect oracle, and none predicts for writes — writebacks are not on the
critical path and always use SAM (Section 5.3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

#: Width of the saturating Memory Access Counters (paper uses 3 bits).
MAC_BITS = 3
MAC_MAX = (1 << MAC_BITS) - 1
MAC_MSB_THRESHOLD = 1 << (MAC_BITS - 1)

#: Entries in the per-core Memory Access Counter Table (8-bit index).
MACT_ENTRIES = 256


def folded_xor(value: int, output_bits: int) -> int:
    """Fold ``value`` into ``output_bits`` by XOR-ing successive chunks.

    This is the hashing scheme the paper borrows from Seznec & Michaud's
    folded-history indexing: cheap, and spreads instruction addresses
    uniformly over the small MACT.
    """
    if output_bits <= 0:
        raise ValueError("output_bits must be positive")
    mask = (1 << output_bits) - 1
    folded = 0
    value &= (1 << 64) - 1
    while value:
        folded ^= value & mask
        value >>= output_bits
    return folded


class MemoryAccessPredictor(ABC):
    """Predicts whether an L3 miss will be serviced by off-chip memory.

    ``predict`` returning True means "expect a DRAM-cache miss, launch the
    memory access in parallel" (PAM); False means "expect a hit, serialize"
    (SAM). ``update`` trains on the actual outcome.
    """

    #: Prediction latency in cycles (1 for the MAP family, per Section 5).
    latency_cycles: int = 1

    #: Perfect predictors are consulted with oracle knowledge by the system.
    is_perfect: bool = False

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self.predicted_memory = 0
        self.predicted_cache = 0

    @abstractmethod
    def predict(self, core_id: int, pc: int) -> bool:
        """Predict True if this L3 miss will be serviced by memory."""

    @abstractmethod
    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        """Train on the actual outcome of an L3 miss."""

    def storage_bits_per_core(self) -> int:
        """Predictor state per core, in bits (0 for the static models)."""
        return 0

    def _note(self, prediction: bool) -> bool:
        if prediction:
            self.predicted_memory += 1
        else:
            self.predicted_cache += 1
        return prediction


class SamPredictor(MemoryAccessPredictor):
    """Serial Access Model: always predict a DRAM-cache hit."""

    latency_cycles = 0

    def predict(self, core_id: int, pc: int) -> bool:
        return self._note(False)

    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        pass


class PamPredictor(MemoryAccessPredictor):
    """Parallel Access Model: always predict a memory access."""

    latency_cycles = 0

    def predict(self, core_id: int, pc: int) -> bool:
        return self._note(True)

    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        pass


class MapGPredictor(MemoryAccessPredictor):
    """MAP-Global: one 3-bit saturating MAC per core.

    Incremented when an L3 miss is serviced by memory, decremented when it
    hits in the DRAM cache; the MSB selects PAM. Storage: 3 bits per core.
    """

    def __init__(self, num_cores: int) -> None:
        super().__init__(num_cores)
        self._mac: List[int] = [MAC_MSB_THRESHOLD] * num_cores

    def predict(self, core_id: int, pc: int) -> bool:
        return self._note(self._mac[core_id] >= MAC_MSB_THRESHOLD)

    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        if went_to_memory:
            self._mac[core_id] = min(self._mac[core_id] + 1, MAC_MAX)
        else:
            self._mac[core_id] = max(self._mac[core_id] - 1, 0)

    def storage_bits_per_core(self) -> int:
        return MAC_BITS

    def counter(self, core_id: int) -> int:
        """Current MAC value (test/debug helper)."""
        return self._mac[core_id]


class MapIPredictor(MemoryAccessPredictor):
    """MAP-Instruction: per-core 256-entry MACT indexed by hashed PC.

    The instruction address of the miss-causing load is folded-XOR hashed to
    8 bits; each entry is a 3-bit MAC. Storage: 256 x 3 bits = 96 bytes per
    core (768 bytes for the 8-core system).
    """

    def __init__(self, num_cores: int, entries: int = MACT_ENTRIES) -> None:
        super().__init__(num_cores)
        if entries & (entries - 1):
            raise ValueError("MACT entry count must be a power of two")
        self.entries = entries
        self._index_bits = entries.bit_length() - 1
        self._mact: List[List[int]] = [
            [MAC_MSB_THRESHOLD] * entries for _ in range(num_cores)
        ]
        # PC -> MACT index memo: predict() and update() both hash the same
        # small working set of miss PCs, so the fold is computed once per
        # distinct PC instead of twice per read.
        self._index_memo: dict = {}

    def _index(self, pc: int) -> int:
        memo = self._index_memo
        index = memo.get(pc)
        if index is None:
            index = memo[pc] = folded_xor(pc, self._index_bits)
        return index

    def predict(self, core_id: int, pc: int) -> bool:
        mac = self._mact[core_id][self._index(pc)]
        return self._note(mac >= MAC_MSB_THRESHOLD)

    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        idx = self._index(pc)
        mac = self._mact[core_id][idx]
        if went_to_memory:
            self._mact[core_id][idx] = min(mac + 1, MAC_MAX)
        else:
            self._mact[core_id][idx] = max(mac - 1, 0)

    def storage_bits_per_core(self) -> int:
        return self.entries * MAC_BITS

    def counter(self, core_id: int, pc: int) -> int:
        """Current MAC value for ``pc`` (test/debug helper)."""
        return self._mact[core_id][self._index(pc)]


class PerfectPredictor(MemoryAccessPredictor):
    """Oracle: 100% accuracy at zero latency (upper bound, Section 5.4)."""

    latency_cycles = 0
    is_perfect = True

    def predict(self, core_id: int, pc: int) -> bool:
        raise RuntimeError(
            "PerfectPredictor must be consulted via predict_with_oracle()"
        )

    def predict_with_oracle(self, actual_memory_access: bool) -> bool:
        """Return the ground-truth outcome supplied by the simulator."""
        return self._note(actual_memory_access)

    def update(self, core_id: int, pc: int, went_to_memory: bool) -> None:
        pass


_PREDICTORS = {
    "sam": SamPredictor,
    "pam": PamPredictor,
    "map-g": MapGPredictor,
    "map-i": MapIPredictor,
    "perfect": PerfectPredictor,
}


def make_predictor(name: str, num_cores: int) -> MemoryAccessPredictor:
    """Construct a predictor from a config string (``sam``, ``map-i``, ...)."""
    key = name.lower()
    if key not in _PREDICTORS:
        raise ValueError(
            f"unknown predictor {name!r}; choose from {sorted(_PREDICTORS)}"
        )
    return _PREDICTORS[key](num_cores)
