"""TAD (Tag-and-Data) geometry for the Alloy Cache (paper Section 4.1).

A TAD fuses one 64 B data line with its 8 B tag into a 72 B unit. A 2 KB
stacked-DRAM row holds 28 TADs (32 bytes left unused). Because the stacked
data bus is 16 B wide and transfers are bus-aligned, reading one TAD streams
**80 bytes** — five bus beats — where the first 8 bytes are ignored for odd
sets and the last 8 for even sets (Figure 5).

The set index is ``line_address mod num_sets`` with a non-power-of-two set
count; Section 4.1 sketches the residue-arithmetic mod-28 circuit and budgets
two cycles for it, hidden under the L3 access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import (
    LINE_SIZE,
    ROW_BUFFER_SIZE,
    STACKED_BUS_BYTES,
    TAD_SIZE,
    TADS_PER_ROW,
)


@dataclass(frozen=True)
class TadTransfer:
    """One TAD read/write as it appears on the stacked-DRAM bus.

    Attributes:
        bytes_on_bus: Total bytes streamed (bus-aligned).
        bus_beats: Number of 16 B bus transfers.
        ignored_leading_bytes: Alignment padding before the TAD.
        ignored_trailing_bytes: Alignment padding after the TAD.
    """

    bytes_on_bus: int
    bus_beats: int
    ignored_leading_bytes: int
    ignored_trailing_bytes: int

    @property
    def useful_bytes(self) -> int:
        return self.bytes_on_bus - self.ignored_leading_bytes - self.ignored_trailing_bytes


class AlloyGeometry:
    """Maps Alloy-Cache sets onto stacked-DRAM rows.

    ``ways`` > 1 models the set-associative variants (Section 6.7's two-way
    and the wider associativity sweep) where each access streams ``ways``
    adjacent TADs; capacity per row is unchanged (28 TADs) but a set then
    spans ``ways`` TAD slots, so ``ways`` must divide 28.
    """

    def __init__(self, capacity_bytes: int, ways: int = 1) -> None:
        if capacity_bytes % ROW_BUFFER_SIZE:
            raise ValueError("capacity must be a whole number of 2 KB rows")
        if ways < 1 or TADS_PER_ROW % ways:
            raise ValueError(
                f"Alloy ways must divide the {TADS_PER_ROW} TADs per row "
                f"(got {ways})"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.num_rows = capacity_bytes // ROW_BUFFER_SIZE
        self.tads_per_row = TADS_PER_ROW
        self.sets_per_row = TADS_PER_ROW // ways
        self.num_sets = self.num_rows * self.sets_per_row

    # ------------------------------------------------------------------
    @property
    def data_capacity_bytes(self) -> int:
        """Bytes of actual data storage (capacity minus tag + padding)."""
        return self.num_rows * self.tads_per_row * LINE_SIZE

    @property
    def unused_bytes_per_row(self) -> int:
        return ROW_BUFFER_SIZE - self.tads_per_row * TAD_SIZE  # 32

    def set_index(self, line_address: int) -> int:
        """Set index of a line address (mod-num_sets residue arithmetic)."""
        return line_address % self.num_sets

    def row_of_set(self, set_index: int) -> int:
        """Stacked-DRAM row holding ``set_index``.

        Consecutive sets share a row (28 per row), which is what restores
        row-buffer locality for spatially local streams — the direct
        de-optimization benefit measured in Table 1.
        """
        return set_index // self.sets_per_row

    def slot_of_set(self, set_index: int) -> int:
        """TAD slot (0..27) of the first way of ``set_index`` within its row."""
        return (set_index % self.sets_per_row) * self.ways

    def byte_offset_of_set(self, set_index: int) -> int:
        """Byte offset of the set's first TAD within its row."""
        return self.slot_of_set(set_index) * TAD_SIZE

    # ------------------------------------------------------------------
    def transfer_for_set(self, set_index: int, burst_beats: int = 0) -> TadTransfer:
        """Describe the bus transfer that reads this set's TAD(s).

        With the default burst the transfer is bus-aligned around the TAD
        (five beats for one TAD, Section 4.1). ``burst_beats`` can force a
        power-of-two burst (e.g. 8 beats = 128 B) for the Section 6.5 study.
        """
        tad_bytes = TAD_SIZE * self.ways
        offset = self.byte_offset_of_set(set_index)
        aligned_start = (offset // STACKED_BUS_BYTES) * STACKED_BUS_BYTES
        leading = offset - aligned_start
        end = offset + tad_bytes
        aligned_end = -(-end // STACKED_BUS_BYTES) * STACKED_BUS_BYTES
        trailing = aligned_end - end
        beats = (aligned_end - aligned_start) // STACKED_BUS_BYTES
        if burst_beats:
            if burst_beats * STACKED_BUS_BYTES < tad_bytes:
                raise ValueError("forced burst too short for a TAD")
            extra = burst_beats - beats
            beats = burst_beats
            trailing += max(extra, 0) * STACKED_BUS_BYTES
        return TadTransfer(
            bytes_on_bus=beats * STACKED_BUS_BYTES,
            bus_beats=beats,
            ignored_leading_bytes=leading,
            ignored_trailing_bytes=trailing,
        )

    def same_row(self, set_a: int, set_b: int) -> bool:
        """True if two sets live in the same stacked-DRAM row."""
        return self.row_of_set(set_a) == self.row_of_set(set_b)
