"""The paper's primary contribution: Alloy Cache + Memory Access Prediction.

* :mod:`repro.core.tad` — TAD (tag-and-data) geometry: how 28 TADs pack into
  a 2 KB stacked-DRAM row, bus-alignment rules, and burst-length math.
* :mod:`repro.core.alloy` — the functional Alloy Cache (direct-mapped, with
  the two-way variant of Section 6.7).
* :mod:`repro.core.predictors` — memory access predictors: SAM, PAM, MAP-G,
  MAP-I (with folded-XOR hashing) and the perfect oracle.
"""

from repro.core.tad import AlloyGeometry, TadTransfer
from repro.core.alloy import AlloyCache
from repro.core.predictors import (
    MemoryAccessPredictor,
    SamPredictor,
    PamPredictor,
    MapGPredictor,
    MapIPredictor,
    PerfectPredictor,
    folded_xor,
    make_predictor,
)

__all__ = [
    "AlloyGeometry",
    "TadTransfer",
    "AlloyCache",
    "MemoryAccessPredictor",
    "SamPredictor",
    "PamPredictor",
    "MapGPredictor",
    "MapIPredictor",
    "PerfectPredictor",
    "folded_xor",
    "make_predictor",
]
