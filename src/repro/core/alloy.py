"""Functional Alloy Cache: contents, hits and victims (paper Section 4).

This class tracks *what is cached*; the timing design in
:mod:`repro.dramcache.alloy` layers DRAM access costs on top using the
geometry from :mod:`repro.core.tad`.

The default configuration is direct-mapped — the paper's central
de-optimization. ``ways=2`` gives the Section 6.7 two-way variant, which
streams two TADs per access and selects victims with LRU; wider ways
(any divisor of the 28 TADs per row) extend the same scheme for the
associativity sweep.
"""

from __future__ import annotations

from typing import List

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import Eviction, SetAssocCache
from repro.core.tad import AlloyGeometry


class AlloyCache:
    """Functional model of the Alloy Cache.

    Capacity accounting matches the paper: a nominal ``capacity_bytes`` of
    stacked DRAM stores ``28/32`` of that as data lines because each 2 KB
    row holds 28 TADs (Section 4.1).
    """

    def __init__(self, capacity_bytes: int, ways: int = 1, name: str = "alloy") -> None:
        self.geometry = AlloyGeometry(capacity_bytes, ways=ways)
        self.ways = ways
        self.name = name
        if ways == 1:
            self._store = DirectMappedCache(self.geometry.num_sets, name=name)
        else:
            self._store = SetAssocCache(
                self.geometry.num_sets, ways, policy=LRUPolicy(), name=name
            )

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return self.geometry.num_sets

    @property
    def capacity_lines(self) -> int:
        return self.geometry.num_sets * self.ways

    @property
    def stats(self):
        return self._store.stats

    @property
    def hit_rate(self) -> float:
        return self._store.hit_rate

    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        return self.geometry.set_index(line_address)

    def row_of(self, line_address: int) -> int:
        """Stacked-DRAM row that this line's set lives in."""
        return self.geometry.row_of_set(self.set_index(line_address))

    def probe(self, line_address: int) -> bool:
        """Presence check without statistics or replacement updates."""
        return self._store.probe(line_address)

    def lookup(self, line_address: int, is_write: bool = False) -> bool:
        """Access the cache (the tag check on the streamed-out TAD)."""
        return self._store.lookup(line_address, is_write=is_write)

    def fill(self, line_address: int, dirty: bool = False) -> Eviction:
        """Install a line; the victim TAD was already streamed out by the
        probe, so its dirty data needs no extra read before writeback."""
        return self._store.fill(line_address, dirty=dirty)

    def invalidate(self, line_address: int) -> bool:
        return self._store.invalidate(line_address)

    def is_dirty(self, line_address: int) -> bool:
        return self._store.is_dirty(line_address)

    def occupancy(self) -> float:
        return self._store.occupancy()

    def resident_lines(self) -> List[int]:
        return self._store.resident_lines()
