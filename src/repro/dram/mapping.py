"""Address mapping: line addresses to (channel, bank, row) coordinates.

Off-chip DRAM interleaves channels (and banks) at *row* granularity:
32 consecutive lines share one row on one channel, then the stream moves to
the next channel. Sequential streams therefore enjoy long runs of row-buffer
hits (the paper's "type X" accesses) while scattered accesses keep opening
new rows ("type Y").

DRAM-cache designs do **not** map addresses this way — each design maps its
*set index* onto stacked-DRAM rows itself (e.g. LH-Cache maps one set per
row; the Alloy Cache packs 28 consecutive sets into a row). Designs therefore
construct :class:`RowLocation` values directly and hand them to the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import LINE_SIZE


@dataclass(frozen=True)
class RowLocation:
    """A physical (channel, bank, row) coordinate inside a DRAM device."""

    channel: int
    bank: int
    row: int


class AddressMapping:
    """Decodes line addresses into device coordinates.

    Layout, from least- to most-significant line-address bits:
    ``line-in-row : channel : bank : row``. One row's worth of consecutive
    lines lands in a single bank's row buffer; the next row-sized chunk moves
    to the next channel, then the next bank.
    """

    def __init__(self, channels: int, banks_per_channel: int, row_bytes: int) -> None:
        if row_bytes % LINE_SIZE:
            raise ValueError("row size must be a whole number of lines")
        self.channels = channels
        self.banks = banks_per_channel
        self.lines_per_row = row_bytes // LINE_SIZE

    def locate(self, line_address: int) -> RowLocation:
        """Map a line address to its (channel, bank, row) coordinate."""
        row_chunk = line_address // self.lines_per_row
        channel = row_chunk % self.channels
        per_channel = row_chunk // self.channels
        bank = per_channel % self.banks
        row = per_channel // self.banks
        return RowLocation(channel=channel, bank=bank, row=row)

    def same_row(self, a: int, b: int) -> bool:
        """True if two line addresses land in the same open row."""
        return self.locate(a) == self.locate(b)
