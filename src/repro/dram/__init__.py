"""DRAM timing substrate: device model, timings and address mapping.

The device model is a *resource-timeline* simulator: each bank and each
per-channel data bus is a reservable resource with a ``free_at`` time. A
request computes its start time from resource availability, pays the row
activation / column access latencies from :class:`~repro.dram.timings.DramTimings`,
and reserves the bus for its burst. Queueing delay therefore emerges from
contention, which is what differentiates bandwidth-hungry designs (LH-Cache)
from lean ones (Alloy Cache) in the paper.
"""

from repro.dram.timings import DramTimings, OFFCHIP_DDR3, STACKED_DRAM
from repro.dram.mapping import AddressMapping, RowLocation
from repro.dram.device import DramDevice, AccessResult

__all__ = [
    "DramTimings",
    "OFFCHIP_DDR3",
    "STACKED_DRAM",
    "AddressMapping",
    "RowLocation",
    "DramDevice",
    "AccessResult",
]
