"""DRAM timing parameters (paper Table 2 / Section 2.4).

All values are in 4 GHz processor cycles, exactly as the paper reports them:

* Off-chip DDR3: ``tACT = tCAS = 36`` cycles, 16 cycles to move one 64 B line
  over the 64-bit channel bus; 2 channels x 8 banks.
* Stacked DRAM: ``tACT = tCAS = 18`` cycles, 4 cycles per 64 B line over the
  128-bit channel bus; 4 channels x 8 banks.

The paper's latency breakdown (Figure 3) folds precharge into the activation
cost — a row-buffer hit costs CAS only and a row miss costs ACT + CAS. We
keep an explicit ``t_rp`` so closed-page studies remain possible, but the
paper-faithful presets set it to zero and charge ACT for any non-open row.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import LINE_SIZE


@dataclass(frozen=True)
class DramTimings:
    """Timing and geometry for one DRAM device (off-chip or stacked).

    Attributes:
        name: Human-readable preset name used in reports.
        t_act: Row activation latency (cycles) — charged when the target row
            is not already open in the bank's row buffer.
        t_cas: Column access latency (cycles) — charged on every access.
        t_rp: Explicit precharge latency charged when a *different* row is
            open. The paper folds this into ``t_act`` so presets use 0.
        line_burst: Bus cycles to transfer one 64 B line.
        bus_bytes: Bus width in bytes (one transfer beat).
        channels: Independent channels, each with its own data bus.
        banks_per_channel: Banks per channel, each with one row buffer.
        row_bytes: Row-buffer size in bytes.
    """

    name: str
    t_act: int
    t_cas: int
    t_rp: int
    line_burst: int
    bus_bytes: int
    channels: int
    banks_per_channel: int
    row_bytes: int

    @property
    def burst_cycle(self) -> float:
        """Bus cycles to transfer one ``bus_bytes`` beat."""
        return self.line_burst * self.bus_bytes / LINE_SIZE

    def burst_cycles(self, num_bytes: int) -> int:
        """Bus cycles to transfer ``num_bytes`` (rounded up to bus beats)."""
        beats = -(-num_bytes // self.bus_bytes)  # ceil division
        total_beats_per_line = LINE_SIZE // self.bus_bytes
        return -(-beats * self.line_burst // total_beats_per_line)

    @property
    def row_miss_latency(self) -> int:
        """Cycles from request start to first data beat on a closed row."""
        return self.t_act + self.t_cas

    @property
    def row_hit_latency(self) -> int:
        """Cycles from request start to first data beat on an open row."""
        return self.t_cas

    def line_access_latency(self, row_hit: bool) -> int:
        """End-to-end cycles for one isolated 64 B line access."""
        core = self.row_hit_latency if row_hit else self.row_miss_latency
        return core + self.line_burst

    def scaled(self, **overrides: int) -> "DramTimings":
        """Return a copy with some fields overridden (for sensitivity runs)."""
        return replace(self, **overrides)


#: Off-chip DDR3-1600 per paper Table 2, expressed in 4 GHz CPU cycles.
#: ACT 36, CAS 36, 16 cycles to transfer one 64 B line on the 64-bit bus.
OFFCHIP_DDR3 = DramTimings(
    name="offchip-ddr3",
    t_act=36,
    t_cas=36,
    t_rp=0,
    line_burst=16,
    bus_bytes=8,
    channels=2,
    banks_per_channel=8,
    row_bytes=2048,
)

#: Die-stacked DRAM per paper Table 2: 4 channels, 128-bit bus; ACT 18,
#: CAS 18, 4 cycles per 64 B line.
STACKED_DRAM = DramTimings(
    name="stacked-dram",
    t_act=18,
    t_cas=18,
    t_rp=0,
    line_burst=4,
    bus_bytes=16,
    channels=4,
    banks_per_channel=8,
    row_bytes=2048,
)
