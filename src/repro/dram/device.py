"""Resource-timeline DRAM device model with read-over-write priority.

Each bank and each per-channel data bus is a *priority timeline* with two
horizons:

* ``demand_free`` — when the resource can next serve critical-path traffic
  (demand reads, tag probes);
* ``all_free`` — the full occupancy horizon including **background** traffic
  (fills, replacement updates, writebacks), which a real memory controller
  buffers and deprioritizes behind reads.

A background access queues at ``all_free`` — background work is serviced
in order among itself. A demand access queues only behind other demand work,
plus a bounded interference term: at most one in-flight background burst
(``block_cap``), plus any background *backlog* beyond the write-buffer
watermark (modeling forced write-drain when buffers fill). Demand service
pushes pending background work back, conserving total occupancy.

This keeps the two properties the paper's analysis needs:

1. Isolated accesses reproduce the Figure 3 latency structure exactly
   (row-buffer hit = CAS, miss = ACT+CAS, then the burst).
2. Bandwidth-hungry designs (the LH-Cache's ~4x per-hit traffic,
   Section 2.5) build background backlogs that throttle their own demand
   accesses, while lean designs' reads barely notice their write traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dram.mapping import AddressMapping, RowLocation
from repro.dram.timings import DramTimings
from repro.lifecycle import LatencyBreakdown
from repro.stats import StatGroup
from repro.units import LINE_SIZE

#: Background operations that may queue per resource before demand accesses
#: are throttled to let the backlog drain (write-buffer depth).
BACKGROUND_BACKLOG_OPS = 8


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one DRAM access.

    Attributes:
        start: Cycle at which the bank began servicing the access.
        data_ready: Cycle of the first data beat (after ACT/CAS latencies).
        done: Cycle at which the last beat crossed the bus.
        row_hit: Whether the access hit in the open row buffer.
        queue_delay: Cycles spent waiting for the bank before service.
        bus_queue_delay: Cycles the ready data waited for the channel bus
            (``bus_start - data_ready``; previously dropped silently).
        act_cycles: Activation cycles charged (0 on a row hit; includes the
            explicit precharge when a conflicting row was open).
        cas_cycles: Column-access cycles charged (every access).
        burst_cycles: Bus cycles the transfer held the channel.

    The five stage fields decompose the access exactly:
    ``queue_delay + act_cycles + cas_cycles + bus_queue_delay +
    burst_cycles == done - issue time`` (see :meth:`breakdown`).
    """

    start: float
    data_ready: float
    done: float
    row_hit: bool
    queue_delay: float
    bus_queue_delay: float = 0.0
    act_cycles: float = 0.0
    cas_cycles: float = 0.0
    burst_cycles: float = 0.0

    def breakdown(self) -> LatencyBreakdown:
        """Device-level stage decomposition of this access.

        Stages are ``bank_queue`` / ``act`` / ``cas`` / ``bus_queue`` /
        ``burst``; their sum equals the end-to-end access latency. Designs
        usually fold these into the controller-level taxonomy via
        :meth:`~repro.lifecycle.LatencyBreakdown.attribute_device` instead.
        """
        return LatencyBreakdown(
            {
                "bank_queue": self.queue_delay,
                "act": self.act_cycles,
                "cas": self.cas_cycles,
                "bus_queue": self.bus_queue_delay,
                "burst": self.burst_cycles,
            }
        )


class PriorityTimeline:
    """A reservable resource with demand/background priority classes."""

    __slots__ = ("demand_free", "all_free")

    def __init__(self) -> None:
        self.demand_free = 0.0
        self.all_free = 0.0

    def reserve(
        self, now: float, service: float, background: bool, block_cap: float,
        watermark: float,
    ) -> float:
        """Reserve ``service`` cycles; returns the start time."""
        if background:
            start = max(now, self.all_free)
            self.all_free = start + service
            return start
        start = max(now, self.demand_free)
        backlog = self.all_free - start
        if backlog > 0:
            # One in-flight background burst cannot be preempted; backlog
            # beyond the write-buffer watermark forces a drain.
            start += min(backlog, block_cap) + max(0.0, backlog - watermark)
        end = start + service
        self.demand_free = end
        # Pending background work is pushed back by the demand service.
        self.all_free = max(self.all_free, start) + service
        return start

    def backlog_at(self, now: float) -> float:
        """Outstanding (mostly background) occupancy beyond ``now``."""
        return max(0.0, self.all_free - now)


class DramDevice:
    """One DRAM device (off-chip memory or the stacked cache array).

    ``page_policy`` selects row-buffer management: ``"open"`` (default)
    leaves rows open after an access so spatially-local streams get CAS-only
    hits; ``"closed"`` auto-precharges after every access, making every
    access pay ACT+CAS — useful for quantifying how much of a design's
    benefit rides on row-buffer locality.
    """

    def __init__(
        self,
        timings: DramTimings,
        name: Optional[str] = None,
        page_policy: str = "open",
    ) -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.page_policy = page_policy
        self.timings = timings
        self.name = name or timings.name
        self.mapping = AddressMapping(
            timings.channels, timings.banks_per_channel, timings.row_bytes
        )
        n_banks = timings.channels * timings.banks_per_channel
        self._banks: List[PriorityTimeline] = [PriorityTimeline() for _ in range(n_banks)]
        self._open_row: List[Optional[int]] = [None] * n_banks
        self._buses: List[PriorityTimeline] = [
            PriorityTimeline() for _ in range(timings.channels)
        ]
        self.stats = StatGroup(self.name)

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def _bank_index(self, loc: RowLocation) -> int:
        return loc.channel * self.timings.banks_per_channel + loc.bank

    def _block_cap(self) -> float:
        """Maximum demand blocking behind background: one burst tail."""
        return self.timings.t_cas + self.timings.line_burst

    def _watermark(self) -> float:
        """Background backlog tolerated before demand throttling."""
        return BACKGROUND_BACKLOG_OPS * self._block_cap()

    def access(
        self,
        now: float,
        loc: RowLocation,
        burst_cycles: Optional[int] = None,
        is_write: bool = False,
        background: bool = False,
    ) -> AccessResult:
        """Perform one access to ``loc`` transferring ``burst_cycles`` of data.

        ``burst_cycles`` defaults to one 64 B line. ``background`` marks
        deprioritized traffic (fills, updates, writebacks) as described in
        the module docstring.
        """
        t = self.timings
        if burst_cycles is None:
            burst_cycles = t.line_burst

        bank_idx = self._bank_index(loc)
        open_row = self._open_row[bank_idx]
        row_hit = open_row == loc.row
        if row_hit:
            act_cycles = 0
        elif open_row is None:
            act_cycles = t.t_act
        else:
            act_cycles = t.t_rp + t.t_act
        core_latency = act_cycles + t.t_cas

        bank_service = core_latency + burst_cycles
        start = self._banks[bank_idx].reserve(
            now, bank_service, background, self._block_cap(), self._watermark()
        )
        queue_delay = start - now
        data_ready = start + core_latency
        bus_start = self._buses[loc.channel].reserve(
            data_ready, burst_cycles, background, t.line_burst, self._watermark()
        )
        bus_queue_delay = bus_start - data_ready
        done = bus_start + burst_cycles
        self._open_row[bank_idx] = loc.row if self.page_policy == "open" else None

        self.stats.counter("accesses").add()
        if row_hit:
            self.stats.counter("row_hits").add()
        self.stats.counter("write_accesses" if is_write else "read_accesses").add()
        if background:
            self.stats.counter("background_accesses").add()
        self.stats.counter("bus_cycles").add(burst_cycles)
        if not row_hit:
            self.stats.counter("activations").add()
        self.stats.counter("bytes_on_bus").add(
            int(burst_cycles * LINE_SIZE / t.line_burst)
        )
        self.stats.accumulator("queue_delay").sample(queue_delay)
        self.stats.accumulator("bus_queue_delay").sample(bus_queue_delay)
        if not background:
            self.stats.accumulator("demand_queue_delay").sample(queue_delay)
            self.stats.accumulator("demand_bus_queue_delay").sample(bus_queue_delay)
        self.stats.accumulator("access_latency").sample(done - now)
        return AccessResult(
            start=start,
            data_ready=data_ready,
            done=done,
            row_hit=row_hit,
            queue_delay=queue_delay,
            bus_queue_delay=bus_queue_delay,
            act_cycles=float(act_cycles),
            cas_cycles=float(t.t_cas),
            burst_cycles=float(burst_cycles),
        )

    def access_line(
        self,
        now: float,
        line_address: int,
        is_write: bool = False,
        background: bool = False,
    ) -> AccessResult:
        """Access a line through the device's built-in address mapping."""
        loc = self.mapping.locate(line_address)
        return self.access(
            now, loc, self.timings.line_burst, is_write=is_write, background=background
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_row_at(self, loc: RowLocation) -> Optional[int]:
        """The row currently open in ``loc``'s bank (None if closed)."""
        return self._open_row[self._bank_index(loc)]

    def would_row_hit(self, loc: RowLocation) -> bool:
        """True if an access to ``loc`` right now would hit the row buffer."""
        return self.open_row_at(loc) == loc.row

    def bank_free_at(self, loc: RowLocation) -> float:
        """Earliest cycle at which ``loc``'s bank can begin a new demand access."""
        return self._banks[self._bank_index(loc)].demand_free

    def bank_backlog(self, loc: RowLocation, now: float) -> float:
        """Outstanding occupancy (incl. background) on ``loc``'s bank."""
        return self._banks[self._bank_index(loc)].backlog_at(now)

    @property
    def row_hit_rate(self) -> float:
        acc = self.stats.counter("accesses").value
        return self.stats.counter("row_hits").value / acc if acc else 0.0

    def bus_utilization(self, elapsed_cycles: float) -> float:
        """Aggregate data-bus utilization across channels over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.stats.counter("bus_cycles").value
        return busy / (elapsed_cycles * self.timings.channels)

    def reset(self) -> None:
        """Clear all timeline and row-buffer state.

        Warmup never touches the device (it is purely functional, replaying
        records through the designs' ``warm`` hooks without advancing time),
        so this is only needed when reusing one device across independent
        simulations, e.g. in unit tests.
        """
        self._banks = [PriorityTimeline() for _ in self._banks]
        self._open_row = [None] * len(self._open_row)
        self._buses = [PriorityTimeline() for _ in self._buses]
        self.stats.reset()
