"""Resource-timeline DRAM device model with read-over-write priority.

Each bank and each per-channel data bus is a *priority timeline* with two
horizons:

* ``demand_free`` — when the resource can next serve critical-path traffic
  (demand reads, tag probes);
* ``all_free`` — the full occupancy horizon including **background** traffic
  (fills, replacement updates, writebacks), which a real memory controller
  buffers and deprioritizes behind reads.

A background access queues at ``all_free`` — background work is serviced
in order among itself. A demand access queues only behind other demand work,
plus a bounded interference term: at most one in-flight background burst
(``block_cap``), plus any background *backlog* beyond the write-buffer
watermark (modeling forced write-drain when buffers fill). Demand service
pushes pending background work back, conserving total occupancy.

Both the block cap and the watermark are sized in the *resource's own*
service units: a bank serves one background line in ``t_cas + line_burst``
cycles, the channel bus in ``line_burst`` cycles, so each resource tolerates
``BACKGROUND_BACKLOG_OPS`` buffered background lines before demand traffic
is throttled into the drain.

This keeps the two properties the paper's analysis needs:

1. Isolated accesses reproduce the Figure 3 latency structure exactly
   (row-buffer hit = CAS, miss = ACT+CAS, then the burst).
2. Bandwidth-hungry designs (the LH-Cache's ~4x per-hit traffic,
   Section 2.5) build background backlogs that throttle their own demand
   accesses, while lean designs' reads barely notice their write traffic.

Implementation note: ``access()`` is the hottest function in the whole
simulator (every simulated read triggers 1-5 device accesses), so it
trades a little readability for speed — the timeline reservation
arithmetic is inlined (kept expression-for-expression identical to
:meth:`PriorityTimeline.reserve`, which remains the reference
implementation), integer counters are batched into plain attributes and
flushed through the :attr:`DramDevice.stats` property, and the timing
constants are precomputed once per device.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.mapping import AddressMapping, RowLocation
from repro.dram.timings import DramTimings
from repro.lifecycle import LatencyBreakdown
from repro.stats import Accumulator, StatGroup
from repro.units import LINE_SIZE

#: Background operations that may queue per resource before demand accesses
#: are throttled to let the backlog drain (write-buffer depth).
BACKGROUND_BACKLOG_OPS = 8


class AccessResult:
    """Outcome of one DRAM access.

    Attributes:
        start: Cycle at which the bank began servicing the access.
        data_ready: Cycle of the first data beat (after ACT/CAS latencies).
        done: Cycle at which the last beat crossed the bus.
        row_hit: Whether the access hit in the open row buffer.
        queue_delay: Cycles spent waiting for the bank before service.
        bus_queue_delay: Cycles the ready data waited for the channel bus
            (``bus_start - data_ready``; previously dropped silently).
        act_cycles: Activation cycles charged (0 on a row hit; includes the
            explicit precharge when a conflicting row was open).
        cas_cycles: Column-access cycles charged (every access).
        burst_cycles: Bus cycles the transfer held the channel.

    The five stage fields decompose the access exactly:
    ``queue_delay + act_cycles + cas_cycles + bus_queue_delay +
    burst_cycles == done - issue time`` (see :meth:`breakdown`).
    """

    __slots__ = (
        "start",
        "data_ready",
        "done",
        "row_hit",
        "queue_delay",
        "bus_queue_delay",
        "act_cycles",
        "cas_cycles",
        "burst_cycles",
    )

    def __init__(
        self,
        start: float,
        data_ready: float,
        done: float,
        row_hit: bool,
        queue_delay: float,
        bus_queue_delay: float = 0.0,
        act_cycles: float = 0.0,
        cas_cycles: float = 0.0,
        burst_cycles: float = 0.0,
    ) -> None:
        self.start = start
        self.data_ready = data_ready
        self.done = done
        self.row_hit = row_hit
        self.queue_delay = queue_delay
        self.bus_queue_delay = bus_queue_delay
        self.act_cycles = act_cycles
        self.cas_cycles = cas_cycles
        self.burst_cycles = burst_cycles

    def _astuple(self):
        return (
            self.start,
            self.data_ready,
            self.done,
            self.row_hit,
            self.queue_delay,
            self.bus_queue_delay,
            self.act_cycles,
            self.cas_cycles,
            self.burst_cycles,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            "AccessResult(start={}, data_ready={}, done={}, row_hit={}, "
            "queue_delay={}, bus_queue_delay={}, act_cycles={}, "
            "cas_cycles={}, burst_cycles={})".format(*self._astuple())
        )

    def breakdown(self) -> LatencyBreakdown:
        """Device-level stage decomposition of this access.

        Stages are ``bank_queue`` / ``act`` / ``cas`` / ``bus_queue`` /
        ``burst``; their sum equals the end-to-end access latency. Designs
        usually fold these into the controller-level taxonomy via
        :meth:`~repro.lifecycle.LatencyBreakdown.attribute_device` instead.
        """
        return LatencyBreakdown(
            {
                "bank_queue": self.queue_delay,
                "act": self.act_cycles,
                "cas": self.cas_cycles,
                "bus_queue": self.bus_queue_delay,
                "burst": self.burst_cycles,
            }
        )


class PriorityTimeline:
    """A reservable resource with demand/background priority classes.

    ``DramDevice.access`` inlines this arithmetic for speed; this class is
    the reference implementation (and what unit tests exercise directly).
    Any behavioral change here must be mirrored in the inlined copy — and
    the mirror contract is enforced continuously by
    :class:`repro.verify.oracle.OracleDramDevice` plus the differential
    fuzzer behind ``repro check``, which drive both implementations with
    identical streams and require bit-identical results.
    """

    __slots__ = ("demand_free", "all_free")

    def __init__(self) -> None:
        self.demand_free = 0.0
        self.all_free = 0.0

    def reserve(
        self, now: float, service: float, background: bool, block_cap: float,
        watermark: float,
    ) -> float:
        """Reserve ``service`` cycles; returns the start time."""
        if background:
            start = max(now, self.all_free)
            self.all_free = start + service
            return start
        start = max(now, self.demand_free)
        backlog = self.all_free - start
        if backlog > 0:
            # One in-flight background burst cannot be preempted; backlog
            # beyond the write-buffer watermark forces a drain.
            start += min(backlog, block_cap) + max(0.0, backlog - watermark)
        end = start + service
        self.demand_free = end
        # Pending background work is pushed back by the demand service.
        self.all_free = max(self.all_free, start) + service
        return start

    def backlog_at(self, now: float) -> float:
        """Outstanding (mostly background) occupancy beyond ``now``."""
        return max(0.0, self.all_free - now)

    def reset(self) -> None:
        self.demand_free = 0.0
        self.all_free = 0.0


class DramDevice:
    """One DRAM device (off-chip memory or the stacked cache array).

    ``page_policy`` selects row-buffer management: ``"open"`` (default)
    leaves rows open after an access so spatially-local streams get CAS-only
    hits; ``"closed"`` auto-precharges after every access, making every
    access pay ACT+CAS — useful for quantifying how much of a design's
    benefit rides on row-buffer locality.
    """

    def __init__(
        self,
        timings: DramTimings,
        name: Optional[str] = None,
        page_policy: str = "open",
    ) -> None:
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.page_policy = page_policy
        self.timings = timings
        self.name = name or timings.name
        self.mapping = AddressMapping(
            timings.channels, timings.banks_per_channel, timings.row_bytes
        )
        n_banks = timings.channels * timings.banks_per_channel
        self._banks: List[PriorityTimeline] = [PriorityTimeline() for _ in range(n_banks)]
        self._open_row: List[Optional[int]] = [None] * n_banks
        self._buses: List[PriorityTimeline] = [
            PriorityTimeline() for _ in range(timings.channels)
        ]
        self._stats = StatGroup(self.name)
        # --- hot-path precomputation -----------------------------------
        self._open_policy = page_policy == "open"
        self._banks_per_channel = timings.banks_per_channel
        self._t_cas = timings.t_cas
        self._t_act = timings.t_act
        self._act_conflict = timings.t_rp + timings.t_act
        self._cas_f = float(timings.t_cas)
        self._line_burst = timings.line_burst
        self._block_cap_value = timings.t_cas + timings.line_burst
        self._watermark_value = BACKGROUND_BACKLOG_OPS * self._block_cap_value
        # The bus serves one background line in ``line_burst`` cycles, so
        # its watermark is sized in bus-service units (the bank-sized
        # watermark previously used here made the bus drain threshold ~8x
        # too deep — adjudicated by the differential oracle, see
        # ``repro.verify``).
        self._bus_watermark_value = BACKGROUND_BACKLOG_OPS * timings.line_burst
        # Bytes for a full-line burst; int(burst * LINE_SIZE / line_burst)
        # is exact for burst == line_burst, so the fast path is identical.
        self._full_line_bytes = int(
            timings.line_burst * LINE_SIZE / timings.line_burst
        )
        # One tuple holding every per-access constant: a single attribute
        # load + unpack at the top of ``access`` instead of eight loads.
        self._hot = (
            self._t_act,
            self._act_conflict,
            self._t_cas,
            self._cas_f,
            self._line_burst,
            self._block_cap_value,
            self._watermark_value,
            self._bus_watermark_value,
            self._full_line_bytes,
            float(self._t_act),
            float(self._act_conflict),
            float(timings.line_burst),
        )
        # Batched integer counters, flushed by the ``stats`` property.
        # Exact: integer addition is associative, so flush order does not
        # change the totals the way float batching would.
        self._n_accesses = 0
        self._n_row_hits = 0
        self._n_reads = 0
        self._n_writes = 0
        self._n_background = 0
        self._n_bus_cycles = 0
        self._n_activations = 0
        self._n_bytes = 0
        # Accumulators keep per-sample op order (float sums must not be
        # batched or reassociated); the refs are bound lazily so the stat
        # group's key set matches the unoptimized lazy-creation behavior.
        self._acc_queue: Optional[Accumulator] = None
        self._acc_bus_queue: Optional[Accumulator] = None
        self._acc_demand_queue: Optional[Accumulator] = None
        self._acc_demand_bus_queue: Optional[Accumulator] = None
        self._acc_latency: Optional[Accumulator] = None

    @property
    def stats(self) -> StatGroup:
        """The device stat group, with any batched hot-path deltas flushed.

        The zero-delta guards preserve lazy counter creation: a counter
        appears in the group only once it has actually been incremented,
        exactly as with direct ``counter(name).add()`` calls.
        """
        group = self._stats
        if self._n_accesses:
            group.counter("accesses").value += self._n_accesses
            self._n_accesses = 0
        if self._n_row_hits:
            group.counter("row_hits").value += self._n_row_hits
            self._n_row_hits = 0
        if self._n_reads:
            group.counter("read_accesses").value += self._n_reads
            self._n_reads = 0
        if self._n_writes:
            group.counter("write_accesses").value += self._n_writes
            self._n_writes = 0
        if self._n_background:
            group.counter("background_accesses").value += self._n_background
            self._n_background = 0
        if self._n_bus_cycles:
            group.counter("bus_cycles").value += self._n_bus_cycles
            self._n_bus_cycles = 0
        if self._n_activations:
            group.counter("activations").value += self._n_activations
            self._n_activations = 0
        if self._n_bytes:
            group.counter("bytes_on_bus").value += self._n_bytes
            self._n_bytes = 0
        return group

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def _bank_index(self, loc: RowLocation) -> int:
        return loc.channel * self.timings.banks_per_channel + loc.bank

    def _block_cap(self) -> float:
        """Maximum demand blocking behind background: one burst tail."""
        return self._block_cap_value

    def _watermark(self) -> float:
        """Background bank backlog tolerated before demand throttling."""
        return self._watermark_value

    def _bus_block_cap(self) -> float:
        """Maximum demand blocking behind background on the bus: one burst."""
        return self._line_burst

    def _bus_watermark(self) -> float:
        """Background bus backlog tolerated before demand throttling,
        in bus-service units (one background line = ``line_burst`` cycles)."""
        return self._bus_watermark_value

    def access(
        self,
        now: float,
        loc: RowLocation,
        burst_cycles: Optional[int] = None,
        is_write: bool = False,
        background: bool = False,
    ) -> AccessResult:
        """Perform one access to ``loc`` transferring ``burst_cycles`` of data.

        ``burst_cycles`` defaults to one 64 B line. ``background`` marks
        deprioritized traffic (fills, updates, writebacks) as described in
        the module docstring.
        """
        (
            t_act,
            act_conflict,
            t_cas,
            cas_f,
            line_burst,
            block_cap,
            watermark,
            bus_watermark,
            full_line_bytes,
            t_act_f,
            act_conflict_f,
            line_burst_f,
        ) = self._hot
        if burst_cycles is None:
            burst_cycles = line_burst

        channel = loc.channel
        row = loc.row
        bank_idx = channel * self._banks_per_channel + loc.bank
        open_rows = self._open_row
        open_row = open_rows[bank_idx]
        row_hit = open_row == row
        if row_hit:
            act_cycles = 0
            act_f = 0.0
        elif open_row is None:
            act_cycles = t_act
            act_f = t_act_f
        else:
            act_cycles = act_conflict
            act_f = act_conflict_f
        core_latency = act_cycles + t_cas

        bank_service = core_latency + burst_cycles

        # Inlined PriorityTimeline.reserve (bank): expression-for-expression
        # identical to the reference method, so float results match bit-wise.
        bank = self._banks[bank_idx]
        if background:
            free = bank.all_free
            start = now if now >= free else free
            bank.all_free = start + bank_service
        else:
            free = bank.demand_free
            start = now if now >= free else free
            backlog = bank.all_free - start
            if backlog > 0:
                blocked = backlog if backlog <= block_cap else block_cap
                drain = backlog - watermark
                start += blocked + (drain if drain > 0.0 else 0.0)
            bank.demand_free = start + bank_service
            free = bank.all_free
            bank.all_free = (free if free >= start else start) + bank_service

        queue_delay = start - now
        data_ready = start + core_latency

        # Inlined PriorityTimeline.reserve (channel bus).
        bus = self._buses[channel]
        if background:
            free = bus.all_free
            bus_start = data_ready if data_ready >= free else free
            bus.all_free = bus_start + burst_cycles
        else:
            free = bus.demand_free
            bus_start = data_ready if data_ready >= free else free
            backlog = bus.all_free - bus_start
            if backlog > 0:
                blocked = backlog if backlog <= line_burst else line_burst
                drain = backlog - bus_watermark
                bus_start += blocked + (drain if drain > 0.0 else 0.0)
            bus.demand_free = bus_start + burst_cycles
            free = bus.all_free
            bus.all_free = (free if free >= bus_start else bus_start) + burst_cycles

        bus_queue_delay = bus_start - data_ready
        done = bus_start + burst_cycles
        open_rows[bank_idx] = row if self._open_policy else None

        self._n_accesses += 1
        if row_hit:
            self._n_row_hits += 1
        else:
            self._n_activations += 1
        if is_write:
            self._n_writes += 1
        else:
            self._n_reads += 1
        if background:
            self._n_background += 1
        self._n_bus_cycles += burst_cycles
        if burst_cycles == line_burst:
            self._n_bytes += full_line_bytes
            burst_f = line_burst_f
        else:
            self._n_bytes += int(burst_cycles * LINE_SIZE / line_burst)
            burst_f = float(burst_cycles)

        # Accumulator.sample inlined (same ops in the same per-sample
        # order, so float sums stay bit-identical): five samples per
        # access made the call overhead a measurable slice of the run.
        acc = self._acc_queue
        if acc is None:
            acc = self._acc_queue = self._stats.accumulator("queue_delay")
        acc.total += queue_delay
        acc.count += 1
        m = acc.min
        if m is None or queue_delay < m:
            acc.min = queue_delay
        m = acc.max
        if m is None or queue_delay > m:
            acc.max = queue_delay
        acc = self._acc_bus_queue
        if acc is None:
            acc = self._acc_bus_queue = self._stats.accumulator("bus_queue_delay")
        acc.total += bus_queue_delay
        acc.count += 1
        m = acc.min
        if m is None or bus_queue_delay < m:
            acc.min = bus_queue_delay
        m = acc.max
        if m is None or bus_queue_delay > m:
            acc.max = bus_queue_delay
        if not background:
            acc = self._acc_demand_queue
            if acc is None:
                acc = self._acc_demand_queue = self._stats.accumulator(
                    "demand_queue_delay"
                )
            acc.total += queue_delay
            acc.count += 1
            m = acc.min
            if m is None or queue_delay < m:
                acc.min = queue_delay
            m = acc.max
            if m is None or queue_delay > m:
                acc.max = queue_delay
            acc = self._acc_demand_bus_queue
            if acc is None:
                acc = self._acc_demand_bus_queue = self._stats.accumulator(
                    "demand_bus_queue_delay"
                )
            acc.total += bus_queue_delay
            acc.count += 1
            m = acc.min
            if m is None or bus_queue_delay < m:
                acc.min = bus_queue_delay
            m = acc.max
            if m is None or bus_queue_delay > m:
                acc.max = bus_queue_delay
        latency = done - now
        acc = self._acc_latency
        if acc is None:
            acc = self._acc_latency = self._stats.accumulator("access_latency")
        acc.total += latency
        acc.count += 1
        m = acc.min
        if m is None or latency < m:
            acc.min = latency
        m = acc.max
        if m is None or latency > m:
            acc.max = latency

        result = AccessResult.__new__(AccessResult)
        result.start = start
        result.data_ready = data_ready
        result.done = done
        result.row_hit = row_hit
        result.queue_delay = queue_delay
        result.bus_queue_delay = bus_queue_delay
        result.act_cycles = act_f
        result.cas_cycles = cas_f
        result.burst_cycles = burst_f
        return result

    def access_line(
        self,
        now: float,
        line_address: int,
        is_write: bool = False,
        background: bool = False,
    ) -> AccessResult:
        """Access a line through the device's built-in address mapping."""
        loc = self.mapping.locate(line_address)
        return self.access(
            now, loc, self.timings.line_burst, is_write=is_write, background=background
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_row_at(self, loc: RowLocation) -> Optional[int]:
        """The row currently open in ``loc``'s bank (None if closed)."""
        return self._open_row[self._bank_index(loc)]

    def would_row_hit(self, loc: RowLocation) -> bool:
        """True if an access to ``loc`` right now would hit the row buffer."""
        return self.open_row_at(loc) == loc.row

    def bank_free_at(self, loc: RowLocation) -> float:
        """Earliest cycle at which ``loc``'s bank can begin a new demand access."""
        return self._banks[self._bank_index(loc)].demand_free

    def bank_backlog(self, loc: RowLocation, now: float) -> float:
        """Outstanding occupancy (incl. background) on ``loc``'s bank."""
        return self._banks[self._bank_index(loc)].backlog_at(now)

    @property
    def row_hit_rate(self) -> float:
        stats = self.stats
        acc = stats.counter("accesses").value
        return stats.counter("row_hits").value / acc if acc else 0.0

    def bus_utilization(self, elapsed_cycles: float) -> float:
        """Aggregate data-bus utilization across channels over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.stats.counter("bus_cycles").value
        return busy / (elapsed_cycles * self.timings.channels)

    def reset(self) -> None:
        """Clear all timeline, row-buffer, and statistics state.

        Warmup never touches the device (it is purely functional, replaying
        records through the designs' ``warm`` hooks without advancing time),
        so this is only needed when reusing one device across independent
        simulations, e.g. in unit tests.
        """
        for bank in self._banks:
            bank.reset()
        for bus in self._buses:
            bus.reset()
        self._open_row = [None] * len(self._open_row)
        # Discard batched deltas *before* resetting the group — flushing
        # them through the ``stats`` property here would resurrect
        # pre-reset counts (the staleness bug this reset guards against).
        self._n_accesses = 0
        self._n_row_hits = 0
        self._n_reads = 0
        self._n_writes = 0
        self._n_background = 0
        self._n_bus_cycles = 0
        self._n_activations = 0
        self._n_bytes = 0
        self._stats.reset()
