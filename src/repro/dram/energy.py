"""DRAM energy estimation (paper Section 5.6).

The paper argues qualitatively that PAM "would almost double the memory
activity compared to SAM", so unregulated parallel access is a power
problem, while MAP-I's wasteful parallel accesses are only ~2% of L3 misses.
This module makes that argument quantitative: an activity-based energy
estimator over the device statistics the simulator already collects.

The model charges two components per device:

* **activation energy** per row activation (row-buffer miss), covering the
  ACT/PRE pair for one 2 KB row;
* **transfer energy** per bit moved on the data bus (array column access +
  I/O), which is where stacked DRAM's TSV interface beats the off-chip
  DDR bus by roughly an order of magnitude per bit.

The default constants are representative of ~2012-era publications on DDR3
and die-stacked DRAM (Micron DDR3 power notes; 3D-stacked I/O energy in the
4-8 pJ/bit range vs 20-40 pJ/bit off-chip). Absolute joules are indicative;
*ratios across designs* — the paper's actual claim — depend only on activity
counts, which the simulator measures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.device import DramDevice


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants for one DRAM device class.

    Attributes:
        activate_nj: Energy per row activation (ACT + implied PRE), nJ.
        transfer_pj_per_bit: Column access + bus I/O energy per bit moved.
    """

    activate_nj: float
    transfer_pj_per_bit: float

    def access_energy_nj(self, activations: int, bytes_on_bus: int) -> float:
        """Total access energy in nJ for the given activity counts."""
        transfer_nj = bytes_on_bus * 8 * self.transfer_pj_per_bit / 1000.0
        return activations * self.activate_nj + transfer_nj


#: Off-chip DDR3: ~22 nJ per 2 KB activation, ~26 pJ/bit end-to-end transfer.
OFFCHIP_ENERGY = EnergyParams(activate_nj=22.0, transfer_pj_per_bit=26.0)

#: Die-stacked DRAM: similar array activation, far cheaper TSV I/O.
STACKED_ENERGY = EnergyParams(activate_nj=12.0, transfer_pj_per_bit=5.0)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to one device over a simulation."""

    device: str
    activations: int
    bytes_on_bus: int
    activation_nj: float
    transfer_nj: float

    @property
    def total_nj(self) -> float:
        return self.activation_nj + self.transfer_nj


def device_energy(
    device: DramDevice, params: EnergyParams
) -> EnergyBreakdown:
    """Estimate one device's access energy from its collected statistics."""
    activations = device.stats.counter("activations").value
    bytes_on_bus = device.stats.counter("bytes_on_bus").value
    return EnergyBreakdown(
        device=device.name,
        activations=activations,
        bytes_on_bus=bytes_on_bus,
        activation_nj=activations * params.activate_nj,
        transfer_nj=bytes_on_bus * 8 * params.transfer_pj_per_bit / 1000.0,
    )


def system_energy(
    memory: DramDevice,
    stacked: DramDevice,
    offchip_params: EnergyParams = OFFCHIP_ENERGY,
    stacked_params: EnergyParams = STACKED_ENERGY,
) -> Dict[str, EnergyBreakdown]:
    """Energy breakdown for both devices of one simulated system."""
    return {
        "memory": device_energy(memory, offchip_params),
        "stacked": device_energy(stacked, stacked_params),
    }
