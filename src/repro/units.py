"""Size and unit constants shared across the simulator.

All capacities are in bytes, all latencies in 4 GHz processor cycles (the
paper reports every latency parameter in processor cycles, see Section 2.4),
and all addresses are *line* addresses unless a name says otherwise.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Cache line size used throughout the paper (bytes).
LINE_SIZE = 64

#: DRAM row buffer size for both off-chip and stacked DRAM (bytes).
ROW_BUFFER_SIZE = 2048

#: Lines that fit in one 2 KB row.
LINES_PER_ROW = ROW_BUFFER_SIZE // LINE_SIZE  # 32

#: Width of the stacked-DRAM data bus (bytes); transfers are aligned to this.
STACKED_BUS_BYTES = 16

#: Size of one Alloy-Cache tag entry (bytes): 42 tag bits + valid + dirty
#: + coherence/optimization bits, rounded to 8 bytes (Section 4.1).
TAG_ENTRY_SIZE = 8

#: Size of one TAD (tag-and-data) unit: 64 B line + 8 B tag.
TAD_SIZE = LINE_SIZE + TAG_ENTRY_SIZE  # 72

#: TADs per 2 KB row in the Alloy Cache (28, with 32 bytes unused).
TADS_PER_ROW = ROW_BUFFER_SIZE // TAD_SIZE  # 28

#: Data lines per row in the LH-Cache (3 of the 32 lines hold tags).
LH_WAYS = 29

#: Tag lines per row in the LH-Cache.
LH_TAG_LINES = 3


def lines(capacity_bytes: int) -> int:
    """Number of 64 B lines in ``capacity_bytes``."""
    return capacity_bytes // LINE_SIZE


def line_addr(byte_addr: int) -> int:
    """Convert a byte address to a line address."""
    return byte_addr // LINE_SIZE


def pretty_size(capacity_bytes: int) -> str:
    """Render a capacity like ``256MB``, ``1GB`` or ``10.4GB`` for reports."""
    if capacity_bytes % GB == 0:
        return f"{capacity_bytes // GB}GB"
    if capacity_bytes % MB == 0:
        return f"{capacity_bytes // MB}MB"
    if capacity_bytes % KB == 0:
        return f"{capacity_bytes // KB}KB"
    if capacity_bytes >= GB:
        return f"{capacity_bytes / GB:.1f}GB"
    if capacity_bytes >= MB:
        return f"{capacity_bytes / MB:.0f}MB"
    return f"{capacity_bytes}B"


def parse_size(text: str) -> int:
    """Parse ``"256MB"`` / ``"1GB"`` / ``"64KB"`` / plain byte counts."""
    text = text.strip().upper()
    for suffix, mult in (("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(text)
