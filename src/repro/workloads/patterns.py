"""Synthetic access-pattern generators standing in for SPEC2006 traces.

We do not have SPEC binaries or a Pin front-end, so each benchmark is modeled
as a weighted mixture of canonical memory behaviours (DESIGN.md, substitution
1). The DRAM-cache trade-offs the paper measures depend on four properties of
the post-L3 stream, and each is a first-class parameter here:

* miss arrival rate      -> ``mpki`` (gap cycles between demand misses),
* spatial locality       -> ``sequential`` components with long run lengths
                            (row-buffer friendly "type X" accesses),
* temporal reuse         -> ``hot``/``zipf`` components sized relative to the
                            cache (DRAM-cache hit rate, associativity
                            sensitivity),
* streaming/cold traffic -> ``pointer`` and large ``sequential`` components
                            ("type Y" accesses, compulsory misses).

Hit/miss outcomes correlate with the generating component, and each component
draws from its own small pool of instruction addresses — which is precisely
the correlation MAP-I exploits (Section 5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.units import LINE_SIZE
from repro.workloads.trace import CoreTrace

#: Version of the generated trace *streams*. Part of every workload-arena
#: cache key (:mod:`repro.workloads.arena`): bump whenever a change to this
#: module alters the emitted addresses/pcs/gaps for any (config, seed), so
#: persisted ``.npz`` arenas from older generators are invalidated. Pure
#: speedups that keep streams bit-identical (guarded by the golden
#: scorecard) must NOT bump it.
GENERATOR_VERSION = 1

#: Compute CPI between misses for a 4-wide core (gap cycles per instruction).
COMPUTE_CPI = 0.25

#: Geometric mean burst length for non-sequential components.
DEFAULT_BURST = 3

#: Geometric mean number of bursts a component stays active once selected.
PHASE_BURSTS = 10

#: Bursts at or above this many records are emitted as vectorized numpy
#: expressions; shorter ones as plain Python lists (numpy's fixed per-call
#: overhead loses below roughly this size). Both paths consume the RNG
#: streams identically, so the threshold is a pure speed knob — moving it
#: cannot change a generated trace.
VECTOR_BURST_MIN = 16


@dataclass(frozen=True)
class Component:
    """One access-pattern component of a benchmark mixture.

    Attributes:
        kind: ``sequential`` (streaming runs), ``strided`` (fixed-stride
            walks, ``run_length`` lines apart), ``hot`` (uniform reuse
            within a small region), ``zipf`` (skewed reuse), or ``pointer``
            (dependent chasing over a large region, negligible reuse).
        weight: Mixture weight (relative).
        region_bytes: *Nominal* region size; divided by the capacity scale
            when a trace is generated.
        run_length: Mean consecutive-line run length (sequential locality).
        zipf_alpha: Skew for ``zipf`` components.
        pc_pool: Distinct instruction addresses this component issues from.
    """

    kind: str
    weight: float
    region_bytes: int
    run_length: int = 1
    zipf_alpha: float = 1.4
    pc_pool: int = 4


@dataclass(frozen=True)
class PatternConfig:
    """Full generative description of one benchmark's memory behaviour."""

    name: str
    mpki: float
    components: Tuple[Component, ...]
    write_fraction: float = 0.2
    footprint_bytes: int = 0  # nominal; defaults to the sum of regions
    #: Mean compute cycles between demand misses. Calibrated per benchmark
    #: so the no-DRAM-cache baseline reproduces Table 3's perfect-L3
    #: speedup; falls back to ``1000/mpki * COMPUTE_CPI`` when unset.
    gap_mean_cycles: float = 0.0

    def total_region_bytes(self) -> int:
        return self.footprint_bytes or sum(c.region_bytes for c in self.components)


class _ComponentState:
    """Mutable per-trace generation state for one component."""

    def __init__(self, comp: Component, region_lines: int, base_line: int, rng) -> None:
        self.comp = comp
        self.region_lines = max(region_lines, 1)
        self.base_line = base_line
        self.rng = rng
        self.cursor = int(rng.integers(self.region_lines))
        # Precompute a Zipf rank permutation so rank 0 is a fixed hot line.
        self._zipf_perm = None

    def next_burst(self, max_len: int):
        """Emit one burst as parallel (line_addresses, pc_slots) sequences.

        ``pc_slots`` is None for components whose accesses come from
        interchangeable instructions; hot/zipf components bind the slot to
        the address/rank, reproducing the real-program property that hot
        and cold data are touched by different code paths — the correlation
        MAP-I exploits (Section 5.3.2).

        Long bursts come back as one vectorized numpy expression; short
        bursts (below :data:`VECTOR_BURST_MIN`) as plain Python lists,
        which beat numpy's per-call overhead at those sizes. Either way
        the RNG draw *order* is exactly the record-at-a-time generator's:
        scalar draws stay scalar, and per-record draws become one
        ``size=length`` call, which numpy fills element-by-element from
        the same bit stream — so the emitted values are bit-identical
        regardless of which path a burst takes (pinned by the golden
        scorecard).
        """
        comp = self.comp
        rng = self.rng
        region = self.region_lines
        base = self.base_line
        if comp.kind == "sequential":
            length = min(max(1, int(rng.geometric(1.0 / comp.run_length))), max_len)
            cursor = self.cursor
            self.cursor = (cursor + length) % region
            if cursor + length <= region:
                # No wrap (the common case: regions dwarf run lengths).
                start = base + cursor
                if length < VECTOR_BURST_MIN:
                    return list(range(start, start + length)), None
                return np.arange(start, start + length, dtype=np.int64), None
            if length < VECTOR_BURST_MIN:
                return [base + (cursor + i) % region for i in range(length)], None
            rel = (cursor + np.arange(length, dtype=np.int64)) % region
            return base + rel, None
        if comp.kind == "strided":
            # Fixed-stride walk (column sweeps, HPC grids): run_length is
            # the stride in lines. Strides >= a row's 32 lines defeat the
            # row buffer entirely (pure "type Y" traffic).
            stride = max(comp.run_length, 1)
            length = min(max(1, int(rng.geometric(1.0 / DEFAULT_BURST))), max_len)
            cursor = self.cursor
            self.cursor = (cursor + stride * length) % region
            if length < VECTOR_BURST_MIN:
                return (
                    [base + (cursor + stride * i) % region for i in range(length)],
                    None,
                )
            rel = (cursor + stride * np.arange(length, dtype=np.int64)) % region
            return base + rel, None
        length = min(max(1, int(rng.geometric(1.0 / DEFAULT_BURST))), max_len)
        if comp.kind == "hot":
            start = int(rng.integers(region))
            pool = comp.pc_pool
            # PC binds to the address chunk: distinct loads walk distinct
            # structures, so a chunk that loses its cache slots to
            # conflicts keeps missing under the same PC — the per-PC
            # outcome bias MAP-I learns.
            if length < VECTOR_BURST_MIN:
                lines = []
                slots = []
                for i in range(length):
                    line = (start + i) % region
                    lines.append(base + line)
                    slots.append(line * pool // region)
                return lines, slots
            rel = (start + np.arange(length, dtype=np.int64)) % region
            return base + rel, rel * pool // region
        if comp.kind == "zipf":
            # Inverse-CDF power-law sample over ranks, clipped to region.
            # Rank maps to a contiguous line: hot data is clustered, as in
            # real heaps, which keeps direct-mapped conflicts between the
            # hot head and cold tail realistic rather than maximal.
            power = -1.0 / (comp.zipf_alpha - 1.0)
            pool_top = comp.pc_pool - 1
            if length < VECTOR_BURST_MIN:
                lines = []
                slots = []
                for _ in range(length):
                    rank = int(rng.random() ** power) - 1
                    rank = min(rank, region - 1)
                    lines.append(base + rank)
                    slots.append(min(rank.bit_length(), pool_top))
                return lines, slots
            u = rng.random(size=length)
            with np.errstate(over="ignore"):
                raw = u**power
            # Clip before the int cast (huge floats, inf); anything past
            # 2**62 is far beyond every region and clips to region-1 anyway.
            ranks = np.minimum(raw, float(1 << 62)).astype(np.int64) - 1
            ranks = np.minimum(ranks, region - 1)
            # frexp's exponent is exactly bit_length for ints < 2**53.
            # (int64, not frexp's native int32: pc bases exceed 2**31.)
            bit_lengths = np.frexp(ranks.astype(np.float64))[1].astype(np.int64)
            return base + ranks, np.minimum(bit_lengths, pool_top)
        if comp.kind == "pointer":
            start = int(rng.integers(region))
            self.cursor = start
            # Batched even when short: one bounded-integers call beats
            # ``length`` scalar calls at every size.
            return base + rng.integers(region, size=length), None
        raise ValueError(f"unknown component kind {comp.kind!r}")


def generate_core_trace(
    config: PatternConfig,
    num_reads: int,
    seed: int,
    capacity_scale: int = 256,
    base_line: int = 0,
) -> CoreTrace:
    """Generate one core's trace from a :class:`PatternConfig`.

    ``base_line`` offsets every address so rate-mode copies occupy disjoint
    physical ranges. Region sizes are divided by ``capacity_scale`` to match
    the scaled cache capacity (DESIGN.md, substitution 2).
    """
    rng = np.random.default_rng(seed)
    comps = config.components
    # Component weights are *per access*, but generation draws bursts: a
    # sequential component with run_length 64 emits ~64 accesses per draw.
    # Draw probabilities are therefore weight / expected-burst-length.
    burst_means = np.array(
        [
            c.run_length if c.kind == "sequential" else DEFAULT_BURST
            for c in comps
        ],
        dtype=float,
    )  # strided/hot/zipf/pointer bursts all average DEFAULT_BURST accesses
    weights = np.array([c.weight for c in comps], dtype=float) / burst_means
    weights /= weights.sum()
    # Phase draws replicate ``rng.choice(len(comps), p=weights)`` with the
    # CDF hoisted out of the loop: Generator.choice is exactly
    # ``cdf.searchsorted(self.random(), side="right")`` after normalizing,
    # so this consumes the identical stream (one double per draw) without
    # re-validating and re-accumulating ``p`` thousands of times.
    comp_cdf = weights.cumsum()
    comp_cdf /= comp_cdf[-1]

    # Lay components out back-to-back inside the core's region.
    states: List[_ComponentState] = []
    offset = 0
    for i, comp in enumerate(comps):
        region_lines = max(comp.region_bytes // capacity_scale // LINE_SIZE, 1)
        states.append(
            _ComponentState(
                comp,
                region_lines,
                base_line + offset,
                np.random.default_rng(seed * 1000003 + i),
            )
        )
        offset += region_lines

    pc_base = 0x400000 + (seed & 0xFFFF) * 0x10000
    comp_pc_bases = [pc_base + i * 0x1000 for i in range(len(comps))]

    read_addrs_arr = np.empty(num_reads, dtype=np.int64)
    read_pcs_arr = np.empty(num_reads, dtype=np.int64)
    read_dep_arr = np.zeros(num_reads, dtype=bool)
    total = 0
    # Programs execute in phases: once a component becomes active it stays
    # active for several bursts (geometric, mean PHASE_BURSTS). This temporal
    # clustering of hits and misses is what history-based predictors exploit
    # (Section 5.3's MMMMHHHH example). Bursts land as whole-array slice
    # assignments into preallocated outputs, and the per-record PC draws of
    # slot-free components become one batched ``integers`` call — which
    # consumes the main RNG stream in the same order as the old
    # record-at-a-time loop.
    while total < num_reads:
        comp_idx = int(comp_cdf.searchsorted(rng.random(), side="right"))
        comp = comps[comp_idx]
        state = states[comp_idx]
        comp_pc_base = comp_pc_bases[comp_idx]
        is_pointer = comp.kind == "pointer"
        phase_bursts = max(1, int(rng.geometric(1.0 / PHASE_BURSTS)))
        for _ in range(phase_bursts):
            if total >= num_reads:
                break
            lines, slots = state.next_burst(num_reads - total)
            end = total + len(lines)
            read_addrs_arr[total:end] = lines
            if slots is None:
                if comp.pc_pool > 1:
                    slots = rng.integers(comp.pc_pool, size=len(lines))
                    read_pcs_arr[total:end] = comp_pc_base + slots * 4
                else:
                    read_pcs_arr[total:end] = comp_pc_base
            elif type(slots) is list:
                read_pcs_arr[total:end] = [comp_pc_base + s * 4 for s in slots]
            else:
                read_pcs_arr[total:end] = comp_pc_base + slots * 4
            if is_pointer:
                read_dep_arr[total:end] = True
            total = end

    # Gap cycles: calibrated mean compute time between misses (see
    # PatternConfig.gap_mean_cycles) with exponential jitter for burstiness.
    mean_gap = config.gap_mean_cycles or (1000.0 / config.mpki) * COMPUTE_CPI
    gaps = rng.exponential(mean_gap, size=num_reads)

    # Writebacks: dirty L3 victims. Each is an address read a while ago
    # (L3-residency lag), posted alongside a demand miss (gap 0).
    num_writes = int(num_reads * config.write_fraction / (1.0 - config.write_fraction))
    if num_writes:
        src = rng.integers(0, num_reads, size=num_writes)
        lag = rng.integers(1, 512, size=num_writes)
        wb_idx = np.maximum(src - lag, 0)
        write_addrs = read_addrs_arr[wb_idx]
        insert_pos = np.sort(rng.integers(0, num_reads + 1, size=num_writes))
        addresses = np.insert(read_addrs_arr, insert_pos, write_addrs)
        pcs = np.insert(read_pcs_arr, insert_pos, 0)
        gaps_all = np.insert(gaps, insert_pos, 0.0)
        dependent = np.insert(read_dep_arr, insert_pos, False)
        is_write = np.zeros(num_reads + num_writes, dtype=bool)
        write_positions = insert_pos + np.arange(num_writes)
        is_write[write_positions] = True
    else:
        addresses = read_addrs_arr
        pcs = read_pcs_arr
        gaps_all = gaps
        dependent = read_dep_arr
        is_write = np.zeros(num_reads, dtype=bool)

    instructions = int(num_reads * 1000.0 / config.mpki)
    return CoreTrace(
        gaps=gaps_all,
        addresses=addresses,
        is_write=is_write,
        pcs=pcs,
        instructions=instructions,
        is_dependent=dependent,
    )
