"""Trace file I/O: persist workloads and import external traces.

Two formats:

* **npz** (preferred): all of a workload's per-core arrays in one compressed
  numpy archive — lossless round-trip of :class:`~repro.workloads.trace.Workload`.
* **CSV** (interchange): one request per line, ``core,gap,address,write,pc``
  — easy to produce from Pin/DynamoRIO/valgrind tooling or by hand.

This lets users run the simulator on *real* traces instead of the synthetic
catalog: capture an application's L3-miss stream, convert to CSV, load it,
and hand it to :func:`repro.sim.runner.run_design`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.workloads.trace import CoreTrace, Workload

PathLike = Union[str, Path]


def save_workload(workload: Workload, path: PathLike) -> None:
    """Save a workload to a compressed ``.npz`` archive."""
    arrays = {"name": np.array(workload.name), "num_cores": np.array(workload.num_cores)}
    for i, trace in enumerate(workload.cores):
        arrays[f"gaps_{i}"] = trace.gaps
        arrays[f"addresses_{i}"] = trace.addresses
        arrays[f"is_write_{i}"] = trace.is_write
        arrays[f"pcs_{i}"] = trace.pcs
        arrays[f"instructions_{i}"] = np.array(trace.instructions)
    np.savez_compressed(path, **arrays)


def load_workload(path: PathLike) -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    with np.load(path, allow_pickle=False) as data:
        num_cores = int(data["num_cores"])
        cores: List[CoreTrace] = []
        for i in range(num_cores):
            cores.append(
                CoreTrace(
                    gaps=data[f"gaps_{i}"],
                    addresses=data[f"addresses_{i}"],
                    is_write=data[f"is_write_{i}"],
                    pcs=data[f"pcs_{i}"],
                    instructions=int(data[f"instructions_{i}"]),
                )
            )
        return Workload(name=str(data["name"]), cores=cores)


def export_csv(workload: Workload, path: PathLike) -> None:
    """Write a workload as interchange CSV (core,gap,address,write,pc)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["core", "gap", "address", "write", "pc"])
        for core_id, trace in enumerate(workload.cores):
            for gap, address, is_write, pc in trace.records():
                writer.writerow([core_id, gap, address, int(is_write), pc])


def _parse_int(row: dict, column: str, line_num: int, path) -> int:
    """One integer CSV field, with the file/line named on any failure."""
    raw = row.get(column)
    if raw is None:
        raise ValueError(f"{path} line {line_num}: missing {column!r} value")
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{path} line {line_num}: {column}={raw!r} is not an integer"
        ) from None


def import_csv(
    path: PathLike,
    name: str = "imported",
    instructions_per_core: int = 0,
) -> Workload:
    """Load an interchange CSV into a workload.

    Rows may arrive in any core order; within a core, request order is
    preserved. ``instructions_per_core`` defaults to a nominal value of
    50 instructions per request (only MPKI reporting depends on it).

    Malformed rows fail fast with the offending line number instead of
    crashing deep inside the simulator: every field must parse (``gap`` as
    a float, the rest as integers), gaps and addresses must be
    non-negative, and the arrays are canonicalized to the generated-trace
    dtypes (``gaps`` float64, ``is_write`` bool, ``addresses``/``pcs``
    int64) so an imported workload is indistinguishable from a built one.
    """
    per_core: dict = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"core", "gap", "address", "write", "pc"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(f"CSV must have columns {sorted(required)}")
        for row in reader:
            line_num = reader.line_num
            raw_gap = row.get("gap")
            try:
                gap = float(raw_gap)
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path} line {line_num}: gap={raw_gap!r} is not a number"
                ) from None
            if not gap >= 0.0:  # also rejects NaN
                raise ValueError(
                    f"{path} line {line_num}: gap={raw_gap!r} must be >= 0"
                )
            address = _parse_int(row, "address", line_num, path)
            if address < 0:
                raise ValueError(
                    f"{path} line {line_num}: address={address} must be >= 0"
                )
            record = (
                gap,
                address,
                bool(_parse_int(row, "write", line_num, path)),
                _parse_int(row, "pc", line_num, path),
            )
            per_core.setdefault(
                _parse_int(row, "core", line_num, path), []
            ).append(record)

    if not per_core:
        raise ValueError("trace CSV contains no requests")

    cores = []
    for core_id in sorted(per_core):
        records = per_core[core_id]
        gaps = np.array([r[0] for r in records], dtype=np.float64)
        addresses = np.array([r[1] for r in records], dtype=np.int64)
        is_write = np.array([r[2] for r in records], dtype=np.bool_)
        pcs = np.array([r[3] for r in records], dtype=np.int64)
        instructions = instructions_per_core or len(records) * 50
        cores.append(
            CoreTrace(
                gaps=gaps,
                addresses=addresses,
                is_write=is_write,
                pcs=pcs,
                instructions=instructions,
            )
        )
    return Workload(name=name, cores=cores)
