"""Trace file I/O: persist workloads, import external traces, decode
DRAMSim2 formats.

Four interchange surfaces:

* **npz** (preferred): all of a workload's per-core arrays in one compressed
  numpy archive — lossless round-trip of :class:`~repro.workloads.trace.Workload`.
* **CSV** (interchange): one request per line, ``core,gap,address,write,pc``
  — easy to produce from Pin/DynamoRIO/valgrind tooling or by hand.
  ``.csv.gz`` is accepted and produced transparently.
* **k6** (DRAMSim2): ``<hex-address> <command> <cycle>`` with
  ``P_MEM_RD``/``P_FETCH``/``P_LOCK_RD`` reads, ``P_MEM_WR``/``P_LOCK_WR``
  writes and ``BOFF`` records ignored.
* **mase** (DRAMSim2): same line shape with ``IFETCH``/``MEMRD`` reads and
  ``MEMWR`` writes.

The k6/mase decoders are **streaming**: the file (gzip-compressed or not —
detected by magic bytes, not suffix) is read in fixed-size byte blocks,
each block is parsed through vectorized numpy column operations, and only
the resulting arrays are kept — the text of the trace is never materialized
whole, so trace files larger than memory decode fine. Decoded requests are
normalized into the exact :class:`~repro.workloads.trace.CoreTrace` dtypes
the generators produce (``gaps`` float64 cycle deltas, line ``addresses``
int64, ``is_write`` bool, ``pcs`` int64), so an ingested workload is
indistinguishable from a generated one everywhere downstream (arena,
shared-memory fan-out, both simulation engines).

To run external traces through sweeps/jobs/explore, a file is named by a
**trace spec** string — ``trace:<format>:<digest16>:<path>`` from
:func:`trace_workload_spec` — which embeds a SHA-256 prefix of the file's
raw bytes. The spec is used verbatim as the cell's ``benchmark``, so result
-cache keys and ``.npz`` trace-arena keys are stable for identical content
and roll over automatically when the file changes.

Malformed input fails fast with the offending file and line number instead
of crashing deep inside the simulator.
"""

from __future__ import annotations

import csv
import gzip
import hashlib
import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import FrozenSet, List, Optional, Union

import numpy as np

from repro.workloads.trace import CoreTrace, Workload

PathLike = Union[str, Path]

#: Nominal instructions attributed per imported/decoded request when the
#: source carries no instruction counts (only MPKI reporting depends on
#: it: 50 instructions/request == MPKI 20 for an all-read stream).
NOMINAL_INSTRUCTIONS_PER_REQUEST = 50

#: Streaming decode block size. Small enough that tests exercise multi-
#: block decodes with tiny fixtures via the parameter; large enough that
#: real traces decode in few syscalls.
DEFAULT_CHUNK_BYTES = 1 << 20

#: log2(line size): external byte addresses are normalized to 64 B lines.
LINE_SHIFT = 6

#: Formats accepted by :func:`decode_trace` / ``repro sweep --format``.
TRACE_FORMATS = ("k6", "mase", "csv")

#: Prefix of canonical trace-spec workload names.
TRACE_SPEC_PREFIX = "trace:"


# ----------------------------------------------------------------------
# Gzip-aware streams
# ----------------------------------------------------------------------
def _open_stream(path: PathLike):
    """Binary read stream, transparently gunzipping (magic, not suffix)."""
    handle = open(path, "rb")
    try:
        magic = handle.read(2)
        handle.seek(0)
    except OSError:
        handle.close()
        raise
    if magic == b"\x1f\x8b":
        return gzip.GzipFile(fileobj=handle)
    return handle


def _open_text(path: PathLike):
    """Text read stream over :func:`_open_stream` (for the CSV reader)."""
    return io.TextIOWrapper(_open_stream(path), newline="")


def file_digest(path: PathLike) -> str:
    """SHA-256 over the file's raw bytes (compressed form as stored),
    streamed in blocks so huge traces never load whole."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(DEFAULT_CHUNK_BYTES)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# npz round-trip
# ----------------------------------------------------------------------
def save_workload(workload: Workload, path: PathLike) -> None:
    """Save a workload to a compressed ``.npz`` archive."""
    arrays = {"name": np.array(workload.name), "num_cores": np.array(workload.num_cores)}
    for i, trace in enumerate(workload.cores):
        arrays[f"gaps_{i}"] = trace.gaps
        arrays[f"addresses_{i}"] = trace.addresses
        arrays[f"is_write_{i}"] = trace.is_write
        arrays[f"pcs_{i}"] = trace.pcs
        arrays[f"instructions_{i}"] = np.array(trace.instructions)
    np.savez_compressed(path, **arrays)


def load_workload(path: PathLike) -> Workload:
    """Load a workload saved by :func:`save_workload`."""
    with np.load(path, allow_pickle=False) as data:
        num_cores = int(data["num_cores"])
        cores: List[CoreTrace] = []
        for i in range(num_cores):
            cores.append(
                CoreTrace(
                    gaps=data[f"gaps_{i}"],
                    addresses=data[f"addresses_{i}"],
                    is_write=data[f"is_write_{i}"],
                    pcs=data[f"pcs_{i}"],
                    instructions=int(data[f"instructions_{i}"]),
                )
            )
        return Workload(name=str(data["name"]), cores=cores)


# ----------------------------------------------------------------------
# CSV interchange
# ----------------------------------------------------------------------
def export_csv(workload: Workload, path: PathLike) -> None:
    """Write a workload as interchange CSV (core,gap,address,write,pc).

    Row assembly is vectorized: each column is formatted with
    ``np.char.mod`` (``%.17g`` for gaps, so float64 values survive the
    text round-trip exactly) and the columns are joined array-wide. A
    ``.gz`` suffix gzips the output; :func:`import_csv` reads either.
    """
    chunks = ["core,gap,address,write,pc"]
    for core_id, trace in enumerate(workload.cores):
        if not len(trace):
            continue
        rows = np.char.mod("%d,", np.full(len(trace), core_id, dtype=np.int64))
        rows = np.char.add(rows, np.char.mod("%.17g,", trace.gaps))
        rows = np.char.add(rows, np.char.mod("%d,", trace.addresses))
        rows = np.char.add(
            rows, np.char.mod("%d,", trace.is_write.astype(np.int64))
        )
        rows = np.char.add(rows, np.char.mod("%d", trace.pcs))
        chunks.append("\n".join(rows.tolist()))
    text = "\n".join(chunks) + "\n"
    if str(path).endswith(".gz"):
        with gzip.open(path, "wt", newline="") as handle:
            handle.write(text)
    else:
        with open(path, "w", newline="") as handle:
            handle.write(text)


def _parse_int(row: dict, column: str, line_num: int, path) -> int:
    """One integer CSV field, with the file/line named on any failure."""
    raw = row.get(column)
    if raw is None:
        raise ValueError(f"{path} line {line_num}: missing {column!r} value")
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{path} line {line_num}: {column}={raw!r} is not an integer"
        ) from None


def import_csv(
    path: PathLike,
    name: str = "imported",
    instructions_per_core: Optional[int] = None,
) -> Workload:
    """Load an interchange CSV (optionally gzipped) into a workload.

    Rows may arrive in any core order; within a core, request order is
    preserved. ``instructions_per_core`` defaults to a nominal value of
    :data:`NOMINAL_INSTRUCTIONS_PER_REQUEST` (50) instructions per request
    (only MPKI reporting depends on it); pass an explicit value — zero
    included — to override the nominal accounting.

    Malformed rows fail fast with the offending line number instead of
    crashing deep inside the simulator: every field must parse (``gap`` as
    a float, the rest as integers), gaps and addresses must be
    non-negative, and the arrays are canonicalized to the generated-trace
    dtypes (``gaps`` float64, ``is_write`` bool, ``addresses``/``pcs``
    int64) so an imported workload is indistinguishable from a built one.
    """
    per_core: dict = {}
    try:
        with _open_text(path) as handle:
            reader = csv.DictReader(handle)
            required = {"core", "gap", "address", "write", "pc"}
            if reader.fieldnames is None or not required <= set(reader.fieldnames):
                raise ValueError(f"CSV must have columns {sorted(required)}")
            for row in reader:
                line_num = reader.line_num
                raw_gap = row.get("gap")
                try:
                    gap = float(raw_gap)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"{path} line {line_num}: gap={raw_gap!r} is not a number"
                    ) from None
                if not gap >= 0.0:  # also rejects NaN
                    raise ValueError(
                        f"{path} line {line_num}: gap={raw_gap!r} must be >= 0"
                    )
                address = _parse_int(row, "address", line_num, path)
                if address < 0:
                    raise ValueError(
                        f"{path} line {line_num}: address={address} must be >= 0"
                    )
                record = (
                    gap,
                    address,
                    bool(_parse_int(row, "write", line_num, path)),
                    _parse_int(row, "pc", line_num, path),
                )
                per_core.setdefault(
                    _parse_int(row, "core", line_num, path), []
                ).append(record)
    except (EOFError, gzip.BadGzipFile) as exc:
        raise ValueError(
            f"{path}: corrupt or truncated gzip stream ({exc})"
        ) from None

    if not per_core:
        raise ValueError("trace CSV contains no requests")

    cores = []
    for core_id in sorted(per_core):
        records = per_core[core_id]
        gaps = np.array([r[0] for r in records], dtype=np.float64)
        addresses = np.array([r[1] for r in records], dtype=np.int64)
        is_write = np.array([r[2] for r in records], dtype=np.bool_)
        pcs = np.array([r[3] for r in records], dtype=np.int64)
        instructions = (
            instructions_per_core
            if instructions_per_core is not None
            else len(records) * NOMINAL_INSTRUCTIONS_PER_REQUEST
        )
        cores.append(
            CoreTrace(
                gaps=gaps,
                addresses=addresses,
                is_write=is_write,
                pcs=pcs,
                instructions=instructions,
            )
        )
    return Workload(name=name, cores=cores)


# ----------------------------------------------------------------------
# DRAMSim2 k6 / mase streaming decoders
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TraceDialect:
    """Command vocabulary of one ``<address> <command> <cycle>`` format."""

    name: str
    reads: FrozenSet[bytes]
    writes: FrozenSet[bytes]
    #: Records silently dropped (k6 ``BOFF`` = bus-off markers).
    ignored: FrozenSet[bytes]

    @property
    def read_list(self) -> np.ndarray:
        return np.array(sorted(self.reads))

    @property
    def write_list(self) -> np.ndarray:
        return np.array(sorted(self.writes))

    @property
    def ignore_list(self) -> np.ndarray:
        return np.array(sorted(self.ignored) or [b"\x00"])

    @property
    def known(self) -> FrozenSet[bytes]:
        return self.reads | self.writes | self.ignored


_DIALECTS = {
    "k6": _TraceDialect(
        name="k6",
        reads=frozenset((b"P_MEM_RD", b"P_FETCH", b"P_LOCK_RD")),
        writes=frozenset((b"P_MEM_WR", b"P_LOCK_WR")),
        ignored=frozenset((b"BOFF",)),
    ),
    "mase": _TraceDialect(
        name="mase",
        reads=frozenset((b"IFETCH", b"MEMRD")),
        writes=frozenset((b"MEMWR",)),
        ignored=frozenset(),
    ),
}


def _iter_line_blocks(stream, chunk_bytes: int, path):
    """Yield ``(first_line_number, [line_bytes, ...])`` per fixed block.

    Reads ``chunk_bytes`` at a time and cuts at the last newline, carrying
    the partial tail line into the next block — so every yielded line is
    complete and line numbers stay exact across block boundaries. Gzip
    corruption surfaces here (decompression happens on ``read``) and is
    reported as a :class:`ValueError` naming the file.
    """
    remainder = b""
    line_no = 1
    while True:
        try:
            block = stream.read(chunk_bytes)
        except (EOFError, OSError) as exc:
            raise ValueError(
                f"{path}: corrupt or truncated gzip stream ({exc})"
            ) from None
        if not block:
            break
        block = remainder + block
        cut = block.rfind(b"\n")
        if cut < 0:
            remainder = block
            continue
        lines = block[:cut].split(b"\n")
        remainder = block[cut + 1:]
        yield line_no, lines
        line_no += len(lines)
    if remainder:
        yield line_no, [remainder]


def _reject_block(kept, line_numbers, path, dialect) -> None:
    """Slow path: rescan a block that failed vectorized parsing and raise
    a :class:`ValueError` naming the exact offending line."""
    shape = "<hex-address> <command> <cycle>"
    for line_no, raw in zip(line_numbers.tolist(), kept.tolist()):
        parts = raw.split()
        if len(parts) != 3:
            raise ValueError(
                f"{path} line {line_no}: expected '{shape}', got "
                f"{raw.decode(errors='replace')!r}"
            )
        addr_raw, command, cycle_raw = parts
        try:
            address = int(addr_raw, 16)
        except ValueError:
            raise ValueError(
                f"{path} line {line_no}: address="
                f"{addr_raw.decode(errors='replace')!r} is not a hex address"
            ) from None
        if address < 0:
            raise ValueError(
                f"{path} line {line_no}: address={addr_raw.decode()!r} "
                f"must be >= 0"
            )
        if command not in dialect.known:
            known = ", ".join(
                sorted(c.decode() for c in dialect.known)
            )
            raise ValueError(
                f"{path} line {line_no}: unknown {dialect.name} command "
                f"{command.decode(errors='replace')!r} (known: {known})"
            )
        try:
            cycle = int(cycle_raw)
        except ValueError:
            raise ValueError(
                f"{path} line {line_no}: cycle="
                f"{cycle_raw.decode(errors='replace')!r} is not an integer"
            ) from None
        if cycle < 0:
            raise ValueError(
                f"{path} line {line_no}: cycle={cycle} must be >= 0"
            )
    raise ValueError(  # pragma: no cover - the rescan must find the fault
        f"{path}: malformed {dialect.name} block near line "
        f"{int(line_numbers[0])}"
    )


def _parse_block(lines, start_line: int, path, dialect):
    """Vectorized parse of one block of raw trace lines.

    Returns ``(byte_addresses, is_write, cycles, line_numbers)`` int64/bool
    arrays with ignored records dropped, or ``None`` for all-blank blocks.
    Any fault falls back to :func:`_reject_block` for an exact diagnostic.
    """
    arr = np.char.strip(np.array(lines, dtype=np.bytes_))
    mask = arr != b""
    if not mask.any():
        return None
    kept = arr[mask]
    line_numbers = start_line + np.flatnonzero(mask)
    try:
        tokens = np.array(b" ".join(kept.tolist()).split(), dtype=np.bytes_)
        if tokens.size != 3 * kept.size:
            raise ValueError("field count")
        columns = tokens.reshape(-1, 3)
        commands = columns[:, 1]
        is_read = np.isin(commands, dialect.read_list)
        is_write = np.isin(commands, dialect.write_list)
        ignored = np.isin(commands, dialect.ignore_list)
        if not bool(np.all(is_read | is_write | ignored)):
            raise ValueError("unknown command")
        cycles = columns[:, 2].astype(np.int64)
        addresses = np.array(
            [int(tok, 16) for tok in columns[:, 0].tolist()], dtype=np.int64
        )
        if bool(np.any(cycles < 0)) or bool(np.any(addresses < 0)):
            raise ValueError("negative field")
    except (ValueError, OverflowError):
        _reject_block(kept, line_numbers, path, dialect)
        raise  # pragma: no cover - _reject_block always raises
    keep = ~ignored
    return addresses[keep], is_write[keep], cycles[keep], line_numbers[keep]


def decode_trace(
    path: PathLike,
    format: Optional[str] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    name: Optional[str] = None,
) -> Workload:
    """Decode an external trace file into a single-core workload.

    ``format`` is one of :data:`TRACE_FORMATS`; None sniffs it from the
    file name (:func:`sniff_format`). ``csv`` routes to
    :func:`import_csv` (line addresses, multi-core). k6/mase streams are
    single request streams, so the workload has exactly one core:
    byte addresses become 64 B line addresses, absolute cycles become
    per-request gap deltas (the first gap is the first record's cycle),
    commands map to read/write, PCs are zero (external traces carry
    none), and instructions use the nominal per-request accounting shared
    with :func:`import_csv`. Decodes are chunked (``chunk_bytes``) and
    bit-exact regardless of block size.
    """
    fmt = format or sniff_format(path)
    if fmt not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {', '.join(TRACE_FORMATS)}"
        )
    if fmt == "csv":
        return import_csv(path, name=name or f"csv:{Path(path).name}")
    dialect = _DIALECTS[fmt]
    address_blocks: List[np.ndarray] = []
    write_blocks: List[np.ndarray] = []
    cycle_blocks: List[np.ndarray] = []
    line_blocks: List[np.ndarray] = []
    stream = _open_stream(path)
    try:
        for start_line, lines in _iter_line_blocks(stream, chunk_bytes, path):
            parsed = _parse_block(lines, start_line, path, dialect)
            if parsed is None:
                continue
            addresses, is_write, cycles, line_numbers = parsed
            if len(addresses):
                address_blocks.append(addresses)
                write_blocks.append(is_write)
                cycle_blocks.append(cycles)
                line_blocks.append(line_numbers)
    finally:
        stream.close()
    if not address_blocks:
        raise ValueError(f"{path}: trace contains no requests")
    addresses = np.concatenate(address_blocks)
    is_write = np.concatenate(write_blocks)
    cycles = np.concatenate(cycle_blocks)
    line_numbers = np.concatenate(line_blocks)

    backwards = np.flatnonzero(np.diff(cycles) < 0)
    if backwards.size:
        i = int(backwards[0]) + 1
        raise ValueError(
            f"{path} line {int(line_numbers[i])}: cycle {int(cycles[i])} "
            f"goes backwards (previous record at cycle {int(cycles[i - 1])})"
        )
    trace = CoreTrace(
        gaps=np.diff(cycles, prepend=0).astype(np.float64),
        addresses=addresses >> LINE_SHIFT,
        is_write=is_write,
        pcs=np.zeros(len(addresses), dtype=np.int64),
        instructions=len(addresses) * NOMINAL_INSTRUCTIONS_PER_REQUEST,
    )
    return Workload(
        name=name or f"{fmt}:{Path(path).name}", cores=[trace]
    )


def sniff_format(path: PathLike) -> str:
    """Infer a trace format from the file name.

    DRAMSim2 convention: trace files are named with a ``k6``/``mase``
    prefix; ``.csv``(.gz) selects the interchange format.
    """
    base = Path(path).name.lower()
    if base.endswith(".gz"):
        base = base[:-3]
    if base.startswith("k6"):
        return "k6"
    if base.startswith("mase"):
        return "mase"
    if base.endswith(".csv"):
        return "csv"
    raise ValueError(
        f"cannot infer trace format from {str(path)!r}: name the file with "
        f"a k6/mase prefix or a .csv extension, or pass an explicit format"
    )


# ----------------------------------------------------------------------
# Trace specs: content-keyed workload names for external files
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceSpec:
    """Parsed form of a ``trace:<format>:<digest16>:<path>`` name."""

    format: str
    digest: str
    path: str


def is_trace_spec(name: str) -> bool:
    """Whether a workload name is a trace spec."""
    return name.startswith(TRACE_SPEC_PREFIX)


def trace_workload_spec(path: PathLike, format: Optional[str] = None) -> str:
    """The canonical workload name for an external trace file.

    ``trace:<format>:<digest16>:<path>`` — the digest prefix covers the
    file's raw bytes, so sweep-cell and trace-arena content keys derived
    from the spec are stable for identical content and distinct the moment
    the file changes.
    """
    fmt = format or sniff_format(path)
    if fmt not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; known: {', '.join(TRACE_FORMATS)}"
        )
    return (
        f"{TRACE_SPEC_PREFIX}{fmt}:{file_digest(path)[:16]}:{os.fspath(path)}"
    )


def parse_trace_spec(spec: str) -> TraceSpec:
    """Split and validate a trace-spec workload name."""
    if not is_trace_spec(spec):
        raise ValueError(f"not a trace spec: {spec!r}")
    parts = spec.split(":", 3)
    if len(parts) != 4 or not parts[3]:
        raise ValueError(
            f"malformed trace spec {spec!r}; expected "
            f"'trace:<format>:<digest>:<path>'"
        )
    _, fmt, digest, path = parts
    if fmt not in TRACE_FORMATS:
        raise ValueError(
            f"trace spec {spec!r} names unknown format {fmt!r}; "
            f"known: {', '.join(TRACE_FORMATS)}"
        )
    return TraceSpec(format=fmt, digest=digest, path=path)


def workload_from_spec(
    spec: str, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> Workload:
    """Decode the file named by a trace spec, verifying its content digest.

    A digest mismatch means the file changed after the sweep was keyed —
    silently decoding it would poison content-addressed caches, so it is
    an error; re-run with a freshly built spec instead.
    """
    parsed = parse_trace_spec(spec)
    actual = file_digest(parsed.path)[: len(parsed.digest)]
    if parsed.digest and actual != parsed.digest:
        raise ValueError(
            f"{parsed.path}: content digest {actual} does not match the "
            f"spec's {parsed.digest}; the file changed since this workload "
            f"was keyed — rebuild the spec with trace_workload_spec()"
        )
    return decode_trace(
        parsed.path, format=parsed.format, chunk_bytes=chunk_bytes
    )
