"""Content-keyed workload arena: build each trace once, share it everywhere.

Every cell of a (design x benchmark x config) sweep grid consumes the same
handful of workloads, but the generators in :mod:`repro.workloads.patterns`
are expensive enough that regenerating them per cell — and per worker
process — dominates once the simulator itself is fast. This module is the
shared-workload fabric's storage layer:

* :class:`WorkloadParams` — everything that determines a generated
  :class:`~repro.workloads.trace.Workload`, hashed into a content key that
  includes the generator version, so persisted traces from an older
  generator are invalidated automatically.
* :class:`WorkloadArena` — a two-tier cache. The in-process memo replaces
  the old ``lru_cache`` on ``build_workload``; the on-disk tier persists
  each workload as an ``.npz`` trace arena under
  ``.repro_cache/traces/`` so repeated runs (and repeated CLI invocations)
  load arrays instead of re-running the generators.
* :func:`share_workload` / :func:`attach_workload` — pack a workload's
  arrays into one ``multiprocessing.shared_memory`` segment and rebuild it
  as zero-copy numpy views in another process. The parent that created a
  segment owns it: segments are registered module-wide and
  :func:`release_all_segments` (also installed via ``atexit``) guarantees
  nothing survives in ``/dev/shm`` after a sweep, an exception, or Ctrl-C.
* :func:`acquire_shared_workload` / :func:`release_shared_workload` — a
  refcounted pool over those primitives for long-running, multi-client
  processes (``repro serve``): concurrent sweeps needing the same workload
  share one segment instead of duplicating it, and released segments are
  either unlinked immediately (the default, preserving the one-shot sweep
  contract that nothing outlives ``run_sweep``) or parked in a bounded
  idle LRU (:func:`set_idle_segment_cap`) for reuse by the next job. All
  pool operations are thread-safe — the serve layer runs jobs on worker
  threads.

Environment knobs:

* ``REPRO_TRACE_CACHE=0`` — disable the on-disk ``.npz`` tier (the
  in-process memo stays on).
* ``REPRO_CACHE_DIR`` — relocates ``.repro_cache`` (traces live in the
  ``traces/`` subdirectory, next to the result cache's JSON cells).
"""

from __future__ import annotations

import atexit
import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads.patterns import GENERATOR_VERSION
from repro.workloads.trace import CoreTrace, Workload

#: Bump when the ``.npz`` arena layout (not the generated content) changes.
TRACE_SCHEMA = 1

#: Subdirectory of the result cache holding persisted trace arenas.
TRACE_SUBDIR = "traces"

#: The per-core arrays packed into arenas, in on-disk/in-segment order.
_ARRAY_FIELDS = ("gaps", "addresses", "is_write", "pcs", "is_dependent")


def trace_cache_enabled() -> bool:
    """Whether the on-disk tier is enabled (``REPRO_TRACE_CACHE=0`` off)."""
    return os.environ.get("REPRO_TRACE_CACHE", "1") != "0"


def default_trace_dir() -> Path:
    """``<cache-dir>/traces`` honouring ``REPRO_CACHE_DIR``.

    Mirrors :func:`repro.sim.parallel.default_cache_dir` without importing
    it (``parallel`` imports this module).
    """
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache")) / TRACE_SUBDIR


@dataclass(frozen=True)
class WorkloadParams:
    """Everything that determines a generated rate-mode workload."""

    benchmark: str
    num_cores: int = 8
    reads_per_core: int = 12000
    capacity_scale: int = 256
    seed: int = 1

    def key(self) -> str:
        """SHA-256 content key for this workload.

        Covers every generation input plus :data:`GENERATOR_VERSION` (a
        generator change invalidates persisted arenas) and
        :data:`TRACE_SCHEMA` (a layout change invalidates the files). For
        mixes the mix-table revision is folded in, so recomposing a mix
        invalidates its persisted arenas; for external traces the
        benchmark string is a ``trace:`` spec whose embedded content
        digest keys the file's bytes.
        """
        from repro.workloads.mixes import MIX_REVISION, is_mix

        payload = {
            "schema": TRACE_SCHEMA,
            "generator": GENERATOR_VERSION,
            "benchmark": self.benchmark,
            "num_cores": self.num_cores,
            "reads_per_core": self.reads_per_core,
            "capacity_scale": self.capacity_scale,
            "seed": self.seed,
        }
        if is_mix(self.benchmark):
            payload["mix_revision"] = MIX_REVISION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Two-tier workload cache
# ----------------------------------------------------------------------
class WorkloadArena:
    """Memo + ``.npz``-on-disk cache of generated workloads.

    Disk writes are atomic (unique temp file + ``os.replace``), so
    concurrent processes sharing one cache directory never read torn
    arenas. The memo is FIFO-capped: workloads are a few MB each and a
    long ``repro all`` session touches dozens.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        persist: Optional[bool] = None,
        memo_capacity: int = 64,
    ) -> None:
        self.directory = Path(directory) if directory else None
        self.persist = persist
        self.memo_capacity = memo_capacity
        self._memory: Dict[str, Workload] = {}
        #: Lifetime telemetry (the sweep layer aggregates per-sweep deltas).
        self.builds = 0
        self.build_seconds = 0.0
        self.memo_hits = 0
        self.disk_hits = 0

    def _dir(self) -> Path:
        # Resolved lazily so tests repointing REPRO_CACHE_DIR take effect.
        return self.directory if self.directory else default_trace_dir()

    def _persist(self) -> bool:
        return trace_cache_enabled() if self.persist is None else self.persist

    def _path(self, key: str) -> Path:
        return self._dir() / f"{key}.npz"

    def fetch(self, params: WorkloadParams) -> Tuple[Workload, Dict]:
        """The workload for ``params`` plus telemetry.

        Telemetry: ``{"trace_source": "memo"|"npz"|"built",
        "trace_build_seconds": float}`` — seconds are the generator time
        for builds, the load time for disk hits, ~0 for memo hits.
        """
        key = params.key()
        workload = self._memory.get(key)
        if workload is not None:
            self.memo_hits += 1
            return workload, {"trace_source": "memo", "trace_build_seconds": 0.0}
        if self._persist():
            started = time.perf_counter()
            workload = load_arena(self._path(key), params)
            if workload is not None:
                elapsed = time.perf_counter() - started
                self.disk_hits += 1
                self._remember(key, workload)
                return workload, {
                    "trace_source": "npz",
                    "trace_build_seconds": elapsed,
                }
        started = time.perf_counter()
        workload = _generate(params)
        elapsed = time.perf_counter() - started
        self.builds += 1
        self.build_seconds += elapsed
        self._remember(key, workload)
        if self._persist():
            save_arena(self._path(key), workload, params)
        return workload, {
            "trace_source": "built",
            "trace_build_seconds": elapsed,
        }

    def adopt(self, params: WorkloadParams, workload: Workload) -> None:
        """Pre-seed both tiers with an externally materialized workload.

        Used by the CLI after decoding an external trace file: the decode
        already happened (to learn the core count for cell construction),
        so adopting it means the subsequent sweep's ``fetch`` is a memo
        hit instead of a second streaming decode of the same file.
        """
        key = params.key()
        self._remember(key, workload)
        if self._persist() and not self._path(key).exists():
            save_arena(self._path(key), workload, params)

    def _remember(self, key: str, workload: Workload) -> None:
        while len(self._memory) >= self.memo_capacity:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = workload

    def clear(self, disk: bool = False) -> None:
        self._memory.clear()
        if disk and self._dir().is_dir():
            for path in self._dir().glob("*.npz"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass


def _generate(params: WorkloadParams) -> Workload:
    # Local imports: spec's build_workload delegates here (no import
    # cycle at module load).
    from repro.workloads.mixes import generate_mix_workload, is_mix
    from repro.workloads.tracefile import is_trace_spec, workload_from_spec

    if is_trace_spec(params.benchmark):
        # The file defines length and core count; the remaining params
        # are pinned by the cell-construction path.
        return workload_from_spec(params.benchmark)
    if is_mix(params.benchmark):
        return generate_mix_workload(
            params.benchmark,
            num_cores=params.num_cores,
            reads_per_core=params.reads_per_core,
            capacity_scale=params.capacity_scale,
            seed=params.seed,
        )
    from repro.workloads.spec import generate_workload

    return generate_workload(
        params.benchmark,
        num_cores=params.num_cores,
        reads_per_core=params.reads_per_core,
        capacity_scale=params.capacity_scale,
        seed=params.seed,
    )


_shared_arenas: Dict[Tuple[str, bool], WorkloadArena] = {}


def get_workload_arena(directory: Optional[Path] = None) -> WorkloadArena:
    """The process-wide shared arena for a trace directory.

    One instance per (directory, persist) pair — mirroring
    ``parallel.get_result_cache`` — so tests that repoint
    ``REPRO_CACHE_DIR`` get a fresh memo tier, and pool workers handed an
    explicit directory are immune to stale forked environments.
    """
    resolved = Path(directory) if directory is not None else default_trace_dir()
    key = (str(resolved), trace_cache_enabled())
    if key not in _shared_arenas:
        _shared_arenas[key] = WorkloadArena(directory=resolved)
    return _shared_arenas[key]


# ----------------------------------------------------------------------
# .npz persistence
# ----------------------------------------------------------------------
def save_arena(path: Path, workload: Workload, params: WorkloadParams) -> None:
    """Atomically persist a workload as one ``.npz`` trace arena."""
    arrays: Dict[str, np.ndarray] = {}
    meta = {
        "schema": TRACE_SCHEMA,
        "generator": GENERATOR_VERSION,
        "name": workload.name,
        "num_cores": workload.num_cores,
        "instructions": [t.instructions for t in workload.cores],
        "params": {
            "benchmark": params.benchmark,
            "num_cores": params.num_cores,
            "reads_per_core": params.reads_per_core,
            "capacity_scale": params.capacity_scale,
            "seed": params.seed,
        },
    }
    for core_id, trace in enumerate(workload.cores):
        arrays[f"gaps_{core_id}"] = trace.gaps
        arrays[f"addresses_{core_id}"] = trace.addresses
        arrays[f"is_write_{core_id}"] = trace.is_write
        arrays[f"pcs_{core_id}"] = trace.pcs
        arrays[f"is_dependent_{core_id}"] = trace.dependent_flags()
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_bytes(buffer.getvalue())
    os.replace(tmp, path)


def load_arena(path: Path, params: WorkloadParams) -> Optional[Workload]:
    """Load a persisted arena; None when missing, torn or stale-shaped."""
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            if meta.get("schema") != TRACE_SCHEMA:
                return None
            if meta.get("generator") != GENERATOR_VERSION:
                return None
            instructions = meta["instructions"]
            cores: List[CoreTrace] = []
            for core_id in range(int(meta["num_cores"])):
                cores.append(
                    CoreTrace(
                        gaps=data[f"gaps_{core_id}"],
                        addresses=data[f"addresses_{core_id}"],
                        is_write=data[f"is_write_{core_id}"],
                        pcs=data[f"pcs_{core_id}"],
                        instructions=int(instructions[core_id]),
                        is_dependent=data[f"is_dependent_{core_id}"],
                    )
                )
        return Workload(name=meta["name"], cores=cores)
    except (OSError, ValueError, KeyError):
        # Torn/corrupt file: treat as a miss and rebuild (the next save
        # atomically replaces it).
        return None


# ----------------------------------------------------------------------
# Shared-memory arenas (zero-copy worker fan-out)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """One array inside a shared segment: byte offset + reconstruction."""

    offset: int
    dtype: str
    length: int


@dataclass(frozen=True)
class SharedWorkloadHandle:
    """Picklable descriptor a worker needs to attach a shared workload."""

    key: str
    shm_name: str
    workload_name: str
    #: Per core: field -> array spec (fields from ``_ARRAY_FIELDS``).
    cores: Tuple[Dict[str, SharedArraySpec], ...]
    instructions: Tuple[int, ...]


#: Segments created (and therefore owned) by this process, by shm name.
_owned_segments: Dict[str, shared_memory.SharedMemory] = {}

#: Monotonic suffix so two arenas for one key in one process never collide.
_segment_counter = 0

#: Guards every module-level segment structure. Sweeps from concurrent
#: serve jobs share/release segments from different threads.
_segment_lock = threading.RLock()


def share_workload(key: str, workload: Workload) -> SharedWorkloadHandle:
    """Pack ``workload`` into one owned shared-memory segment.

    The caller must eventually :func:`release_segment` (or rely on
    :func:`release_all_segments` / the ``atexit`` hook) — segments are
    kernel objects, not garbage-collected memory.
    """
    global _segment_counter
    specs: List[Dict[str, SharedArraySpec]] = []
    total = 0
    per_core_arrays: List[Dict[str, np.ndarray]] = []
    for trace in workload.cores:
        arrays = {
            "gaps": trace.gaps,
            "addresses": trace.addresses,
            "is_write": trace.is_write,
            "pcs": trace.pcs,
            "is_dependent": trace.dependent_flags(),
        }
        core_spec: Dict[str, SharedArraySpec] = {}
        for field in _ARRAY_FIELDS:
            arr = np.ascontiguousarray(arrays[field])
            arrays[field] = arr
            core_spec[field] = SharedArraySpec(
                offset=total, dtype=arr.dtype.str, length=len(arr)
            )
            total += arr.nbytes
        specs.append(core_spec)
        per_core_arrays.append(arrays)

    with _segment_lock:
        _segment_counter += 1
        name = f"repro-{os.getpid():x}-{_segment_counter:x}-{key[:12]}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(total, 1)
        )
        _owned_segments[shm.name] = shm
    for core_spec, arrays in zip(specs, per_core_arrays):
        for field in _ARRAY_FIELDS:
            spec = core_spec[field]
            arr = arrays[field]
            view = np.ndarray(
                (spec.length,), dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset
            )
            view[:] = arr
    return SharedWorkloadHandle(
        key=key,
        shm_name=shm.name,
        workload_name=workload.name,
        cores=tuple(specs),
        instructions=tuple(t.instructions for t in workload.cores),
    )


def attach_workload(
    handle: SharedWorkloadHandle,
) -> Tuple[Workload, shared_memory.SharedMemory]:
    """Rebuild a shared workload as zero-copy numpy views.

    Returns the workload plus the attached segment: the caller must keep
    the segment object referenced as long as the arrays are in use (its
    finalizer unmaps the buffer). Attachments are untracked — the owning
    process is responsible for unlinking, so the resource tracker of a
    short-lived worker must not (and will not) unlink segments behind the
    owner's back or warn about "leaks" it does not own.
    """
    shm = _attach_untracked(handle.shm_name)
    cores: List[CoreTrace] = []
    for core_spec, instructions in zip(handle.cores, handle.instructions):
        arrays = {
            field: np.ndarray(
                (spec.length,),
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            for field, spec in core_spec.items()
        }
        cores.append(
            CoreTrace(
                gaps=arrays["gaps"],
                addresses=arrays["addresses"],
                is_write=arrays["is_write"],
                pcs=arrays["pcs"],
                instructions=int(instructions),
                is_dependent=arrays["is_dependent"],
            )
        )
    return Workload(name=handle.workload_name, cores=cores), shm


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Attachments must not be tracked: forked pool workers share one
    resource-tracker process, so register/unregister pairs from workers
    attaching the *same* segment race in the tracker's name set (cpython
    bpo-39959) and un-tracked-but-registered names produce spurious
    "leaked shared_memory" warnings at exit. Python 3.13 exposes
    ``track=False``; earlier versions need registration suppressed for
    the duration of the constructor (safe: workers are single-threaded,
    so nothing else registers concurrently).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no ``track`` parameter yet
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(res_name, rtype):
            if rtype != "shared_memory":
                original(res_name, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def release_segment(shm_name: str) -> None:
    """Close and unlink one owned segment (idempotent)."""
    with _segment_lock:
        shm = _owned_segments.pop(shm_name, None)
    if shm is None:
        return
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - racing cleanup
        pass


def release_all_segments() -> None:
    """Close and unlink every segment this process still owns.

    Called from ``run_sweep``'s ``finally`` and registered via ``atexit``
    as a backstop, so no ``/dev/shm`` entry outlives the process even on
    Ctrl-C between creation and the sweep's own cleanup. Also drops the
    refcounted pool's bookkeeping — the segments it tracks are owned
    segments like any other.
    """
    with _segment_lock:
        _segment_pool.clear()
        names = list(_owned_segments)
    for name in names:
        release_segment(name)


def owned_segment_names() -> Tuple[str, ...]:
    """Names of currently-owned segments (tests assert this drains)."""
    with _segment_lock:
        return tuple(_owned_segments)


# ----------------------------------------------------------------------
# Refcounted segment pool (concurrent sweeps in one process)
# ----------------------------------------------------------------------
@dataclass
class _PooledSegment:
    """Pool bookkeeping for one shared segment, by workload key."""

    handle: SharedWorkloadHandle
    refcount: int
    #: Monotonic timestamp of the last release (LRU order for idle eviction).
    last_used: float


#: Workload content key -> pooled segment. Guarded by ``_segment_lock``.
_segment_pool: Dict[str, _PooledSegment] = {}

#: How many refcount-zero segments to keep mapped for reuse. 0 preserves
#: the one-shot contract: a released segment is unlinked immediately.
_idle_segment_cap = 0


def set_idle_segment_cap(cap: int) -> int:
    """Set how many idle (refcount 0) segments the pool may keep; returns
    the previous cap. ``repro serve`` raises this so back-to-back jobs over
    the same workloads skip the pack-and-copy; 0 restores eager release."""
    global _idle_segment_cap
    if cap < 0:
        raise ValueError(f"idle segment cap must be >= 0, got {cap}")
    with _segment_lock:
        previous = _idle_segment_cap
        _idle_segment_cap = cap
        names = _evict_idle_locked()
    for name in names:
        release_segment(name)
    return previous


def acquire_shared_workload(key: str, workload: Workload) -> SharedWorkloadHandle:
    """A shared segment for ``key``, reusing a live or idle one if present.

    Every acquire must be paired with one :func:`release_shared_workload`.
    Two concurrent sweeps needing the same workload get the same segment
    (refcount 2) instead of packing two copies into ``/dev/shm``.
    """
    with _segment_lock:
        entry = _segment_pool.get(key)
        if entry is not None and entry.handle.shm_name in _owned_segments:
            entry.refcount += 1
            return entry.handle
        handle = share_workload(key, workload)
        _segment_pool[key] = _PooledSegment(
            handle=handle, refcount=1, last_used=time.monotonic()
        )
        return handle


def release_shared_workload(key: str) -> None:
    """Drop one reference to ``key``'s pooled segment (idempotent once the
    refcount reaches zero). Idle segments beyond the cap are unlinked,
    oldest-released first."""
    names: List[str] = []
    with _segment_lock:
        entry = _segment_pool.get(key)
        if entry is None:
            return
        if entry.refcount > 0:
            entry.refcount -= 1
        entry.last_used = time.monotonic()
        names = _evict_idle_locked()
    for name in names:
        release_segment(name)


def _evict_idle_locked() -> List[str]:
    """Evict idle pool entries beyond the cap; returns shm names to unlink.

    Caller holds ``_segment_lock`` and must call :func:`release_segment`
    on the returned names *outside* any long critical section.
    """
    idle = sorted(
        (
            (key, entry)
            for key, entry in _segment_pool.items()
            if entry.refcount == 0
        ),
        key=lambda item: item[1].last_used,
    )
    names: List[str] = []
    while len(idle) > _idle_segment_cap:
        key, entry = idle.pop(0)
        del _segment_pool[key]
        names.append(entry.handle.shm_name)
    return names


def release_idle_segments() -> int:
    """Unlink every idle pooled segment now; returns how many were dropped.

    The serve layer calls this on drain so a stopped server leaves
    ``/dev/shm`` empty without waiting for ``atexit``.
    """
    with _segment_lock:
        idle = [
            (key, entry.handle.shm_name)
            for key, entry in _segment_pool.items()
            if entry.refcount == 0
        ]
        for key, _ in idle:
            del _segment_pool[key]
    for _, name in idle:
        release_segment(name)
    return len(idle)


def segment_pool_stats() -> Dict[str, int]:
    """Pool telemetry: ``{"pooled": n, "active": n, "idle": n}``."""
    with _segment_lock:
        active = sum(1 for e in _segment_pool.values() if e.refcount > 0)
        return {
            "pooled": len(_segment_pool),
            "active": active,
            "idle": len(_segment_pool) - active,
        }


atexit.register(release_all_segments)
