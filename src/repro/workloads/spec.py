"""SPEC CPU2006-like benchmark catalog (paper Table 3 and Figure 11).

Each benchmark is a :class:`~repro.workloads.patterns.PatternConfig` whose
MPKI and footprint come from Table 3 and whose component mixture encodes the
qualitative behaviour the paper relies on:

* ``libquantum`` — long sequential sweeps: very high off-chip row-buffer
  locality ("type X"), which is why SRAM-Tag and LH-Cache *degrade* it.
* ``mcf`` / ``omnetpp`` — pointer-heavy, scattered reuse.
* ``bwaves`` / ``milc`` / ``lbm`` — streaming scientific kernels.
* ``sphinx`` — small footprint that largely fits in a 256 MB cache.

The *primary* set is the paper's ten detailed workloads (perfect-L3 speedup
above 2x); the *secondary* set models Figure 11's fourteen lower-intensity
workloads. All run in rate mode: 8 copies in disjoint address ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.units import GB, MB
from repro.workloads.patterns import Component, PatternConfig, generate_core_trace
from repro.workloads.trace import CoreTrace, Workload

#: Line-address spacing between rate-mode copies (disjoint physical ranges).
#: Deliberately not a power of two: several designs index sets with
#: ``address mod num_sets`` and power-of-two set counts (e.g. the 1-way
#: SRAM-Tag) would alias every copy onto identical sets otherwise.
CORE_ADDRESS_STRIDE_LINES = (1 << 28) + 9466311


@dataclass(frozen=True)
class BenchmarkSpec:
    """Catalog entry: generative model plus the paper's reported stats."""

    pattern: PatternConfig
    paper_mpki: float
    paper_footprint_bytes: int
    paper_perfect_l3_speedup: float
    primary: bool = True

    @property
    def name(self) -> str:
        return self.pattern.name


def _spec(
    name: str,
    mpki: float,
    footprint: int,
    perfect_l3: float,
    components: Tuple[Component, ...],
    write_fraction: float = 0.2,
    primary: bool = True,
    gap_mean_cycles: float = 0.0,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        pattern=PatternConfig(
            name=name,
            mpki=mpki,
            components=components,
            write_fraction=write_fraction,
            footprint_bytes=footprint,
            gap_mean_cycles=gap_mean_cycles,
        ),
        paper_mpki=mpki,
        paper_footprint_bytes=footprint,
        paper_perfect_l3_speedup=perfect_l3,
        primary=primary,
    )


# ---------------------------------------------------------------------------
# Primary workloads (paper Table 3). Region sizes are per rate-mode copy.
# ---------------------------------------------------------------------------
PRIMARY_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "mcf_r", 52.0, int(10.4 * GB), 4.9, gap_mean_cycles=11.0,
            components=(
                Component("hot", 0.48, 12 * MB, pc_pool=8),
                Component("zipf", 0.18, 1280 * MB, zipf_alpha=1.10, pc_pool=8),
                Component("pointer", 0.24, 1200 * MB, pc_pool=6),
                Component("sequential", 0.10, 96 * MB, run_length=8, pc_pool=2),
            ),
            write_fraction=0.18,
        ),
        _spec(
            "lbm_r", 31.8, int(3.3 * GB), 3.8, gap_mean_cycles=37.0,
            components=(
                Component("sequential", 0.45, 384 * MB, run_length=32, pc_pool=3),
                Component("hot", 0.40, 10 * MB, pc_pool=6),
                Component("zipf", 0.15, 512 * MB, zipf_alpha=1.10, pc_pool=4),
            ),
            write_fraction=0.35,
        ),
        _spec(
            "soplex_r", 27.0, int(1.9 * GB), 3.5, gap_mean_cycles=31.0,
            components=(
                Component("hot", 0.44, 14 * MB, pc_pool=8),
                Component("zipf", 0.28, 192 * MB, zipf_alpha=1.15, pc_pool=8),
                Component("sequential", 0.30, 128 * MB, run_length=16, pc_pool=3),
            ),
        ),
        _spec(
            "milc_r", 25.7, int(4.1 * GB), 3.5, gap_mean_cycles=39.0,
            components=(
                Component("sequential", 0.50, 480 * MB, run_length=32, pc_pool=4),
                Component("hot", 0.35, 10 * MB, pc_pool=6),
                Component("zipf", 0.18, 512 * MB, zipf_alpha=1.10, pc_pool=4),
            ),
            write_fraction=0.3,
        ),
        _spec(
            "omnetpp_r", 20.9, 259 * MB, 3.1, gap_mean_cycles=47.0,
            components=(
                Component("zipf", 0.62, 24 * MB, zipf_alpha=1.25, pc_pool=12),
                Component("pointer", 0.20, 16 * MB, pc_pool=6),
                Component("sequential", 0.18, 6 * MB, run_length=8, pc_pool=2),
            ),
        ),
        _spec(
            "gcc_r", 16.5, 458 * MB, 2.8, gap_mean_cycles=60.0,
            components=(
                Component("zipf", 0.55, 40 * MB, zipf_alpha=1.25, pc_pool=16),
                Component("hot", 0.25, 8 * MB, pc_pool=8),
                Component("sequential", 0.20, 16 * MB, run_length=12, pc_pool=4),
            ),
        ),
        _spec(
            "bwaves_r", 18.7, int(1.5 * GB), 2.8, gap_mean_cycles=60.0,
            components=(
                Component("sequential", 0.68, 180 * MB, run_length=64, pc_pool=3),
                Component("hot", 0.32, 8 * MB, pc_pool=4),
            ),
            write_fraction=0.3,
        ),
        _spec(
            "sphinx_r", 12.3, 80 * MB, 2.4, gap_mean_cycles=62.0,
            components=(
                Component("hot", 0.55, 8 * MB, pc_pool=8),
                Component("zipf", 0.25, 3 * MB, zipf_alpha=1.30, pc_pool=8),
                Component("sequential", 0.20, 2 * MB, run_length=16, pc_pool=3),
            ),
            write_fraction=0.1,
        ),
        _spec(
            "gems_r", 9.7, int(3.6 * GB), 2.2, gap_mean_cycles=83.0,
            components=(
                Component("sequential", 0.40, 420 * MB, run_length=16, pc_pool=4),
                Component("hot", 0.42, 12 * MB, pc_pool=8),
                Component("zipf", 0.22, 1024 * MB, zipf_alpha=1.10, pc_pool=4),
            ),
        ),
        _spec(
            "libquantum_r", 25.4, 262 * MB, 2.1, gap_mean_cycles=104.0,
            components=(
                Component("sequential", 0.90, 28 * MB, run_length=128, pc_pool=2),
                Component("hot", 0.10, 2 * MB, pc_pool=2),
            ),
            write_fraction=0.25,
        ),
    ]
}

# ---------------------------------------------------------------------------
# Secondary workloads (Figure 11): lower memory intensity, >=1% memory time.
# ---------------------------------------------------------------------------
_SECONDARY_PARAMS = [
    # (name, mpki, footprint MB, hot MB, zipf MB, seq MB, run)
    ("perlbench_r", 1.9, 220, 6, 12, 4, 8),
    ("bzip2_r", 3.6, 340, 10, 16, 8, 16),
    ("gobmk_r", 1.2, 120, 4, 8, 2, 4),
    ("hmmer_r", 1.5, 60, 3, 4, 4, 16),
    ("sjeng_r", 1.1, 140, 5, 8, 2, 4),
    ("h264_r", 2.1, 110, 4, 6, 8, 32),
    ("astar_r", 4.8, 330, 12, 20, 4, 4),
    ("xalanc_r", 5.6, 380, 14, 24, 6, 8),
    ("zeusmp_r", 4.9, 480, 10, 8, 24, 32),
    ("gromacs_r", 1.4, 100, 4, 4, 6, 16),
    ("cactus_r", 4.2, 540, 8, 6, 32, 32),
    ("namd_r", 1.0, 90, 4, 2, 6, 16),
    ("dealII_r", 2.4, 150, 6, 8, 6, 8),
    ("tonto_r", 1.3, 80, 4, 4, 2, 8),
]

#: Physics codes whose sweeps walk grids at fixed strides rather than
#: unit-stride (exercises the row-buffer-hostile ``strided`` pattern).
_STRIDED_SECONDARY = {"zeusmp_r", "cactus_r"}

SECONDARY_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    name: _spec(
        name, mpki, fp * MB, 1.5,
        gap_mean_cycles=170.0,
        components=(
            Component("hot", 0.45, hot * MB, pc_pool=8),
            Component("zipf", 0.30, zipf * MB, zipf_alpha=1.4, pc_pool=10),
            Component(
                "strided" if name in _STRIDED_SECONDARY else "sequential",
                0.25,
                seq * MB,
                run_length=run,
                pc_pool=4,
            ),
        ),
        primary=False,
    )
    for (name, mpki, fp, hot, zipf, seq, run) in _SECONDARY_PARAMS
}

ALL_BENCHMARKS: Dict[str, BenchmarkSpec] = {
    **PRIMARY_BENCHMARKS,
    **SECONDARY_BENCHMARKS,
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name (with or without the ``_r`` suffix)."""
    if name in ALL_BENCHMARKS:
        return ALL_BENCHMARKS[name]
    suffixed = f"{name}_r"
    if suffixed in ALL_BENCHMARKS:
        return ALL_BENCHMARKS[suffixed]
    raise KeyError(f"unknown benchmark {name!r}; known: {sorted(ALL_BENCHMARKS)}")


def resolve_workload(name: str) -> str:
    """Canonicalize any workload name a cell/CLI may carry.

    Three kinds are accepted everywhere a benchmark used to be:

    * catalog benchmarks (``gcc_r``, suffix-less ``gcc``) — canonical
      catalog name,
    * heterogeneous mixes (``mix1``..``mix7``) — returned as-is,
    * trace specs (``trace:<format>:<digest16>:<path>``, from
      :func:`repro.workloads.tracefile.trace_workload_spec`) — validated
      and returned as-is, so the content digest rides inside every cache
      key derived from the cell.

    Raises :class:`KeyError` for unknown names, listing all three kinds.
    """
    from repro.workloads.mixes import MIXES, is_mix
    from repro.workloads.tracefile import is_trace_spec, parse_trace_spec

    if is_trace_spec(name):
        parse_trace_spec(name)  # raises ValueError on malformed specs
        return name
    if is_mix(name):
        return name
    try:
        return get_benchmark(name).name
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known benchmarks: "
            f"{sorted(ALL_BENCHMARKS)}; mixes: {sorted(MIXES)}; or a "
            f"'trace:<format>:<digest>:<path>' spec from "
            f"trace_workload_spec()"
        ) from None


def generate_workload(
    name: str,
    num_cores: int = 8,
    reads_per_core: int = 20000,
    capacity_scale: int = 256,
    seed: int = 1,
) -> Workload:
    """Generate a rate-mode workload: ``num_cores`` copies in disjoint ranges.

    Always runs the trace generators — callers wanting the cached tiers go
    through :func:`build_workload` (or the arena directly).
    """
    spec = get_benchmark(name)
    cores = []
    for core_id in range(num_cores):
        trace: CoreTrace = generate_core_trace(
            spec.pattern,
            num_reads=reads_per_core,
            seed=seed * 7919 + core_id,
            capacity_scale=capacity_scale,
            base_line=core_id * CORE_ADDRESS_STRIDE_LINES,
        )
        cores.append(trace)
    return Workload(name=spec.name, cores=cores)


def build_workload(
    name: str,
    num_cores: int = 8,
    reads_per_core: int = 20000,
    capacity_scale: int = 256,
    seed: int = 1,
) -> Workload:
    """The cached path: fetch through the process-wide workload arena.

    The arena memoizes in-process (replacing this function's former
    ``lru_cache``) and persists ``.npz`` trace arenas under
    ``.repro_cache/traces/`` keyed by content, so repeated processes reuse
    materialized traces instead of re-running the generators. The name is
    resolved first so ``"gcc"`` and ``"gcc_r"`` share a cache entry, and
    mixes (``mix1``..``mix7``) and trace specs build through the same
    arena path as catalog benchmarks.
    """
    # Local import: arena generates via generate_workload() above.
    from repro.workloads.arena import WorkloadParams, get_workload_arena

    params = WorkloadParams(
        benchmark=resolve_workload(name),
        num_cores=num_cores,
        reads_per_core=reads_per_core,
        capacity_scale=capacity_scale,
        seed=seed,
    )
    workload, _ = get_workload_arena().fetch(params)
    return workload
