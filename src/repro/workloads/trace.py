"""Trace containers: the L3-miss streams the simulator consumes.

A trace models the stream of requests leaving the L3 cache: demand read
misses (which block the issuing core) and writebacks of dirty L3 victims
(posted). Each record carries the *gap* — compute cycles the core spends
between the completion of its previous blocking access and issuing this one
— plus the line address and the address of the miss-causing instruction
(needed by MAP-I).

Rate mode (the paper's methodology): 8 copies of a benchmark run on 8 cores,
each in a disjoint physical address range (the paper's virtual-to-physical
mapping guarantees no sharing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class CoreTrace:
    """One core's request stream as parallel numpy arrays.

    Attributes:
        gaps: Compute cycles preceding each request (float64).
        addresses: Line addresses (int64).
        is_write: True for L3 writebacks (bool).
        pcs: Instruction addresses of the miss-causing loads (int64).
        instructions: Total instructions this trace slice represents; used
            for MPKI accounting and Table 3.
    """

    gaps: np.ndarray
    addresses: np.ndarray
    is_write: np.ndarray
    pcs: np.ndarray
    instructions: int
    #: True where a read's address depends on the previous read's data
    #: (pointer chasing). Dependent reads cannot overlap under MLP cores.
    #: None means fully independent.
    is_dependent: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.addresses)
        if not (len(self.gaps) == len(self.is_write) == len(self.pcs) == n):
            raise ValueError("trace arrays must have equal lengths")
        if self.is_dependent is not None and len(self.is_dependent) != n:
            raise ValueError("is_dependent must match the trace length")

    def dependent_flags(self) -> np.ndarray:
        """Per-record dependence flags (all False when untracked)."""
        if self.is_dependent is None:
            return np.zeros(len(self.addresses), dtype=bool)
        return self.is_dependent

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def num_reads(self) -> int:
        return int(np.count_nonzero(~self.is_write))

    @property
    def num_writes(self) -> int:
        return int(np.count_nonzero(self.is_write))

    @property
    def mpki(self) -> float:
        """Read (demand) misses per 1000 instructions."""
        return 1000.0 * self.num_reads / self.instructions if self.instructions else 0.0

    def unique_lines(self) -> int:
        return int(np.unique(self.addresses).size)

    def records(self) -> Iterator[Tuple[float, int, bool, int]]:
        """Iterate (gap, address, is_write, pc) tuples."""
        return zip(
            self.gaps.tolist(),
            self.addresses.tolist(),
            self.is_write.tolist(),
            self.pcs.tolist(),
        )

    def offset_addresses(self, line_offset: int) -> "CoreTrace":
        """Copy with all line addresses shifted (disjoint rate-mode ranges)."""
        return CoreTrace(
            gaps=self.gaps,
            addresses=self.addresses + line_offset,
            is_write=self.is_write,
            pcs=self.pcs,
            instructions=self.instructions,
            is_dependent=self.is_dependent,
        )


@dataclass
class Workload:
    """A multi-core workload: one trace per core plus identification."""

    name: str
    cores: List[CoreTrace] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def total_requests(self) -> int:
        return sum(len(t) for t in self.cores)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.cores)

    @property
    def mpki(self) -> float:
        reads = sum(t.num_reads for t in self.cores)
        instr = self.total_instructions
        return 1000.0 * reads / instr if instr else 0.0

    def footprint_lines(self) -> int:
        """Unique lines touched across all cores (disjoint by construction)."""
        return sum(t.unique_lines() for t in self.cores)

    def footprint_bytes(self) -> int:
        return self.footprint_lines() * 64
