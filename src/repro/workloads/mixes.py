"""Heterogeneous multi-programmed mixes: mix1-mix7, MPKI-graded.

Rate mode (8 copies of one benchmark) is the paper's methodology, but it
only ever exercises the predictors, the MissMap and bank contention on
homogeneous streams. A *mix* assigns a **different** catalog benchmark to
every core — the Kill-Llama benchmark layout (SNIPPETS.md snippet 1),
where mixes are numbered so aggregate memory intensity rises from mix1 to
mix7. Here each mix names eight distinct :mod:`repro.workloads.spec`
catalog entries, ordered by the paper's reported MPKI, and the nominal
(catalog) MPKI of the mixes themselves is strictly increasing:
``mix1`` is all low-intensity secondary workloads, ``mix7`` is the eight
hungriest primaries.

Mixes are first-class workload names everywhere a benchmark is accepted
(``repro sweep --benchmarks mix3``, sweep cells, jobs, ``repro explore``):
:func:`repro.workloads.spec.resolve_workload` recognises them and the
workload arena materializes them through :func:`generate_mix_workload`, so
mixes get content keys, ``.npz`` arena caching and shared-memory fan-out
exactly like rate-mode workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.trace import CoreTrace, Workload

#: Bump when any mix's composition changes: folded into the workload
#: arena's content keys so persisted mix traces from an older table are
#: invalidated automatically.
MIX_REVISION = 1


@dataclass(frozen=True)
class MixSpec:
    """One named heterogeneous mix: an ordered per-core benchmark list."""

    name: str
    #: Catalog benchmark per core slot (all distinct, MPKI-ascending).
    benchmarks: Tuple[str, ...]

    def benchmark_for_core(self, core_id: int) -> str:
        """The benchmark core ``core_id`` runs (cycles past 8 cores)."""
        return self.benchmarks[core_id % len(self.benchmarks)]

    @property
    def nominal_mpki(self) -> float:
        """Mean catalog (paper Table 3 / Figure 11) MPKI of the members.

        The *grading* statistic: generated-trace MPKI additionally depends
        on gap models and trace length, but the catalog numbers define the
        mix ordering.
        """
        from repro.workloads.spec import get_benchmark

        return sum(
            get_benchmark(b).paper_mpki for b in self.benchmarks
        ) / len(self.benchmarks)


#: mix1 -> mix7, eight distinct benchmarks each, nominal MPKI strictly
#: increasing (asserted in tests). Adjacent mixes overlap — like the
#: Kill-Llama table, the point is a graded intensity axis, not disjoint
#: partitions of the catalog.
_MIX_TABLE: Tuple[Tuple[str, ...], ...] = (
    # mix1: the lowest-intensity secondary workloads.
    ("namd_r", "sjeng_r", "gobmk_r", "tonto_r",
     "gromacs_r", "hmmer_r", "perlbench_r", "h264_r"),
    # mix2: light secondaries shifted one band up.
    ("gobmk_r", "tonto_r", "hmmer_r", "perlbench_r",
     "h264_r", "dealII_r", "bzip2_r", "cactus_r"),
    # mix3: the heavier secondaries.
    ("perlbench_r", "h264_r", "dealII_r", "bzip2_r",
     "cactus_r", "astar_r", "zeusmp_r", "xalanc_r"),
    # mix4: secondary/primary boundary.
    ("bzip2_r", "cactus_r", "astar_r", "zeusmp_r",
     "xalanc_r", "gems_r", "sphinx_r", "gcc_r"),
    # mix5: mostly primaries.
    ("zeusmp_r", "xalanc_r", "gems_r", "sphinx_r",
     "gcc_r", "bwaves_r", "omnetpp_r", "libquantum_r"),
    # mix6: all primaries.
    ("sphinx_r", "gcc_r", "bwaves_r", "omnetpp_r",
     "libquantum_r", "milc_r", "soplex_r", "lbm_r"),
    # mix7: the eight highest-MPKI primaries.
    ("gcc_r", "bwaves_r", "omnetpp_r", "libquantum_r",
     "milc_r", "soplex_r", "lbm_r", "mcf_r"),
)

MIXES: Dict[str, MixSpec] = {
    f"mix{i}": MixSpec(name=f"mix{i}", benchmarks=members)
    for i, members in enumerate(_MIX_TABLE, start=1)
}


def is_mix(name: str) -> bool:
    """Whether ``name`` names a catalog mix."""
    return name in MIXES


def get_mix(name: str) -> MixSpec:
    """Look up a mix by name."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r}; known: {sorted(MIXES)}"
        ) from None


def generate_mix_workload(
    name: str,
    num_cores: int = 8,
    reads_per_core: int = 20000,
    capacity_scale: int = 256,
    seed: int = 1,
) -> Workload:
    """Generate a heterogeneous workload: each core runs its mix slot.

    Deterministic and shaped exactly like a rate-mode workload: core ``i``
    runs the generator for its assigned benchmark with the same per-core
    seed derivation and disjoint address striding as
    :func:`repro.workloads.spec.generate_workload`, so a mix is
    indistinguishable from a generated rate-mode workload downstream
    (arena, shared memory, both engines).
    """
    # Local import: spec is the catalog this module composes over.
    from repro.workloads.patterns import generate_core_trace
    from repro.workloads.spec import (
        CORE_ADDRESS_STRIDE_LINES,
        get_benchmark,
    )

    spec = get_mix(name)
    cores = []
    for core_id in range(num_cores):
        benchmark = get_benchmark(spec.benchmark_for_core(core_id))
        trace: CoreTrace = generate_core_trace(
            benchmark.pattern,
            num_reads=reads_per_core,
            seed=seed * 7919 + core_id,
            capacity_scale=capacity_scale,
            base_line=core_id * CORE_ADDRESS_STRIDE_LINES,
        )
        cores.append(trace)
    return Workload(name=spec.name, cores=cores)
