"""Workload synthesis: traces, access-pattern generators, SPEC-like catalog."""

from repro.workloads.trace import CoreTrace, Workload
from repro.workloads.patterns import (
    PatternConfig,
    generate_core_trace,
)
from repro.workloads.tracefile import (
    save_workload,
    load_workload,
    export_csv,
    import_csv,
)
from repro.workloads.spec import (
    BenchmarkSpec,
    PRIMARY_BENCHMARKS,
    SECONDARY_BENCHMARKS,
    ALL_BENCHMARKS,
    get_benchmark,
    build_workload,
)

__all__ = [
    "CoreTrace",
    "Workload",
    "PatternConfig",
    "generate_core_trace",
    "BenchmarkSpec",
    "PRIMARY_BENCHMARKS",
    "SECONDARY_BENCHMARKS",
    "ALL_BENCHMARKS",
    "get_benchmark",
    "build_workload",
    "save_workload",
    "load_workload",
    "export_csv",
    "import_csv",
]
