"""Workload synthesis: traces, access-pattern generators, SPEC-like catalog,
heterogeneous mixes, and external (DRAMSim2 k6/mase, CSV) trace ingestion."""

from repro.workloads.trace import CoreTrace, Workload
from repro.workloads.patterns import (
    PatternConfig,
    generate_core_trace,
)
from repro.workloads.tracefile import (
    NOMINAL_INSTRUCTIONS_PER_REQUEST,
    TRACE_FORMATS,
    save_workload,
    load_workload,
    export_csv,
    import_csv,
    decode_trace,
    sniff_format,
    file_digest,
    trace_workload_spec,
    is_trace_spec,
    parse_trace_spec,
    workload_from_spec,
)
from repro.workloads.mixes import (
    MIXES,
    MixSpec,
    is_mix,
    get_mix,
    generate_mix_workload,
)
from repro.workloads.spec import (
    BenchmarkSpec,
    PRIMARY_BENCHMARKS,
    SECONDARY_BENCHMARKS,
    ALL_BENCHMARKS,
    get_benchmark,
    resolve_workload,
    build_workload,
)

__all__ = [
    "CoreTrace",
    "Workload",
    "PatternConfig",
    "generate_core_trace",
    "BenchmarkSpec",
    "PRIMARY_BENCHMARKS",
    "SECONDARY_BENCHMARKS",
    "ALL_BENCHMARKS",
    "get_benchmark",
    "resolve_workload",
    "build_workload",
    "MIXES",
    "MixSpec",
    "is_mix",
    "get_mix",
    "generate_mix_workload",
    "NOMINAL_INSTRUCTIONS_PER_REQUEST",
    "TRACE_FORMATS",
    "save_workload",
    "load_workload",
    "export_csv",
    "import_csv",
    "decode_trace",
    "sniff_format",
    "file_digest",
    "trace_workload_spec",
    "is_trace_spec",
    "parse_trace_spec",
    "workload_from_spec",
]
