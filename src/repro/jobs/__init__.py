"""Resumable jobs: named, content-keyed sweeps with append-only journals.

Public surface:

* :class:`Job`, :func:`create_job`, :func:`open_job`, :func:`list_jobs`,
  :func:`remove_job`, :func:`ephemeral_job` — job lifecycle
  (:mod:`repro.jobs.manager`).
* :func:`submit_job`, :func:`resume_job` — execution through the single
  fan-out loop (:mod:`repro.jobs.engine`); ``run_sweep`` is a thin client.
* :class:`JobJournal` — the JSONL checkpoint (:mod:`repro.jobs.journal`).
* :func:`cache_stats`, :func:`prune_cache`, :func:`clear_cache` — the
  ``repro cache`` store admin (:mod:`repro.jobs.storage`).
"""

from repro.jobs.engine import resume_job, submit_job
from repro.jobs.journal import JOURNAL_NAME, JobJournal
from repro.jobs.manager import (
    JOBS_SUBDIR,
    Job,
    JobInfo,
    JobRunLock,
    cell_from_dict,
    cell_to_dict,
    create_job,
    ephemeral_job,
    job_id_for,
    job_in_use,
    jobs_root,
    list_jobs,
    open_job,
    remove_job,
)
from repro.jobs.storage import (
    CacheStats,
    PruneReport,
    cache_stats,
    clear_cache,
    format_size,
    parse_size,
    prune_cache,
)
