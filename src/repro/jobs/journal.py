"""Append-only JSONL checkpoint journal for resumable jobs.

One journal per job, at ``.repro_cache/jobs/<job_id>/journal.jsonl``. The
first line is a header record; every subsequent line records one completed
sweep cell — its content key, a human-readable cell echo, the serialized
:class:`~repro.sim.results.SimResult` and the telemetry of the run that
produced it. Records are appended (and flushed + fsynced) the moment a cell
completes, so a killed or crashed run leaves a journal covering exactly the
cells that finished.

Crash tolerance is structural, not transactional:

* A **truncated last line** (the process died mid-write) fails to parse as
  JSON and is silently dropped — the affected cell simply re-runs on
  resume. The same policy applies to any corrupt interior line.
* **Stale journals** need no version check of their own: cell content keys
  (:func:`repro.sim.parallel.cell_key`) already fold in the package version,
  cache schema and the :class:`SimResult` field signature, so records
  written by older code never match a current cell's key and the cell
  re-runs.
* Appends are ``O_APPEND`` writes of one complete line; duplicate keys are
  possible after overlapping resumes and are harmless (the last record
  wins on load).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Dict, Optional, Tuple

from repro.sim.results import SimResult

#: Bump when the journal record layout changes.
JOURNAL_SCHEMA = 1

#: Journal file name inside a job directory.
JOURNAL_NAME = "journal.jsonl"


class JobJournal:
    """Append-only JSONL record of a job's completed cells."""

    def __init__(self, path: Path, job_id: str = "", name: str = "") -> None:
        self.path = Path(path)
        self.job_id = job_id
        self.name = name
        #: Records dropped on the last :meth:`load` (corrupt/truncated).
        self.dropped = 0
        self._fh: Optional[IO[str]] = None

    # -- read -----------------------------------------------------------
    def load(self) -> Dict[str, Tuple[SimResult, Dict]]:
        """Completed cells: content key -> (result, telemetry).

        Unparseable lines — including a truncated final line from a crash
        mid-append — are dropped (counted in :attr:`dropped`), never fatal.
        """
        entries: Dict[str, Tuple[SimResult, Dict]] = {}
        self.dropped = 0
        try:
            text = self.path.read_bytes().decode("utf-8", errors="replace")
        except OSError:
            # Missing — or deleted by a concurrent prune between the
            # caller's existence check and this read: an empty journal.
            return entries
        for line in text.split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self.dropped += 1
                continue
            if not isinstance(record, dict) or record.get("kind") != "cell":
                continue
            try:
                key = record["key"]
                result = SimResult.from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                self.dropped += 1
                continue
            entries[key] = (result, record.get("telemetry", {}))
        return entries

    def completed_count(self) -> int:
        """Number of distinct completed cells currently journaled."""
        return len(self.load())

    # -- write ----------------------------------------------------------
    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            if not fresh:
                # Self-heal a crash-truncated tail: if the file does not
                # end in a newline, the next append would glue onto the
                # partial record and corrupt *both* lines.
                with open(self.path, "rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = open(self.path, "a", encoding="utf-8")
            if not fresh and needs_newline:
                self._fh.write("\n")
                self._fh.flush()
            if fresh:
                self._append(
                    {
                        "kind": "header",
                        "schema": JOURNAL_SCHEMA,
                        "job_id": self.job_id,
                        "name": self.name,
                    }
                )
        return self._fh

    def _append(self, record: Dict) -> None:
        fh = self._handle()
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())

    def record(
        self,
        key: str,
        result: SimResult,
        telemetry: Optional[Dict] = None,
        cell: Optional[Dict] = None,
    ) -> None:
        """Checkpoint one completed cell (durable before returning)."""
        self._append(
            {
                "kind": "cell",
                "key": key,
                "cell": cell or {},
                "telemetry": telemetry or {},
                "result": result.to_dict(),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
