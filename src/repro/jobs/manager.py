"""Jobs: named, content-keyed sets of sweep cells with on-disk state.

A :class:`Job` is the unit of resumable work: a (possibly empty) name plus
an ordered list of :class:`~repro.sim.parallel.SweepCell`\\ s. Named jobs
live under ``.repro_cache/jobs/<job_id>/`` with two files:

* ``job.json`` — the manifest: name, job id, creation time and every cell
  fully serialized (design, benchmark, seed, reads, warmup and the complete
  ``SystemConfig``), so ``repro jobs show``/``--resume`` can rebuild the
  exact work list with no other inputs.
* ``journal.jsonl`` — the append-only checkpoint of completed cells
  (:mod:`repro.jobs.journal`).

The **job id is a content key**: a slug of the name plus a SHA-256 digest
over the sorted cell content keys. Re-submitting the same name with the
same cells lands in the same directory (and therefore resumes); changing
any knob — or upgrading the package, since cell keys fold the version in —
produces a fresh job instead of silently mixing incompatible results.

Ephemeral jobs (``directory=None``) carry no journal; they exist so plain
:func:`repro.sim.parallel.run_sweep` calls route through the same
:func:`submit_job` entry point as everything else.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import re
import shutil
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.jobs.journal import JOURNAL_NAME, JobJournal
from repro.sim.config import SystemConfig
from repro.sim.parallel import SweepCell, default_cache_dir

try:  # pragma: no cover - always present on the POSIX CI/dev hosts
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: no-op locks
    fcntl = None  # type: ignore[assignment]

#: Bump when the manifest layout changes.
MANIFEST_SCHEMA = 1

#: Manifest file name inside a job directory.
MANIFEST_NAME = "job.json"

#: Subdirectory of the cache dir holding all job state.
JOBS_SUBDIR = "jobs"

#: Advisory lock file inside a job directory marking it in use.
LOCK_NAME = ".lock"


class JobRunLock:
    """Advisory in-use marker for a job directory.

    Every runner of a journaled job holds a *shared* ``flock`` on
    ``<job dir>/.lock`` for the duration of :func:`repro.jobs.submit_job`
    (overlapping resumes of one job are legal, hence shared, not
    exclusive). ``prune_cache`` probes with a non-blocking *exclusive*
    lock before deleting a job directory, so eviction can never yank the
    journal out from under a live resume. On platforms without ``fcntl``
    the lock degrades to a no-op (prune falls back to its min-age floor).
    """

    def __init__(self, directory: Path) -> None:
        self.path = Path(directory) / LOCK_NAME
        self._fh = None

    def acquire(self) -> "JobRunLock":
        if fcntl is not None:
            self._fh = open(self.path, "a")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_SH)
        return self

    def release(self) -> None:
        if self._fh is not None:
            self._fh.close()  # closing the fd drops the flock
            self._fh = None

    def __enter__(self) -> "JobRunLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


def job_in_use(directory: Path) -> bool:
    """Whether some process currently holds ``directory``'s run lock."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        return False
    lock = Path(directory) / LOCK_NAME
    try:
        fd = os.open(lock, os.O_RDWR)
    except OSError:
        return False  # no lock file: nothing is running this job
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        return True
    finally:
        os.close(fd)
    return False


def jobs_root(cache_dir: Optional[Path] = None) -> Path:
    """The directory all job state lives under."""
    base = Path(cache_dir) if cache_dir else default_cache_dir()
    return base / JOBS_SUBDIR


def _slug(name: str) -> str:
    """Directory-safe form of a job name."""
    slug = re.sub(r"[^a-z0-9._-]+", "-", name.lower()).strip("-")
    return slug[:48]


def job_id_for(name: str, cells: Sequence[SweepCell]) -> str:
    """Content-keyed job id: ``<name-slug>-<digest12>``.

    The digest covers the *sorted* cell content keys (order-independent:
    the same grid enumerated in a different order is the same job) plus
    the name, so two differently-named jobs over identical cells keep
    separate journals.
    """
    payload = json.dumps(
        [name, sorted(cell.key() for cell in cells)],
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
    slug = _slug(name)
    return f"{slug}-{digest}" if slug else digest


def cell_to_dict(cell: SweepCell) -> Dict:
    """One cell serialized for the manifest (full config, JSON-safe)."""
    return {
        "design": cell.design,
        "benchmark": cell.benchmark,
        "seed": cell.seed,
        "reads_per_core": cell.reads_per_core,
        "warmup_fraction": cell.warmup_fraction,
        "config": asdict(cell.config),
    }


def cell_from_dict(data: Dict) -> SweepCell:
    """Rebuild a cell from :func:`cell_to_dict` output."""
    return SweepCell(
        design=data["design"],
        benchmark=data["benchmark"],
        config=SystemConfig.from_dict(data.get("config", {})),
        reads_per_core=int(data.get("reads_per_core", 12000)),
        warmup_fraction=float(data.get("warmup_fraction", 0.25)),
        seed=int(data.get("seed", 1)),
    )


@dataclass
class Job:
    """A named, content-keyed set of sweep cells (the resumable unit)."""

    name: str
    cells: List[SweepCell]
    #: On-disk home (manifest + journal); None for ephemeral jobs.
    directory: Optional[Path] = None
    created: str = ""

    @property
    def job_id(self) -> str:
        return job_id_for(self.name, self.cells)

    @property
    def journal_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / JOURNAL_NAME

    def journal(self) -> Optional[JobJournal]:
        """This job's journal (None for ephemeral jobs)."""
        if self.directory is None:
            return None
        return JobJournal(
            self.directory / JOURNAL_NAME, job_id=self.job_id, name=self.name
        )

    def completed_cells(self) -> int:
        """Distinct cells of *this* job already journaled as complete."""
        journal = self.journal()
        if journal is None:
            return 0
        done = journal.load()
        return sum(1 for cell in self.cells if cell.key() in done)


def ephemeral_job(cells: Sequence[SweepCell]) -> Job:
    """An unnamed, journal-less job (the plain ``run_sweep`` path)."""
    return Job(name="", cells=list(cells), directory=None)


def create_job(
    name: str,
    cells: Sequence[SweepCell],
    cache_dir: Optional[Path] = None,
) -> Job:
    """Create (or attach to) the named job for this exact cell set.

    Idempotent: the content-keyed id means resubmitting the same work
    re-opens the existing directory — and its journal — instead of
    duplicating it.
    """
    if not name:
        raise ValueError("named jobs need a non-empty name")
    cells = list(cells)
    if not cells:
        raise ValueError("a job needs at least one cell")
    job = Job(name=name, cells=cells)
    directory = jobs_root(cache_dir) / job.job_id
    directory.mkdir(parents=True, exist_ok=True)
    job.directory = directory
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        job.created = _dt.datetime.now(_dt.timezone.utc).isoformat(
            timespec="seconds"
        )
        payload = {
            "schema": MANIFEST_SCHEMA,
            "kind": "repro-job",
            "name": name,
            "job_id": job.job_id,
            "created": job.created,
            "total_cells": len(cells),
            "cells": [cell_to_dict(cell) for cell in cells],
        }
        tmp = manifest_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, manifest_path)
    else:
        try:
            job.created = json.loads(manifest_path.read_text()).get(
                "created", ""
            )
        except ValueError:
            job.created = ""
    return job


def _load_manifest(directory: Path) -> Optional[Dict]:
    path = directory / MANIFEST_NAME
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if data.get("kind") != "repro-job":
        return None
    return data


def _job_from_manifest(directory: Path, data: Dict) -> Job:
    return Job(
        name=data.get("name", ""),
        cells=[cell_from_dict(c) for c in data.get("cells", [])],
        directory=directory,
        created=data.get("created", ""),
    )


def open_job(ref: str, cache_dir: Optional[Path] = None) -> Job:
    """Load a job by id or by name.

    Name lookups scan every manifest; if several jobs share a name (same
    name over different cell sets), the reference is ambiguous and the
    error lists the candidate ids.
    """
    root = jobs_root(cache_dir)
    direct = _load_manifest(root / ref)
    if direct is not None:
        return _job_from_manifest(root / ref, direct)
    matches: List[Job] = []
    if root.is_dir():
        for directory in sorted(root.iterdir()):
            data = _load_manifest(directory)
            if data is not None and data.get("name") == ref:
                matches.append(_job_from_manifest(directory, data))
    if not matches:
        raise KeyError(f"no job named or identified by {ref!r} under {root}")
    if len(matches) > 1:
        ids = ", ".join(job.job_id for job in matches)
        raise KeyError(
            f"job name {ref!r} is ambiguous ({len(matches)} jobs: {ids}); "
            "use a job id"
        )
    return matches[0]


@dataclass
class JobInfo:
    """One row of ``repro jobs list``."""

    job_id: str
    name: str
    created: str
    total_cells: int
    completed_cells: int
    bytes: int
    directory: Path = field(default_factory=Path)


def list_jobs(cache_dir: Optional[Path] = None) -> List[JobInfo]:
    """Every job on disk, oldest first (by manifest creation time)."""
    root = jobs_root(cache_dir)
    infos: List[JobInfo] = []
    if not root.is_dir():
        return infos
    for directory in sorted(root.iterdir()):
        data = _load_manifest(directory)
        if data is None:
            continue
        job = _job_from_manifest(directory, data)
        size = 0
        for p in directory.rglob("*"):
            try:
                size += p.stat().st_size if p.is_file() else 0
            except OSError:  # vanished under a concurrent pruner
                continue
        infos.append(
            JobInfo(
                job_id=data.get("job_id", directory.name),
                name=job.name,
                created=job.created,
                total_cells=int(data.get("total_cells", len(job.cells))),
                completed_cells=job.completed_cells(),
                bytes=size,
                directory=directory,
            )
        )
    infos.sort(key=lambda info: (info.created, info.job_id))
    return infos


def remove_job(ref: str, cache_dir: Optional[Path] = None) -> Path:
    """Delete one job's directory (manifest + journal); returns the path."""
    job = open_job(ref, cache_dir=cache_dir)
    assert job.directory is not None
    shutil.rmtree(job.directory)
    return job.directory
