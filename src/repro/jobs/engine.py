"""The job executor: one fan-out loop for every way the simulator runs.

This is the machinery that used to live inside
:func:`repro.sim.parallel.run_sweep`, factored out so that *all* execution
— ad-hoc sweeps, figure/table experiments, ``repro explore`` rounds — goes
through one resumable entry point:

* :func:`submit_job` — execute a :class:`~repro.jobs.manager.Job`. Cells
  already checkpointed in the job's journal are served without simulation;
  remaining cells are consulted against the persistent result cache and
  then executed (in-process when ``max_workers=1``, else on the shared
  persistent process pool from :mod:`repro.sim.parallel`, with the
  zero-copy shared-workload fan-out). Every completion is appended to the
  journal *before* the loop moves on, so a crash — including a hard
  ``SIGKILL`` of a worker that poisons the pool — loses at most in-flight
  cells. The returned :class:`~repro.sim.parallel.SweepReport` is
  bit-identical (modulo wall-clock telemetry) whether the job ran
  uninterrupted or across any number of resumes.
* :func:`resume_job` — reopen a job by id or name and finish it.

Crash-injection hook (tests + the CI interrupted-resume smoke): setting
``REPRO_TEST_KILL_CELL=<design>/<benchmark>`` makes the pool worker that
picks up that cell ``SIGKILL`` itself, which surfaces to the parent as
:class:`~concurrent.futures.process.BrokenProcessPool` — the exact failure
mode the journal exists to survive.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence

from repro.jobs.journal import JobJournal
from repro.jobs.manager import Job, JobRunLock, cell_to_dict, open_job
from repro.sim import parallel as _par
from repro.sim.parallel import (
    CellResult,
    ResultCache,
    SweepCell,
    SweepReport,
    shared_traces_enabled,
)
from repro.sim.results import SimResult
from repro.workloads.arena import (
    SharedWorkloadHandle,
    acquire_shared_workload,
    get_workload_arena,
    release_shared_workload,
)

#: Optional per-cell callback: called with each newly-executed CellResult
#: (not journal/cache hits), after it has been journaled.
Progress = Callable[[CellResult], None]


def submit_job(
    job: Job,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    progress: Optional[Progress] = None,
    on_cell: Optional[Progress] = None,
) -> SweepReport:
    """Execute (or finish) a job; see the module docstring.

    While a journaled job runs, its directory holds a shared advisory run
    lock (:class:`repro.jobs.manager.JobRunLock`), so a concurrent
    ``repro cache prune`` cannot delete the journal mid-resume.
    ``on_cell`` (unlike ``progress``) fires for *every* completed cell —
    journal replays and cache hits included — in completion order; the
    serve layer streams these to clients incrementally.
    """
    journal = job.journal()
    lock = (
        JobRunLock(job.directory).acquire()
        if job.directory is not None
        else None
    )
    try:
        return _execute_cells(
            job.cells,
            max_workers=max_workers,
            cache=cache,
            use_cache=use_cache,
            journal=journal,
            progress=progress,
            on_cell=on_cell,
        )
    finally:
        if lock is not None:
            lock.release()
        if journal is not None:
            journal.close()


def resume_job(
    ref: str,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    progress: Optional[Progress] = None,
    cache_dir=None,
    on_cell: Optional[Progress] = None,
) -> SweepReport:
    """Reopen a job by id or name and run whatever its journal is missing."""
    return submit_job(
        open_job(ref, cache_dir=cache_dir),
        max_workers=max_workers,
        cache=cache,
        use_cache=use_cache,
        progress=progress,
        on_cell=on_cell,
    )


def _execute_cells(
    cells: Sequence[SweepCell],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    journal: Optional[JobJournal] = None,
    progress: Optional[Progress] = None,
    on_cell: Optional[Progress] = None,
) -> SweepReport:
    """The fan-out loop behind :func:`submit_job` (and ``run_sweep``).

    Serving order per cell: journal -> result cache -> execute. Cells the
    journal already covers are *not* re-journaled; cache hits and fresh
    executions are appended so the journal converges to a complete record
    of the job. Duplicate cells (same content key) are simulated once and
    fanned back to every occurrence, exactly as before the refactor.
    """
    cells = list(cells)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if cache is None:
        cache = _par.get_result_cache()
    started = time.perf_counter()

    def _emit(slot: CellResult) -> None:
        if on_cell is not None:
            on_cell(slot)

    completed: Dict[str, tuple] = journal.load() if journal is not None else {}
    journaled = set(completed)
    slots: List[Optional[CellResult]] = [None] * len(cells)
    pending: Dict[str, List[int]] = {}
    cell_by_key: Dict[str, SweepCell] = {}

    def _checkpoint(key: str, result: SimResult, telemetry: Dict) -> None:
        if journal is not None and key not in journaled:
            journal.record(
                key,
                result,
                telemetry,
                cell=_brief(cell_by_key[key]),
            )
            journaled.add(key)

    for index, cell in enumerate(cells):
        key = cell.key()
        cell_by_key.setdefault(key, cell)
        entry = completed.get(key)
        if entry is None:
            entry = cache.get_entry(key) if use_cache else None
            if entry is not None:
                _checkpoint(key, entry[0], entry[1])
        if entry is not None:
            result, telemetry = entry
            slots[index] = _par._cell_result(
                cell, result, telemetry, from_cache=True
            )
            _emit(slots[index])
        else:
            pending.setdefault(key, []).append(index)

    def _finish(key: str, result: SimResult, telemetry: Dict) -> None:
        _checkpoint(key, result, telemetry)
        first = True
        for index in pending[key]:
            slots[index] = _par._cell_result(
                cells[index], result, telemetry, from_cache=not first
            )
            first = False
            _emit(slots[index])
        if progress is not None:
            progress(slots[pending[key][0]])

    workloads_unique = len(
        {
            cells[indices[0]].workload_params().key()
            for indices in pending.values()
        }
    )
    parent_builds = 0
    parent_trace_seconds = 0.0

    if pending and max_workers == 1:
        for key, indices in pending.items():
            cell = cells[indices[0]]
            result, telemetry = _par._execute_cell(cell)
            if use_cache:
                cache.put(key, result, telemetry, _par._cell_describe(cell))
            _finish(key, result, telemetry)
    elif pending:
        persist = use_cache and cache.persist
        share = shared_traces_enabled()
        handles: Dict[str, SharedWorkloadHandle] = {}
        acquired: List[str] = []
        futures: Dict[Future, str] = {}
        try:
            if share:
                pool = _par._get_pool(max_workers)
                arena = get_workload_arena()
                for key, indices in pending.items():
                    cell = cells[indices[0]]
                    params = cell.workload_params()
                    wkey = params.key()
                    handle = handles.get(wkey)
                    if handle is None:
                        workload, trace_tel = arena.fetch(params)
                        parent_trace_seconds += trace_tel[
                            "trace_build_seconds"
                        ]
                        if trace_tel["trace_source"] == "built":
                            parent_builds += 1
                        handle = acquire_shared_workload(wkey, workload)
                        handles[wkey] = handle
                        acquired.append(wkey)
                    futures[
                        pool.submit(
                            _par._worker,
                            cell,
                            str(cache.directory),
                            persist,
                            handle,
                        )
                    ] = key
            else:
                # Fabric disabled: ephemeral pool, workers build their own
                # workloads (each worker's arena memoizes across its cells).
                pool = ProcessPoolExecutor(
                    max_workers=min(max_workers, len(pending))
                )
                for key, indices in pending.items():
                    futures[
                        pool.submit(
                            _par._worker,
                            cells[indices[0]],
                            str(cache.directory),
                            persist,
                            None,
                        )
                    ] = key
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    result, telemetry = future.result()
                    if use_cache:
                        # Workers persisted to disk already; adopt into the
                        # parent's memory tier without a re-read.
                        cache.remember(key, result, telemetry)
                    _finish(key, result, telemetry)
        except BrokenProcessPool:
            # A worker died mid-flight; the pool is poisoned. Drop it so
            # the next sweep starts clean. Cells journaled before the
            # crash survive; a resume replays them and re-runs the rest.
            if share:
                _par.shutdown_worker_pool()
            raise
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        finally:
            for wkey in acquired:
                release_shared_workload(wkey)
            if not share:
                pool.shutdown(wait=False, cancel_futures=True)

    executed = [slot for slot in slots if slot is not None]
    workloads_built = parent_builds + sum(
        1
        for c in executed
        if not c.from_cache and c.trace_source == "built"
    )
    return SweepReport(
        cells=executed,
        max_workers=max_workers,
        elapsed_seconds=time.perf_counter() - started,
        workloads_unique=workloads_unique if pending else 0,
        workloads_built=workloads_built,
        parent_trace_seconds=parent_trace_seconds,
    )


def _brief(cell: SweepCell) -> Dict:
    """Compact cell echo for journal records (config omitted: the manifest
    has it in full and the key pins it)."""
    data = cell_to_dict(cell)
    data.pop("config", None)
    return data
