"""Inspection and bounding of the ``.repro_cache/`` store.

The persistent store grew organically — result JSONs at the root (PR 1),
``traces/*.npz`` workload arenas (PR 4), and now ``jobs/<job_id>/``
manifests + journals — with nothing to stop it growing forever. This
module backs the ``repro cache`` CLI verb:

* :func:`cache_stats` — per-kind file counts and byte totals.
* :func:`prune_cache` — evict least-recently-modified entries (result
  files, trace arenas, and whole job directories as atomic units) until
  the store fits a byte budget. Everything here is a cache of
  recomputable state, so eviction is always safe — at worst a future run
  resimulates.
* :func:`clear_cache` — drop whole kinds outright.

All scanning here tolerates concurrent writers and pruners: any file may
vanish between ``iterdir`` and ``stat`` (another client completing a cell,
another prune racing this one), which is a skip, never a crash. Job
directories are additionally guarded by the advisory run lock
(:class:`repro.jobs.manager.JobRunLock`): prune never deletes a job some
process is mid-``resume_job`` on.
"""

from __future__ import annotations

import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.jobs.manager import JOBS_SUBDIR, job_in_use
from repro.sim.parallel import default_cache_dir
from repro.workloads.arena import TRACE_SUBDIR

_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``"500M"``/``"2g"``/``"1048576"`` -> bytes (raises ValueError)."""
    match = re.fullmatch(r"\s*(\d+)\s*([kKmMgG]?)[bB]?\s*", str(text))
    if not match:
        raise ValueError(f"cannot parse size {text!r} (try 500M, 2G, 1024)")
    return int(match.group(1)) * _SIZE_SUFFIXES[match.group(2).lower()]


def format_size(num_bytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(num_bytes) < 1024 or unit == "GiB":
            return (
                f"{num_bytes:.0f} {unit}"
                if unit == "B"
                else f"{num_bytes:.1f} {unit}"
            )
        num_bytes /= 1024
    return f"{num_bytes:.1f} GiB"  # pragma: no cover - unreachable


@dataclass
class KindStats:
    """One kind of cached state (results / traces / jobs)."""

    kind: str
    count: int
    bytes: int


@dataclass
class CacheStats:
    directory: Path
    results: KindStats
    traces: KindStats
    jobs: KindStats

    @property
    def total_bytes(self) -> int:
        return self.results.bytes + self.traces.bytes + self.jobs.bytes

    def render(self) -> str:
        lines = [f"cache {self.directory}:"]
        for stats in (self.results, self.traces, self.jobs):
            noun = "entries" if stats.kind != "jobs" else "jobs"
            lines.append(
                f"  {stats.kind:<8} {stats.count:>6} {noun:<7} "
                f"{format_size(stats.bytes):>10}"
            )
        lines.append(f"  {'total':<8} {'':>6} {'':<7} "
                     f"{format_size(self.total_bytes):>10}")
        return "\n".join(lines)


def _file_size(path: Path) -> Optional[int]:
    """``st_size``, or None when the file vanished under a concurrent
    writer/pruner between enumeration and ``stat``."""
    try:
        return path.stat().st_size
    except OSError:
        return None


def _dir_size(path: Path) -> int:
    total = 0
    try:
        for p in path.rglob("*"):
            try:
                if p.is_file():
                    total += p.stat().st_size
            except OSError:  # entry vanished mid-scan
                continue
    except OSError:  # the directory itself vanished mid-walk
        pass
    return total


def _result_files(directory: Path) -> List[Path]:
    return sorted(p for p in directory.glob("*.json") if p.is_file())


def _trace_files(directory: Path) -> List[Path]:
    traces = directory / TRACE_SUBDIR
    if not traces.is_dir():
        return []
    return sorted(p for p in traces.glob("*.npz") if p.is_file())


def _job_dirs(directory: Path) -> List[Path]:
    jobs = directory / JOBS_SUBDIR
    try:
        return sorted(p for p in jobs.iterdir() if p.is_dir())
    except OSError:  # missing or concurrently cleared
        return []


def _kind_stats(kind: str, paths: List[Path]) -> KindStats:
    sizes = [s for p in paths if (s := _file_size(p)) is not None]
    return KindStats(kind, len(sizes), sum(sizes))


def cache_stats(directory: Optional[Path] = None) -> CacheStats:
    """Count + size every kind of cached state under ``directory``.

    Race-tolerant: entries deleted between enumeration and ``stat`` (a
    concurrent prune, a worker replacing a temp file) are simply not
    counted.
    """
    directory = Path(directory) if directory else default_cache_dir()
    jobs = _job_dirs(directory)
    return CacheStats(
        directory=directory,
        results=_kind_stats("results", _result_files(directory)),
        traces=_kind_stats("traces", _trace_files(directory)),
        jobs=KindStats("jobs", len(jobs), sum(_dir_size(p) for p in jobs)),
    )


@dataclass
class PruneReport:
    directory: Path
    max_bytes: int
    removed: List[str]
    freed_bytes: int
    remaining_bytes: int
    #: Eviction candidates skipped because a process holds their run lock
    #: (or they are younger than the min-age floor).
    skipped: List[str] = field(default_factory=list)
    #: Why each :attr:`skipped` entry was kept (keyed by entry name).
    skip_reasons: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"pruned {len(self.removed)} entries "
            f"({format_size(self.freed_bytes)}) from {self.directory}; "
            f"{format_size(self.remaining_bytes)} remain "
            f"(budget {format_size(self.max_bytes)})"
        ]
        lines.extend(f"  removed {name}" for name in self.removed)
        lines.extend(
            f"  skipped {name} ({self.skip_reasons.get(name, 'in use')})"
            for name in self.skipped
        )
        return "\n".join(lines)


def _job_mtime(path: Path) -> Optional[float]:
    """Newest mtime inside a job dir; None when it vanished mid-scan."""
    newest: Optional[float] = None
    try:
        for p in path.rglob("*"):
            try:
                if p.is_file():
                    mtime = p.stat().st_mtime
                    newest = mtime if newest is None else max(newest, mtime)
            except OSError:
                continue
        if newest is None:
            newest = path.stat().st_mtime
    except OSError:
        return None
    return newest


def prune_cache(
    max_bytes: int,
    directory: Optional[Path] = None,
    min_age_seconds: float = 0.0,
) -> PruneReport:
    """Evict oldest entries until the store fits ``max_bytes``.

    Eviction units are individual result files, individual trace arenas,
    and *whole job directories* (a journal without its manifest is
    useless), ordered by last-modified time across all three kinds —
    a plain LRU over recomputable state.

    Two guards keep concurrent clients safe:

    * A job directory whose run lock is held (some process is mid
      ``submit_job``/``resume_job`` on it) is never deleted — it is
      reported in :attr:`PruneReport.skipped` instead.
    * ``min_age_seconds`` floors eviction by recency: entries modified
      within the window are kept, protecting freshly written results from
      a concurrently racing prune (and lock-less platforms from the race
      the lock otherwise covers).

    ``freed_bytes`` counts what was *actually* removed: a partially
    deleted job directory (``rmtree`` racing a writer) contributes only
    the bytes that are really gone.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    directory = Path(directory) if directory else default_cache_dir()
    now = time.time()
    units: List[Tuple[float, int, Path, bool]] = []
    for path in _result_files(directory) + _trace_files(directory):
        try:
            stat = path.stat()
        except OSError:  # vanished between glob and stat
            continue
        units.append((stat.st_mtime, stat.st_size, path, False))
    for path in _job_dirs(directory):
        mtime = _job_mtime(path)
        if mtime is None:
            continue
        units.append((mtime, _dir_size(path), path, True))
    total = sum(size for _, size, _, _ in units)
    removed: List[str] = []
    skipped: List[str] = []
    reasons: Dict[str, str] = {}

    def skip(name: str, reason: str) -> None:
        skipped.append(name)
        reasons[name] = reason

    freed = 0
    for mtime, size, path, is_dir in sorted(units, key=lambda u: u[0]):
        if total - freed <= max_bytes:
            break
        name = str(path.relative_to(directory))
        if min_age_seconds > 0 and now - mtime < min_age_seconds:
            skip(name, "too recent")
            continue
        if is_dir:
            if job_in_use(path):
                skip(name, "in use")
                continue
            shutil.rmtree(path, ignore_errors=True)
            remaining = _dir_size(path) if path.exists() else 0
            freed += max(0, size - remaining)
            if path.exists():
                skip(name, "partially removed")
            else:
                removed.append(name)
        else:
            try:
                path.unlink()
            except FileNotFoundError:
                # A racing pruner (or clear) beat us to it: the bytes are
                # gone either way, so account them as freed.
                freed += size
                removed.append(name)
                continue
            except OSError:  # pragma: no cover - permission races
                skip(name, "in use")
                continue
            freed += size
            removed.append(name)
    return PruneReport(
        directory=directory,
        max_bytes=max_bytes,
        removed=removed,
        freed_bytes=freed,
        remaining_bytes=total - freed,
        skipped=skipped,
        skip_reasons=reasons,
    )


def clear_cache(
    directory: Optional[Path] = None,
    results: bool = True,
    traces: bool = True,
    jobs: bool = True,
) -> CacheStats:
    """Remove whole kinds of cached state; returns what was removed."""
    directory = Path(directory) if directory else default_cache_dir()
    stats = cache_stats(directory)
    if results:
        for path in _result_files(directory):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
    if traces:
        shutil.rmtree(directory / TRACE_SUBDIR, ignore_errors=True)
    if jobs:
        shutil.rmtree(directory / JOBS_SUBDIR, ignore_errors=True)
    return CacheStats(
        directory=directory,
        results=stats.results if results else KindStats("results", 0, 0),
        traces=stats.traces if traces else KindStats("traces", 0, 0),
        jobs=stats.jobs if jobs else KindStats("jobs", 0, 0),
    )
