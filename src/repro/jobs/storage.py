"""Inspection and bounding of the ``.repro_cache/`` store.

The persistent store grew organically — result JSONs at the root (PR 1),
``traces/*.npz`` workload arenas (PR 4), and now ``jobs/<job_id>/``
manifests + journals — with nothing to stop it growing forever. This
module backs the ``repro cache`` CLI verb:

* :func:`cache_stats` — per-kind file counts and byte totals.
* :func:`prune_cache` — evict least-recently-modified entries (result
  files, trace arenas, and whole job directories as atomic units) until
  the store fits a byte budget. Everything here is a cache of
  recomputable state, so eviction is always safe — at worst a future run
  resimulates.
* :func:`clear_cache` — drop whole kinds outright.
"""

from __future__ import annotations

import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.jobs.manager import JOBS_SUBDIR
from repro.sim.parallel import default_cache_dir
from repro.workloads.arena import TRACE_SUBDIR

_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``"500M"``/``"2g"``/``"1048576"`` -> bytes (raises ValueError)."""
    match = re.fullmatch(r"\s*(\d+)\s*([kKmMgG]?)[bB]?\s*", str(text))
    if not match:
        raise ValueError(f"cannot parse size {text!r} (try 500M, 2G, 1024)")
    return int(match.group(1)) * _SIZE_SUFFIXES[match.group(2).lower()]


def format_size(num_bytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(num_bytes) < 1024 or unit == "GiB":
            return (
                f"{num_bytes:.0f} {unit}"
                if unit == "B"
                else f"{num_bytes:.1f} {unit}"
            )
        num_bytes /= 1024
    return f"{num_bytes:.1f} GiB"  # pragma: no cover - unreachable


@dataclass
class KindStats:
    """One kind of cached state (results / traces / jobs)."""

    kind: str
    count: int
    bytes: int


@dataclass
class CacheStats:
    directory: Path
    results: KindStats
    traces: KindStats
    jobs: KindStats

    @property
    def total_bytes(self) -> int:
        return self.results.bytes + self.traces.bytes + self.jobs.bytes

    def render(self) -> str:
        lines = [f"cache {self.directory}:"]
        for stats in (self.results, self.traces, self.jobs):
            noun = "entries" if stats.kind != "jobs" else "jobs"
            lines.append(
                f"  {stats.kind:<8} {stats.count:>6} {noun:<7} "
                f"{format_size(stats.bytes):>10}"
            )
        lines.append(f"  {'total':<8} {'':>6} {'':<7} "
                     f"{format_size(self.total_bytes):>10}")
        return "\n".join(lines)


def _dir_size(path: Path) -> int:
    return sum(p.stat().st_size for p in path.rglob("*") if p.is_file())


def _result_files(directory: Path) -> List[Path]:
    return sorted(p for p in directory.glob("*.json") if p.is_file())


def _trace_files(directory: Path) -> List[Path]:
    traces = directory / TRACE_SUBDIR
    if not traces.is_dir():
        return []
    return sorted(p for p in traces.glob("*.npz") if p.is_file())


def _job_dirs(directory: Path) -> List[Path]:
    jobs = directory / JOBS_SUBDIR
    if not jobs.is_dir():
        return []
    return sorted(p for p in jobs.iterdir() if p.is_dir())


def cache_stats(directory: Optional[Path] = None) -> CacheStats:
    """Count + size every kind of cached state under ``directory``."""
    directory = Path(directory) if directory else default_cache_dir()
    results = _result_files(directory)
    traces = _trace_files(directory)
    jobs = _job_dirs(directory)
    return CacheStats(
        directory=directory,
        results=KindStats(
            "results", len(results), sum(p.stat().st_size for p in results)
        ),
        traces=KindStats(
            "traces", len(traces), sum(p.stat().st_size for p in traces)
        ),
        jobs=KindStats("jobs", len(jobs), sum(_dir_size(p) for p in jobs)),
    )


@dataclass
class PruneReport:
    directory: Path
    max_bytes: int
    removed: List[str]
    freed_bytes: int
    remaining_bytes: int

    def render(self) -> str:
        lines = [
            f"pruned {len(self.removed)} entries "
            f"({format_size(self.freed_bytes)}) from {self.directory}; "
            f"{format_size(self.remaining_bytes)} remain "
            f"(budget {format_size(self.max_bytes)})"
        ]
        lines.extend(f"  removed {name}" for name in self.removed)
        return "\n".join(lines)


def prune_cache(
    max_bytes: int, directory: Optional[Path] = None
) -> PruneReport:
    """Evict oldest entries until the store fits ``max_bytes``.

    Eviction units are individual result files, individual trace arenas,
    and *whole job directories* (a journal without its manifest is
    useless), ordered by last-modified time across all three kinds —
    a plain LRU over recomputable state.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    directory = Path(directory) if directory else default_cache_dir()
    units: List[Tuple[float, int, Path, bool]] = []
    for path in _result_files(directory) + _trace_files(directory):
        stat = path.stat()
        units.append((stat.st_mtime, stat.st_size, path, False))
    for path in _job_dirs(directory):
        mtime = max(
            (p.stat().st_mtime for p in path.rglob("*") if p.is_file()),
            default=path.stat().st_mtime,
        )
        units.append((mtime, _dir_size(path), path, True))
    total = sum(size for _, size, _, _ in units)
    removed: List[str] = []
    freed = 0
    for _, size, path, is_dir in sorted(units, key=lambda u: u[0]):
        if total - freed <= max_bytes:
            break
        if is_dir:
            shutil.rmtree(path, ignore_errors=True)
        else:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                continue
        freed += size
        removed.append(str(path.relative_to(directory)))
    return PruneReport(
        directory=directory,
        max_bytes=max_bytes,
        removed=removed,
        freed_bytes=freed,
        remaining_bytes=total - freed,
    )


def clear_cache(
    directory: Optional[Path] = None,
    results: bool = True,
    traces: bool = True,
    jobs: bool = True,
) -> CacheStats:
    """Remove whole kinds of cached state; returns what was removed."""
    directory = Path(directory) if directory else default_cache_dir()
    stats = cache_stats(directory)
    if results:
        for path in _result_files(directory):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
    if traces:
        shutil.rmtree(directory / TRACE_SUBDIR, ignore_errors=True)
    if jobs:
        shutil.rmtree(directory / JOBS_SUBDIR, ignore_errors=True)
    return CacheStats(
        directory=directory,
        results=stats.results if results else KindStats("results", 0, 0),
        traces=stats.traces if traces else KindStats("traces", 0, 0),
        jobs=stats.jobs if jobs else KindStats("jobs", 0, 0),
    )
