"""A small synchronous client for ``repro serve`` (tests, scripts, CI).

Blocking socket + NDJSON; one connection can run several requests
sequentially (the server supports interleaving via ``id`` tags, but this
client keeps it simple: each call streams until its own terminal event).

    client = ServeClient(port=port)
    report = client.submit(cells, name="nightly")   # dict, see protocol
    client.close()

``submit``/``resume`` return the ``done`` payload's ``report`` dict —
feed it to :func:`repro.serve.protocol.report_from_dict` for a real
:class:`~repro.sim.parallel.SweepReport`. Failures raise
:class:`ServeError` with the server's machine-readable ``code``.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, Iterable, List, Optional

from repro.jobs.manager import cell_to_dict
from repro.serve.protocol import decode, encode
from repro.sim.parallel import SweepCell


class ServeError(RuntimeError):
    """A request the server answered with an ``error`` event."""

    def __init__(self, code: str, message: str, event: Optional[Dict] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.event = event or {}


class ServeClient:
    """Blocking NDJSON client over one TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 300.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fh = self._sock.makefile("rwb")

    # -- plumbing -------------------------------------------------------
    def send(self, message: Dict) -> None:
        self._fh.write(encode(message))
        self._fh.flush()

    def recv(self) -> Dict:
        line = self._fh.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- simple ops -----------------------------------------------------
    def hello(self) -> Dict:
        self.send({"op": "hello"})
        return self._expect("hello")

    def ping(self) -> Dict:
        self.send({"op": "ping"})
        return self._expect("pong")

    def stats(self) -> Dict:
        self.send({"op": "stats"})
        return self._expect("stats")["stats"]

    def bye(self) -> None:
        self.send({"op": "bye"})
        try:
            self._expect("bye")
        except (ConnectionError, ServeError):
            pass
        self.close()

    def _expect(self, event: str) -> Dict:
        message = self.recv()
        if message.get("event") == "error":
            raise ServeError(
                message.get("code", "unknown"),
                message.get("error", ""),
                message,
            )
        if message.get("event") != event:
            raise ServeError(
                "protocol",
                f"expected {event!r}, got {message.get('event')!r}",
                message,
            )
        return message

    # -- jobs -----------------------------------------------------------
    def submit(
        self,
        cells: Iterable[SweepCell],
        name: str = "",
        use_cache: bool = True,
        on_cell: Optional[Callable[[Dict], None]] = None,
        on_ack: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        """Run a grid of cells; returns the finished report dict.

        ``on_cell`` (if given) sees every streamed ``cell`` event's
        ``data`` payload the moment the server emits it.
        """
        message = {
            "op": "submit",
            "cells": [cell_to_dict(cell) for cell in cells],
            "use_cache": use_cache,
        }
        if name:
            message["name"] = name
        self.send(message)
        return self._stream_job(on_cell, on_ack)

    def resume(
        self,
        ref: str,
        use_cache: bool = True,
        on_cell: Optional[Callable[[Dict], None]] = None,
        on_ack: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        """Finish a journaled job by name or id; returns the report dict."""
        self.send({"op": "resume", "ref": ref, "use_cache": use_cache})
        return self._stream_job(on_cell, on_ack)

    def _stream_job(
        self,
        on_cell: Optional[Callable[[Dict], None]],
        on_ack: Optional[Callable[[Dict], None]],
    ) -> Dict:
        cells: List[Dict] = []
        while True:
            message = self.recv()
            event = message.get("event")
            if event == "ack":
                if on_ack is not None:
                    on_ack(message)
            elif event == "cell":
                cells.append(message["data"])
                if on_cell is not None:
                    on_cell(message["data"])
            elif event == "done":
                report = message["report"]
                report["streamed_cells"] = cells
                return report
            elif event == "error":
                raise ServeError(
                    message.get("code", "unknown"),
                    message.get("error", ""),
                    message,
                )
            # other events (stats/pong from interleaved ops) are skipped
