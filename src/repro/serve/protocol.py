"""Wire format for ``repro serve``: NDJSON messages + report serialization.

One message per line, each a JSON object. Client -> server messages carry
an ``op`` field (``hello`` / ``ping`` / ``stats`` / ``submit`` /
``resume`` / ``bye``) and may carry a free-form ``id`` the server echoes
back on every event it emits for that request, so one connection can
interleave several in-flight jobs. Server -> client messages carry an
``event`` field:

* ``hello`` — protocol + package version handshake.
* ``ack`` — a submit/resume was admitted: job id, total cells, how many
  the journal already covers.
* ``cell`` — one completed cell, streamed the moment it finishes
  (journal replays and cache hits included), with full telemetry.
* ``done`` — the finished :class:`~repro.sim.parallel.SweepReport`.
* ``error`` — the request failed; ``code`` is machine-readable
  (``rate-limited`` / ``queue-full`` / ``too-many-jobs`` / ``draining``
  / ``bad-request`` / ``job-failed``).
* ``stats`` / ``pong`` / ``bye`` — replies to the matching ops.

Everything is built from the serializers the job layer already has
(:func:`repro.jobs.manager.cell_to_dict` and ``SimResult.to_dict``), so
a report round-trips the wire bit-identically — the serve soak test
asserts ``asdict`` equality against an in-process ``run_sweep``.
"""

from __future__ import annotations

import json
from typing import Dict, Union

from repro.jobs.manager import cell_from_dict, cell_to_dict
from repro.sim.parallel import CellResult, SweepReport
from repro.sim.results import SimResult

#: Bump when the message layout changes incompatibly.
PROTOCOL_VERSION = 1

#: Machine-readable error codes the server emits.
ERROR_CODES = (
    "bad-request",
    "rate-limited",
    "queue-full",
    "too-many-jobs",
    "draining",
    "job-failed",
)


def encode(message: Dict) -> bytes:
    """One NDJSON line (newline-terminated, compact, key-sorted)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: Union[bytes, str]) -> Dict:
    """Parse one NDJSON line into a message dict (raises ValueError)."""
    data = json.loads(line)
    if not isinstance(data, dict):
        raise ValueError("protocol messages must be JSON objects")
    return data


# ----------------------------------------------------------------------
# Report serialization (wire <-> dataclasses, bit-exact round trip)
# ----------------------------------------------------------------------
def cell_result_to_dict(cell_result: CellResult) -> Dict:
    """One streamed cell: the full cell spec, result, and telemetry."""
    return {
        "cell": cell_to_dict(cell_result.cell),
        "result": cell_result.result.to_dict(),
        "wall_seconds": cell_result.wall_seconds,
        "heap_events": cell_result.heap_events,
        "events_per_sec": cell_result.events_per_sec,
        "from_cache": cell_result.from_cache,
        "trace_build_seconds": cell_result.trace_build_seconds,
        "trace_source": cell_result.trace_source,
        "engine_used": cell_result.engine_used,
    }


def cell_result_from_dict(data: Dict) -> CellResult:
    return CellResult(
        cell=cell_from_dict(data["cell"]),
        result=SimResult.from_dict(data["result"]),
        wall_seconds=float(data.get("wall_seconds", 0.0)),
        heap_events=int(data.get("heap_events", 0)),
        events_per_sec=float(data.get("events_per_sec", 0.0)),
        from_cache=bool(data.get("from_cache", False)),
        trace_build_seconds=float(data.get("trace_build_seconds", 0.0)),
        trace_source=str(data.get("trace_source", "")),
        engine_used=str(data.get("engine_used", "")),
    )


def report_to_dict(report: SweepReport) -> Dict:
    """A finished sweep as JSON-safe primitives (``done`` payload)."""
    return {
        "cells": [cell_result_to_dict(c) for c in report.cells],
        "max_workers": report.max_workers,
        "elapsed_seconds": report.elapsed_seconds,
        "workloads_unique": report.workloads_unique,
        "workloads_built": report.workloads_built,
        "parent_trace_seconds": report.parent_trace_seconds,
    }


def report_from_dict(data: Dict) -> SweepReport:
    return SweepReport(
        cells=[cell_result_from_dict(c) for c in data.get("cells", [])],
        max_workers=int(data.get("max_workers", 1)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        workloads_unique=int(data.get("workloads_unique", 0)),
        workloads_built=int(data.get("workloads_built", 0)),
        parent_trace_seconds=float(data.get("parent_trace_seconds", 0.0)),
    )


# ----------------------------------------------------------------------
# Metrics rendering (the HTTP ``GET /metrics`` body)
# ----------------------------------------------------------------------
def render_metrics(stats: Dict[str, float], prefix: str = "repro_serve") -> str:
    """Prometheus-style exposition: one ``<prefix>_<key> <value>`` line
    per numeric stat, sorted by key."""
    lines = []
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            continue
        lines.append(f"{prefix}_{key} {value}")
    return "\n".join(lines) + "\n"
