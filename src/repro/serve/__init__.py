"""``repro serve``: a concurrent-client front-end over the job layer.

Public surface:

* :class:`ServeConfig`, :class:`ServeServer`, :class:`ServerThread`,
  :func:`run_server`, :func:`run_stdio` — the asyncio server
  (:mod:`repro.serve.server`).
* :class:`ServeClient`, :class:`ServeError` — the blocking client
  (:mod:`repro.serve.client`).
* :func:`report_to_dict` / :func:`report_from_dict` and friends — the
  NDJSON wire format (:mod:`repro.serve.protocol`).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    cell_result_from_dict,
    cell_result_to_dict,
    decode,
    encode,
    render_metrics,
    report_from_dict,
    report_to_dict,
)
from repro.serve.server import (
    ServeConfig,
    ServeServer,
    ServeStats,
    ServerThread,
    run_server,
    run_stdio,
)
