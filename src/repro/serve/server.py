"""The ``repro serve`` front-end: many clients, one simulator process.

An asyncio server speaking the NDJSON protocol of
:mod:`repro.serve.protocol` over TCP (and optionally stdio), layered on
the resumable job engine (:func:`repro.jobs.submit_job`). The design in
one breath: admission control in the event loop, simulation on worker
threads, and *all shared state owned by the loop thread*.

* **Exactly-once compute.** Every admitted job atomically claims the
  content keys of all its cells in the :class:`_InFlight` registry; a job
  overlapping a running one waits until the overlap clears. By then the
  first job's results sit in the shared :class:`ResultCache`, so the
  second job's overlap is served as cache hits — two clients sweeping
  overlapping grids concurrently compute each unique cell exactly once.
* **Backpressure.** ``job_slots`` bounds jobs simulating concurrently;
  up to ``max_queue`` more may wait for a slot, beyond which submits are
  rejected with ``queue-full``. Each connection gets a token-bucket rate
  limit (``rate``/``burst`` messages per second) and at most
  ``max_client_jobs`` in-flight jobs (``too-many-jobs``).
* **Incremental streaming.** The engine's ``on_cell`` hook fires for
  every completed cell — journal replays, cache hits, fresh executions —
  and is marshalled from the worker thread into the event loop with
  ``call_soon_threadsafe``, so clients see ``cell`` events the moment
  cells finish, all of them strictly before ``done``.
* **Graceful drain.** SIGTERM/SIGINT (or an explicit ``drain()``) stops
  accepting work: new submits get ``draining``, running jobs finish and
  stream their results, sessions get ``bye``, and shutdown releases the
  idle shared-memory segments and the persistent worker pool.
* **Metrics.** A plain HTTP ``GET /metrics`` on the same port (the
  server sniffs the first line) returns Prometheus-style counters:
  queue depth, cells served, cache hit-rate, simulated events/sec,
  segment-pool occupancy.

Every job runs with the same ``workers`` pool width, so the persistent
process pool is grown once and never thrashed by interleaved jobs.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set

from repro import __version__
from repro.jobs import create_job, ephemeral_job, open_job, submit_job
from repro.jobs.manager import cell_from_dict
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    cell_result_to_dict,
    decode,
    encode,
    render_metrics,
    report_to_dict,
)
from repro.sim.parallel import CellResult, ResultCache, shutdown_worker_pool
from repro.workloads.arena import (
    release_idle_segments,
    segment_pool_stats,
    set_idle_segment_cap,
)


@dataclass
class ServeConfig:
    """Knobs for one server instance (all admission-control bounds)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick (the bound port is reported)
    #: Process-pool width used for *every* job (one fixed size, no thrash).
    workers: int = 1
    #: Jobs simulating concurrently; more wait for a slot.
    job_slots: int = 2
    #: Jobs allowed to wait for a slot before submits get ``queue-full``.
    max_queue: int = 8
    #: Token-bucket refill in messages/second per connection (0: off).
    rate: float = 50.0
    #: Token-bucket capacity (burst allowance) per connection.
    burst: int = 20
    #: In-flight jobs per connection before ``too-many-jobs``.
    max_client_jobs: int = 4
    #: Idle shared-memory segments kept mapped between jobs.
    idle_segments: int = 4
    use_cache: bool = True
    cache_dir: Optional[Path] = None


@dataclass
class ServeStats:
    """Counters for ``stats``/``/metrics``. Only ever mutated from the
    event-loop thread (cell events are marshalled there), so plain ints
    suffice — no locks."""

    started: float = field(default_factory=time.monotonic)
    clients_connected: int = 0
    clients_total: int = 0
    jobs_running: int = 0
    jobs_queued: int = 0
    jobs_accepted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_rejected: int = 0
    rate_limited: int = 0
    cells_served: int = 0
    cells_from_cache: int = 0
    heap_events: int = 0
    sim_seconds: float = 0.0

    def note_cell(self, cell_result: CellResult) -> None:
        self.cells_served += 1
        if cell_result.from_cache:
            self.cells_from_cache += 1
        else:
            self.heap_events += cell_result.heap_events
            self.sim_seconds += cell_result.wall_seconds

    def snapshot(self) -> Dict:
        served = self.cells_served
        pool = segment_pool_stats()
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "clients_connected": self.clients_connected,
            "clients_total": self.clients_total,
            "jobs_running": self.jobs_running,
            "jobs_queued": self.jobs_queued,
            "jobs_accepted": self.jobs_accepted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
            "rate_limited": self.rate_limited,
            "cells_served": served,
            "cells_from_cache": self.cells_from_cache,
            "cells_executed": served - self.cells_from_cache,
            "cache_hit_rate": (
                self.cells_from_cache / served if served else 0.0
            ),
            "heap_events": self.heap_events,
            "events_per_sec": (
                self.heap_events / self.sim_seconds
                if self.sim_seconds > 0
                else 0.0
            ),
            "segments_pooled": pool["pooled"],
            "segments_active": pool["active"],
            "segments_idle": pool["idle"],
        }


class _InFlight:
    """Cell content keys currently being computed by some admitted job.

    ``claim`` is atomic over a whole job's key set: it waits until *none*
    of the keys are held, then takes them all. Overlapping jobs therefore
    serialize (the later one finds the overlap already cached); disjoint
    jobs run concurrently.
    """

    def __init__(self) -> None:
        self._keys: Set[str] = set()
        self._cond = asyncio.Condition()

    async def claim(self, keys: Set[str]) -> None:
        async with self._cond:
            await self._cond.wait_for(lambda: self._keys.isdisjoint(keys))
            self._keys.update(keys)

    async def release(self, keys: Set[str]) -> None:
        async with self._cond:
            self._keys.difference_update(keys)
            self._cond.notify_all()


class _TokenBucket:
    """Per-connection message rate limit (``rate``/s refill, ``burst``
    capacity). ``rate <= 0`` disables limiting."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self.tokens = float(self.burst)
        self.stamp = time.monotonic()

    def allow(self) -> bool:
        if self.rate <= 0:
            return True
        now = time.monotonic()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ServeServer:
    """One serving process: TCP listener + admission control + job runner."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.stats = ServeStats()
        self.cache = ResultCache(
            self.config.cache_dir,
            persist=None if self.config.use_cache else False,
        )
        self._inflight = _InFlight()
        self._slots = asyncio.Semaphore(max(1, self.config.job_slots))
        self._draining = False
        self._drained = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Set[asyncio.Task] = set()
        self._jobs: Set[asyncio.Task] = set()
        self._prev_idle_cap: Optional[int] = None
        self.port: int = self.config.port

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "ServeServer":
        self._prev_idle_cap = set_idle_segment_cap(
            max(0, self.config.idle_segments)
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain. No-op off the main thread
        (the test ``ServerThread``) or on loops without signal support."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )
            except (NotImplementedError, ValueError, RuntimeError):
                return

    async def drain(self) -> None:
        """Stop accepting, let running jobs finish, say bye, release."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._jobs:
            await asyncio.gather(*self._jobs, return_exceptions=True)
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        self._drained.set()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def shutdown(self) -> None:
        """Post-drain cleanup: idle segments, pool, listener socket."""
        await self.drain()
        if self._server is not None:
            await self._server.wait_closed()
        release_idle_segments()
        if self._prev_idle_cap is not None:
            set_idle_segment_cap(self._prev_idle_cap)
            self._prev_idle_cap = None
        await asyncio.to_thread(shutdown_worker_pool)

    # -- connection handling --------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
        try:
            try:
                first = await reader.readline()
            except (ConnectionError, OSError):
                return
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._serve_http(first, reader, writer)
                return
            await self._session(first, reader, writer)
        except asyncio.CancelledError:
            # Drain cancelled the session: part politely.
            await self._safe_send(writer, {"event": "bye", "reason": "drain"})
        finally:
            if task is not None:
                self._sessions.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _safe_send(
        self, writer: asyncio.StreamWriter, message: Dict
    ) -> None:
        try:
            writer.write(encode(message))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.0 responder for ``GET /metrics`` (and friends),
        sharing the NDJSON port — the first line tells them apart."""
        while True:  # drain request headers
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        parts = first.decode("latin-1").split()
        path = parts[1] if len(parts) > 1 else "/"
        if path in ("/metrics", "/", "/stats"):
            body = render_metrics(self.stats.snapshot())
            status = "200 OK"
        else:
            body = "not found\n"
            status = "404 Not Found"
        payload = body.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                "Content-Type: text/plain; version=0.0.4\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        if not first.startswith(b"HEAD"):
            writer.write(payload)
        await writer.drain()

    async def _session(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.stats.clients_connected += 1
        self.stats.clients_total += 1
        bucket = _TokenBucket(self.config.rate, self.config.burst)
        send_lock = asyncio.Lock()
        client_jobs = {"count": 0}

        async def send(message: Dict) -> None:
            async with send_lock:
                await self._safe_send(writer, message)

        try:
            line: Optional[bytes] = first
            while line:
                done = await self._dispatch(line, send, bucket, client_jobs)
                if done:
                    break
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
            # Let this connection's in-flight jobs finish streaming
            # before the connection closes under them.
            while client_jobs["count"] > 0:
                await asyncio.sleep(0.02)
        finally:
            self.stats.clients_connected -= 1

    async def _dispatch(
        self,
        line: bytes,
        send,
        bucket: _TokenBucket,
        client_jobs: Dict[str, int],
    ) -> bool:
        """Handle one message; returns True when the session should end."""
        if not line.strip():
            return False
        try:
            message = decode(line)
        except ValueError as exc:
            await send(
                {"event": "error", "code": "bad-request", "error": str(exc)}
            )
            return False
        op = message.get("op")
        req_id = message.get("id")

        def tag(payload: Dict) -> Dict:
            if req_id is not None:
                payload["id"] = req_id
            return payload

        if not bucket.allow():
            self.stats.rate_limited += 1
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "rate-limited",
                        "error": (
                            f"client exceeded {self.config.rate:g} "
                            "messages/sec; slow down and retry"
                        ),
                    }
                )
            )
            return False

        if op == "hello":
            await send(
                tag(
                    {
                        "event": "hello",
                        "protocol": PROTOCOL_VERSION,
                        "version": __version__,
                        "workers": self.config.workers,
                        "job_slots": self.config.job_slots,
                    }
                )
            )
        elif op == "ping":
            await send(tag({"event": "pong"}))
        elif op == "stats":
            await send(tag({"event": "stats", "stats": self.stats.snapshot()}))
        elif op in ("submit", "resume"):
            await self._admit_job(message, send, tag, client_jobs)
        elif op == "bye":
            await send(tag({"event": "bye"}))
            return True
        else:
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "bad-request",
                        "error": f"unknown op {op!r}",
                    }
                )
            )
        return False

    # -- job admission + execution --------------------------------------
    async def _admit_job(
        self, message: Dict, send, tag, client_jobs: Dict[str, int]
    ) -> None:
        if self._draining:
            self.stats.jobs_rejected += 1
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "draining",
                        "error": "server is draining; not accepting jobs",
                    }
                )
            )
            return
        if client_jobs["count"] >= self.config.max_client_jobs:
            self.stats.jobs_rejected += 1
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "too-many-jobs",
                        "error": (
                            f"connection already has {client_jobs['count']} "
                            "jobs in flight"
                        ),
                    }
                )
            )
            return
        if self.stats.jobs_queued >= self.config.max_queue:
            self.stats.jobs_rejected += 1
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "queue-full",
                        "error": (
                            f"{self.stats.jobs_queued} jobs already waiting "
                            f"(max_queue={self.config.max_queue})"
                        ),
                    }
                )
            )
            return

        try:
            job = self._build_job(message)
        except (KeyError, TypeError, ValueError) as exc:
            self.stats.jobs_rejected += 1
            await send(
                tag(
                    {
                        "event": "error",
                        "code": "bad-request",
                        "error": f"cannot build job: {exc}",
                    }
                )
            )
            return

        self.stats.jobs_accepted += 1
        self.stats.jobs_queued += 1
        client_jobs["count"] += 1
        use_cache = bool(message.get("use_cache", True)) and (
            self.config.use_cache
        )
        task = asyncio.create_task(
            self._run_job(job, use_cache, send, tag, client_jobs)
        )
        self._jobs.add(task)
        task.add_done_callback(self._jobs.discard)

    def _build_job(self, message: Dict):
        if message.get("op") == "resume":
            ref = message.get("ref")
            if not isinstance(ref, str) or not ref:
                raise ValueError("resume needs a job 'ref' (name or id)")
            return open_job(ref, cache_dir=self.config.cache_dir)
        raw_cells = message.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise ValueError("submit needs a non-empty 'cells' list")
        cells = [cell_from_dict(data) for data in raw_cells]
        name = message.get("name") or ""
        if name:
            return create_job(name, cells, cache_dir=self.config.cache_dir)
        return ephemeral_job(cells)

    async def _run_job(
        self, job, use_cache: bool, send, tag, client_jobs: Dict[str, int]
    ) -> None:
        loop = asyncio.get_running_loop()
        keys = {cell.key() for cell in job.cells}
        queued = True  # jobs_queued was incremented at admission
        try:
            async with self._slots:
                await self._inflight.claim(keys)
                self.stats.jobs_queued -= 1
                queued = False
                self.stats.jobs_running += 1
                try:
                    await send(
                        tag(
                            {
                                "event": "ack",
                                "job_id": job.job_id,
                                "name": job.name,
                                "total_cells": len(job.cells),
                                "journaled_cells": job.completed_cells(),
                            }
                        )
                    )
                    cell_queue: asyncio.Queue = asyncio.Queue()

                    def on_cell(cell_result: CellResult) -> None:
                        loop.call_soon_threadsafe(
                            cell_queue.put_nowait, cell_result
                        )

                    worker = asyncio.ensure_future(
                        asyncio.to_thread(
                            submit_job,
                            job,
                            max_workers=self.config.workers,
                            cache=self.cache,
                            use_cache=use_cache,
                            on_cell=on_cell,
                        )
                    )
                    # Stream cells as they land. call_soon_threadsafe is
                    # FIFO per thread, so every cell callback scheduled by
                    # the worker runs before its completion wakes us —
                    # by the time `worker` is done the queue holds every
                    # remaining cell, drained below before `done` goes out.
                    while True:
                        getter = asyncio.ensure_future(cell_queue.get())
                        await asyncio.wait(
                            {getter, worker},
                            return_when=asyncio.FIRST_COMPLETED,
                        )
                        if getter.done():
                            await self._send_cell(
                                send, tag, job, getter.result()
                            )
                            continue
                        getter.cancel()
                        while not cell_queue.empty():
                            await self._send_cell(
                                send, tag, job, cell_queue.get_nowait()
                            )
                        break
                    report = await worker  # re-raises job failures
                    self.stats.jobs_completed += 1
                    await send(
                        tag(
                            {
                                "event": "done",
                                "job_id": job.job_id,
                                "report": report_to_dict(report),
                            }
                        )
                    )
                except Exception as exc:
                    self.stats.jobs_failed += 1
                    await send(
                        tag(
                            {
                                "event": "error",
                                "code": "job-failed",
                                "job_id": job.job_id,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                        )
                    )
                finally:
                    self.stats.jobs_running -= 1
                    await self._inflight.release(keys)
        finally:
            if queued:
                self.stats.jobs_queued -= 1
            client_jobs["count"] -= 1

    async def _send_cell(self, send, tag, job, cell_result: CellResult):
        self.stats.note_cell(cell_result)
        await send(
            tag(
                {
                    "event": "cell",
                    "job_id": job.job_id,
                    "data": cell_result_to_dict(cell_result),
                }
            )
        )


# ----------------------------------------------------------------------
# Entrypoints: blocking TCP run, stdio session, background test thread
# ----------------------------------------------------------------------
async def run_server(
    config: Optional[ServeConfig] = None,
    port_file: Optional[Path] = None,
    log=print,
) -> int:
    """Start a TCP server and block until it is drained (SIGTERM/SIGINT)."""
    server = ServeServer(config)
    await server.start()
    server.install_signal_handlers()
    if port_file is not None:
        Path(port_file).write_text(f"{server.port}\n")
    if log is not None:
        log(
            f"repro serve listening on {server.config.host}:{server.port} "
            f"(workers={server.config.workers}, "
            f"job_slots={server.config.job_slots})",
        )
    await server.wait_drained()
    await server.shutdown()
    if log is not None:
        log("repro serve drained cleanly")
    return 0


async def run_stdio(config: Optional[ServeConfig] = None) -> int:
    """One NDJSON session over stdin/stdout (no sockets, no signals)."""
    server = ServeServer(config)
    server._prev_idle_cap = set_idle_segment_cap(
        max(0, server.config.idle_segments)
    )
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )
    transport, proto = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin, sys.stdout
    )
    writer = asyncio.StreamWriter(transport, proto, reader, loop)
    try:
        first = await reader.readline()
        if first:
            await server._session(first, reader, writer)
    finally:
        await server.shutdown()
    return 0


class ServerThread:
    """A ServeServer on a daemon thread — the test/embedding harness.

    ``start()`` blocks until the port is bound; ``stop()`` requests a
    drain and joins. All asyncio state lives on the background thread's
    loop; the owning thread only reads ``port`` and ``server.stats``
    after ``stop()``.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.server = ServeServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.wait_drained()
        await self.server.shutdown()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread did not come up in 30s")
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error!r}")
        return self

    def request_drain(self) -> None:
        """Begin a graceful drain without waiting (SIGTERM equivalent)."""
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(self.server.drain(), self._loop)

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("serve thread did not exit after drain")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
