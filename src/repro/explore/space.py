"""The design space ``repro explore`` searches over.

A :class:`ConfigPoint` is one candidate DRAM-cache organization: a design
family (which pins associativity and predictor — ``alloy-2way`` is the
set-assoc TAD variant, ``alloy-sam``/``alloy-map-i``/… pick the predictor),
plus the config axes the paper's sensitivity studies touch — stacked-DRAM
page policy, burst length (TAD transfer size on the stacked bus), timing
preset, nominal capacity and the capacity-scaling factor. Points expand to
:class:`~repro.sim.parallel.SweepCell`\\ s over the space's benchmarks; the
content-keyed cache and job journals make re-evaluating a point free.

The default space is deliberately larger than any paper figure grid
(hundreds of configs) — the point of the job layer is that walking it is
checkpointed and resumable, in the spirit of Babaie et al.'s DSE study
(PAPERS.md), which had to hand-prune its gem5 config space because cells
were expensive and runs were not resumable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dram.timings import STACKED_DRAM, DramTimings
from repro.sim.config import SystemConfig
from repro.sim.parallel import SweepCell
from repro.units import MB

#: Stacked-DRAM timing presets (t_act/t_cas in CPU cycles). ``paper`` is
#: Table 2; ``fast``/``slow`` bracket it the way emerging-memory DSE
#: studies sweep array timings.
STACKED_TIMING_PRESETS: Dict[str, Tuple[int, int]] = {
    "paper": (18, 18),
    "fast": (12, 12),
    "slow": (24, 24),
}

#: Design families covering the associativity x predictor axes: direct-
#: mapped Alloy with each predictor family, the 2-way set-assoc TAD
#: variant, and the tags-in-SRAM / tags-in-DRAM organizations.
DEFAULT_DESIGNS: Tuple[str, ...] = (
    "alloy-map-i",
    "alloy-map-g",
    "alloy-sam",
    "alloy-missmap",
    "alloy-2way",
    "lh-cache",
    "sram-tag",
)

DEFAULT_BENCHMARKS: Tuple[str, ...] = ("mcf_r", "milc_r")


@dataclass(frozen=True)
class ConfigPoint:
    """One candidate organization (everything but the benchmark)."""

    design: str
    page_policy: str = "open"
    #: Stacked-bus cycles per 64 B line (4 = paper, 8 = narrow/slow bus,
    #: the Section 6.5 burst-length ablation axis).
    line_burst: int = 4
    cache_mb: int = 256
    timing: str = "paper"
    capacity_scale: int = 256

    @property
    def label(self) -> str:
        """Stable human-readable id used in reports and job names."""
        return (
            f"{self.design}/{self.page_policy}/bl{self.line_burst}"
            f"/{self.cache_mb}MB/{self.timing}/cs{self.capacity_scale}"
        )

    def stacked_timings(self) -> DramTimings:
        t_act, t_cas = STACKED_TIMING_PRESETS[self.timing]
        return STACKED_DRAM.scaled(
            t_act=t_act, t_cas=t_cas, line_burst=self.line_burst
        )

    def config(self, base: Optional[SystemConfig] = None) -> SystemConfig:
        """The full :class:`SystemConfig` this point simulates."""
        base = base or SystemConfig()
        return replace(
            base,
            stacked=self.stacked_timings(),
            stacked_page_policy=self.page_policy,
            cache_size_bytes=self.cache_mb * MB,
            capacity_scale=self.capacity_scale,
        )

    def cell(
        self,
        benchmark: str,
        reads_per_core: int,
        base: Optional[SystemConfig] = None,
        warmup_fraction: float = 0.25,
        seed: int = 1,
    ) -> SweepCell:
        return SweepCell(
            design=self.design,
            benchmark=benchmark,
            config=self.config(base),
            reads_per_core=reads_per_core,
            warmup_fraction=warmup_fraction,
            seed=seed,
        )


@dataclass(frozen=True)
class ExploreSpace:
    """Cross product of config axes x workloads.

    The workload axis accepts every name :func:`~repro.workloads.spec.
    resolve_workload` does — catalog benchmarks, heterogeneous mixes
    (``mix1``..``mix7``) and ``trace:`` specs — so DSE runs over mixes
    and ingested traces exactly like rate-mode benchmarks.
    """

    designs: Tuple[str, ...] = DEFAULT_DESIGNS
    benchmarks: Tuple[str, ...] = DEFAULT_BENCHMARKS
    page_policies: Tuple[str, ...] = ("open", "closed")
    line_bursts: Tuple[int, ...] = (4, 8)
    cache_mbs: Tuple[int, ...] = (128, 256)
    timings: Tuple[str, ...] = ("paper", "fast", "slow")
    capacity_scales: Tuple[int, ...] = (256,)

    def __post_init__(self) -> None:
        from repro.workloads.spec import resolve_workload

        unknown = [t for t in self.timings if t not in STACKED_TIMING_PRESETS]
        if unknown:
            raise ValueError(
                f"unknown timing presets {unknown}; "
                f"known: {sorted(STACKED_TIMING_PRESETS)}"
            )
        # Canonicalize the workload axis up front (raises KeyError on an
        # unknown name), so cell keys and job names are stable however the
        # space was spelled.
        resolved = tuple(resolve_workload(b) for b in self.benchmarks)
        if resolved != self.benchmarks:
            object.__setattr__(self, "benchmarks", resolved)

    def points(self) -> List[ConfigPoint]:
        """Every config point, in deterministic axis order."""
        return [
            ConfigPoint(
                design=design,
                page_policy=policy,
                line_burst=burst,
                cache_mb=cache_mb,
                timing=timing,
                capacity_scale=scale,
            )
            for design, policy, burst, cache_mb, timing, scale in (
                itertools.product(
                    self.designs,
                    self.page_policies,
                    self.line_bursts,
                    self.cache_mbs,
                    self.timings,
                    self.capacity_scales,
                )
            )
        ]

    @property
    def num_points(self) -> int:
        return (
            len(self.designs)
            * len(self.page_policies)
            * len(self.line_bursts)
            * len(self.cache_mbs)
            * len(self.timings)
            * len(self.capacity_scales)
        )

    @property
    def num_cells(self) -> int:
        """Size of the full space in sweep cells (points x benchmarks)."""
        return self.num_points * len(self.benchmarks)


def cells_for(
    points: Sequence[ConfigPoint],
    benchmarks: Sequence[str],
    reads_per_core: int,
    base: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
    seed: int = 1,
) -> List[SweepCell]:
    """The sweep grid for a set of points at one trace length."""
    return [
        point.cell(
            benchmark,
            reads_per_core,
            base=base,
            warmup_fraction=warmup_fraction,
            seed=seed,
        )
        for point in points
        for benchmark in benchmarks
    ]
