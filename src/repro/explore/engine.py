"""Search strategies and Pareto reporting for ``repro explore``.

Three strategies over an :class:`~repro.explore.space.ExploreSpace`:

* ``grid`` — evaluate every config point at full fidelity (one job).
* ``random`` — evaluate a seeded random sample of points (one job).
* ``halving`` — successive halving: evaluate *all* points at a short
  trace length, kill dominated configs, multiply the trace length by
  ``eta`` and repeat with the survivors. Each round is a **named,
  journaled job** (``<name>-r<k>``), so a killed exploration resumes:
  completed rounds replay from their journals in milliseconds and the
  interrupted round continues from its last checkpointed cell.

Every point is scored on four objectives (benchmark-averaged):

* ``latency`` — mean demand-read latency in cycles (minimize);
* ``hit_rate`` — demand-read DRAM-cache hit rate (maximize);
* ``bandwidth`` — stacked-bus utilization, the LH-Cache failure mode the
  paper centers on, treated as pressure/cost (minimize);
* ``ed2`` — energy·delay²: total DRAM access energy (Section 5.6 model)
  times per-core cycles squared, the standard low-power figure of merit
  weighted toward performance (minimize).

The report carries every evaluated point (with the fidelity it was last
evaluated at) plus the Pareto frontier — the set of configs no other
config beats on *all* objectives at once.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.space import ConfigPoint, ExploreSpace, cells_for
from repro.jobs import create_job, submit_job
from repro.sim.config import SystemConfig
from repro.sim.parallel import ResultCache, SweepReport

STRATEGIES = ("grid", "random", "halving")

#: Bump when the explore report payload layout changes.
EXPLORE_SCHEMA = 1


@dataclass
class PointMetrics:
    """One config point's benchmark-averaged objectives."""

    point: ConfigPoint
    reads_per_core: int
    round_index: int
    latency: float
    hit_rate: float
    bandwidth: float
    ed2: float
    cycles: float

    def objectives(self) -> Tuple[float, float, float, float]:
        """All-minimized objective vector (hit rate negated)."""
        return (self.latency, -self.hit_rate, self.bandwidth, self.ed2)

    def to_dict(self) -> Dict:
        return {
            "point": self.point.label,
            "design": self.point.design,
            "page_policy": self.point.page_policy,
            "line_burst": self.point.line_burst,
            "cache_mb": self.point.cache_mb,
            "timing": self.point.timing,
            "capacity_scale": self.point.capacity_scale,
            "reads_per_core": self.reads_per_core,
            "round": self.round_index,
            "latency": self.latency,
            "hit_rate": self.hit_rate,
            "bandwidth": self.bandwidth,
            "ed2": self.ed2,
            "cycles": self.cycles,
        }


def dominates(a: PointMetrics, b: PointMetrics) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere."""
    ao, bo = a.objectives(), b.objectives()
    return all(x <= y for x, y in zip(ao, bo)) and any(
        x < y for x, y in zip(ao, bo)
    )


def pareto_front(metrics: Sequence[PointMetrics]) -> List[PointMetrics]:
    """The non-dominated subset, in input order."""
    return [
        m
        for m in metrics
        if not any(dominates(other, m) for other in metrics if other is not m)
    ]


def _domination_counts(metrics: Sequence[PointMetrics]) -> Dict[str, int]:
    """point label -> number of points that dominate it (0 = frontier)."""
    return {
        m.point.label: sum(
            1 for other in metrics if other is not m and dominates(other, m)
        )
        for m in metrics
    }


def select_survivors(
    metrics: Sequence[PointMetrics], keep: int
) -> List[PointMetrics]:
    """The ``keep`` least-dominated points (early-kill of dominated configs).

    Primary key: domination count (frontier members first). Tie-break: the
    sum of per-objective ranks, then the point label — fully deterministic,
    so a resumed exploration reselects identical survivors and lands in
    identical (content-keyed) round jobs.
    """
    counts = _domination_counts(metrics)
    rank_sum: Dict[str, int] = {m.point.label: 0 for m in metrics}
    for axis in range(4):
        ordered = sorted(
            metrics, key=lambda m: (m.objectives()[axis], m.point.label)
        )
        for rank, m in enumerate(ordered):
            rank_sum[m.point.label] += rank
    ordered = sorted(
        metrics,
        key=lambda m: (
            counts[m.point.label],
            rank_sum[m.point.label],
            m.point.label,
        ),
    )
    return ordered[: max(1, keep)]


@dataclass
class RoundSummary:
    index: int
    reads_per_core: int
    points: int
    cells: int
    frontier: int
    cache_hits: int
    elapsed_seconds: float
    #: Engine -> cells it produced this round ("unknown" for cache entries
    #: persisted before engines were recorded). With engine=auto the whole
    #: default space should land on "batch" — interpreter entries here mean
    #: a config fell outside the batch envelope.
    engine_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "round": self.index,
            "reads_per_core": self.reads_per_core,
            "points": self.points,
            "cells": self.cells,
            "frontier": self.frontier,
            "cache_hits": self.cache_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "engine_counts": dict(self.engine_counts),
        }


@dataclass
class ExploreReport:
    """Everything one exploration learned."""

    name: str
    strategy: str
    space_points: int
    space_cells: int
    benchmarks: Tuple[str, ...]
    rounds: List[RoundSummary]
    #: Final-fidelity metrics for the points still alive at the end.
    evaluated: List[PointMetrics]
    #: Non-dominated subset of ``evaluated``.
    frontier: List[PointMetrics]
    #: Last metrics of every point killed along the way (halving only).
    killed: List[PointMetrics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def engine_counts(self) -> Dict[str, int]:
        """Engine -> cells across all rounds (see RoundSummary)."""
        total: Dict[str, int] = {}
        for r in self.rounds:
            for engine, n in r.engine_counts.items():
                total[engine] = total.get(engine, 0) + n
        return total

    def to_payload(self) -> Dict:
        return {
            "schema": EXPLORE_SCHEMA,
            "kind": "repro-explore",
            "name": self.name,
            "strategy": self.strategy,
            "space_points": self.space_points,
            "space_cells": self.space_cells,
            "benchmarks": list(self.benchmarks),
            "rounds": [r.to_dict() for r in self.rounds],
            "evaluated": [m.to_dict() for m in self.evaluated],
            "frontier": [m.to_dict() for m in self.frontier],
            "killed": [m.to_dict() for m in self.killed],
            "elapsed_seconds": self.elapsed_seconds,
        }

    def render(self) -> str:
        lines = [
            f"explore '{self.name}': strategy={self.strategy}, space "
            f"{self.space_points} configs x {len(self.benchmarks)} "
            f"benchmarks = {self.space_cells} cells"
        ]
        for r in self.rounds:
            lines.append(
                f"  round {r.index}: {r.points} configs @ "
                f"{r.reads_per_core} reads/core ({r.cells} cells, "
                f"{r.cache_hits} cached) -> frontier {r.frontier} "
                f"[{r.elapsed_seconds:.1f}s]"
            )
        best_ed2 = min((m.ed2 for m in self.evaluated if m.ed2 > 0), default=1.0)
        lines.append(
            f"Pareto frontier ({len(self.frontier)} of "
            f"{len(self.evaluated)} surviving configs; objectives: "
            "latency min / hit_rate max / bus-util min / ED2 min):"
        )
        lines.append(
            f"  {'config':<44} {'lat_cyc':>8} {'hit':>6} "
            f"{'bus':>6} {'ED2(rel)':>9}"
        )
        for m in sorted(self.frontier, key=lambda m: m.latency):
            lines.append(
                f"  {m.point.label:<44} {m.latency:>8.1f} "
                f"{m.hit_rate:>6.3f} {m.bandwidth:>6.3f} "
                f"{m.ed2 / best_ed2 if best_ed2 else 0.0:>9.3f}"
            )
        counts = self.engine_counts
        if counts:
            lines.append(
                "-- engines: "
                + ", ".join(f"{k} {counts[k]}" for k in sorted(counts))
            )
        lines.append(f"-- {self.elapsed_seconds:.1f}s elapsed")
        return "\n".join(lines)


def _metrics_from_report(
    points: Sequence[ConfigPoint],
    benchmarks: Sequence[str],
    report: SweepReport,
    reads_per_core: int,
    round_index: int,
) -> List[PointMetrics]:
    # One design appears under many configs in a round's grid, so
    # ``report.result(design, benchmark)`` is ambiguous here; rely on the
    # executor preserving input cell order (slots are index-addressed) and
    # read cells back positionally, cross-checking identity.
    n = len(benchmarks)
    if len(report.cells) != len(points) * n:
        raise ValueError(
            f"report has {len(report.cells)} cells, expected "
            f"{len(points)} points x {n} benchmarks"
        )
    out = []
    for i, point in enumerate(points):
        latency = hit = bus = ed2 = cycles = 0.0
        for j, benchmark in enumerate(benchmarks):
            cell_result = report.cells[i * n + j]
            if (
                cell_result.cell.design != point.design
                or cell_result.cell.benchmark != benchmark
            ):
                raise ValueError(
                    f"cell order mismatch at {i * n + j}: expected "
                    f"{point.design}/{benchmark}, got "
                    f"{cell_result.cell.design}/{cell_result.cell.benchmark}"
                )
            result = cell_result.result
            latency += result.avg_read_latency
            hit += result.read_hit_rate
            bus += result.stacked_bus_utilization
            ed2 += result.total_dram_energy_nj * result.cycles**2
            cycles += result.cycles
        out.append(
            PointMetrics(
                point=point,
                reads_per_core=reads_per_core,
                round_index=round_index,
                latency=latency / n,
                hit_rate=hit / n,
                bandwidth=bus / n,
                ed2=ed2 / n,
                cycles=cycles / n,
            )
        )
    return out


def _evaluate(
    points: Sequence[ConfigPoint],
    benchmarks: Sequence[str],
    reads_per_core: int,
    round_index: int,
    job_name: str,
    *,
    base: Optional[SystemConfig],
    warmup_fraction: float,
    seed: int,
    max_workers: int,
    cache: Optional[ResultCache],
    use_cache: bool,
) -> Tuple[List[PointMetrics], SweepReport]:
    """Run one round as a named, journaled job and score its points."""
    cells = cells_for(
        points,
        benchmarks,
        reads_per_core,
        base=base,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    job = create_job(job_name, cells)
    report = submit_job(
        job, max_workers=max_workers, cache=cache, use_cache=use_cache
    )
    metrics = _metrics_from_report(
        points, benchmarks, report, reads_per_core, round_index
    )
    return metrics, report


def _round_summary(
    index: int,
    reads_per_core: int,
    points: Sequence[ConfigPoint],
    report: SweepReport,
    metrics: Sequence[PointMetrics],
    elapsed: float,
) -> RoundSummary:
    return RoundSummary(
        index=index,
        reads_per_core=reads_per_core,
        points=len(points),
        cells=len(report.cells),
        frontier=len(pareto_front(metrics)),
        cache_hits=sum(1 for c in report.cells if c.from_cache),
        elapsed_seconds=elapsed,
        engine_counts=report.engine_counts,
    )


def explore(
    space: ExploreSpace,
    strategy: str = "halving",
    *,
    name: str = "explore",
    reads_per_core: int = 3000,
    eta: int = 3,
    keep: int = 8,
    max_rounds: Optional[int] = None,
    samples: int = 32,
    seed: int = 1,
    base: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> ExploreReport:
    """Search ``space`` with one of :data:`STRATEGIES`.

    ``reads_per_core`` is the fidelity of the *first* round; ``halving``
    multiplies it by ``eta`` per round while cutting the population to
    ``max(keep, ceil(n / eta))``, stopping once ``keep`` (or fewer)
    configs remain or ``max_rounds`` rounds have run. ``grid`` and
    ``random`` are single-round strategies (``random`` evaluates a seeded
    sample of ``samples`` points). Every round is a named job, so an
    interrupted exploration rerun with identical arguments resumes from
    its journals.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    started = time.perf_counter()
    say = log or (lambda _msg: None)
    points = space.points()
    if strategy == "random":
        rng = random.Random(seed)
        points = sorted(
            rng.sample(points, min(samples, len(points))),
            key=lambda p: p.label,
        )

    common = dict(
        base=base,
        warmup_fraction=warmup_fraction,
        seed=seed,
        max_workers=max_workers,
        cache=cache,
        use_cache=use_cache,
    )
    rounds: List[RoundSummary] = []
    killed: List[PointMetrics] = []

    if strategy in ("grid", "random"):
        say(
            f"{strategy}: {len(points)} configs x {len(space.benchmarks)} "
            f"benchmarks @ {reads_per_core} reads/core"
        )
        t0 = time.perf_counter()
        metrics, report = _evaluate(
            points,
            space.benchmarks,
            reads_per_core,
            0,
            f"{name}-r0",
            **common,
        )
        rounds.append(
            _round_summary(
                0,
                reads_per_core,
                points,
                report,
                metrics,
                time.perf_counter() - t0,
            )
        )
        evaluated = metrics
    else:
        evaluated = []
        reads = reads_per_core
        round_index = 0
        while True:
            say(
                f"halving round {round_index}: {len(points)} configs @ "
                f"{reads} reads/core"
            )
            t0 = time.perf_counter()
            metrics, report = _evaluate(
                points,
                space.benchmarks,
                reads,
                round_index,
                f"{name}-r{round_index}",
                **common,
            )
            rounds.append(
                _round_summary(
                    round_index,
                    reads,
                    points,
                    report,
                    metrics,
                    time.perf_counter() - t0,
                )
            )
            done = len(points) <= keep or (
                max_rounds is not None and round_index + 1 >= max_rounds
            )
            if done:
                evaluated = metrics
                break
            survivors = select_survivors(
                metrics, max(keep, math.ceil(len(points) / eta))
            )
            alive = {m.point.label for m in survivors}
            killed.extend(m for m in metrics if m.point.label not in alive)
            points = [m.point for m in survivors]
            reads *= eta
            round_index += 1

    frontier = pareto_front(evaluated)
    return ExploreReport(
        name=name,
        strategy=strategy,
        space_points=space.num_points,
        space_cells=space.num_cells,
        benchmarks=tuple(space.benchmarks),
        rounds=rounds,
        evaluated=evaluated,
        frontier=frontier,
        killed=killed,
        elapsed_seconds=time.perf_counter() - started,
    )
