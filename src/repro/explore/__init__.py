"""Design-space exploration over the DRAM-cache config space.

:mod:`repro.explore.space` defines the axes (design family, page policy,
burst length, capacity, timing preset, capacity scale) and expands them to
sweep cells; :mod:`repro.explore.engine` searches the space with ``grid``,
``random`` or successive-``halving`` strategies — every round a resumable
:mod:`repro.jobs` job — and reports the Pareto frontier over latency,
hit rate, stacked-bus pressure and energy·delay².
"""

from repro.explore.engine import (
    EXPLORE_SCHEMA,
    STRATEGIES,
    ExploreReport,
    PointMetrics,
    RoundSummary,
    dominates,
    explore,
    pareto_front,
    select_survivors,
)
from repro.explore.space import (
    DEFAULT_BENCHMARKS,
    DEFAULT_DESIGNS,
    STACKED_TIMING_PRESETS,
    ConfigPoint,
    ExploreSpace,
    cells_for,
)

__all__ = [
    "EXPLORE_SCHEMA",
    "STRATEGIES",
    "ExploreReport",
    "PointMetrics",
    "RoundSummary",
    "dominates",
    "explore",
    "pareto_front",
    "select_survivors",
    "DEFAULT_BENCHMARKS",
    "DEFAULT_DESIGNS",
    "STACKED_TIMING_PRESETS",
    "ConfigPoint",
    "ExploreSpace",
    "cells_for",
]
