"""Table 6: hit rate — highly associative (29-way LH) vs direct-mapped Alloy."""

from __future__ import annotations

from repro.experiments.common import primary_names, sweep
from repro.experiments.report import ExperimentResult
from repro.sim.config import SystemConfig
from repro.units import MB, pretty_size

SIZES_MB = (256, 512, 1024)

#: Paper Table 6: (LH 29-way %, Alloy 1-way %, delta).
PAPER = {256: (55.2, 48.2, 7.0), 512: (59.6, 55.2, 4.4), 1024: (62.6, 59.1, 2.5)}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table6",
        title="Hit rate: 29-way LH-Cache vs direct-mapped Alloy Cache",
        headers=[
            "size",
            "lh29_pct",
            "alloy_pct",
            "delta_pct",
            "paper_lh",
            "paper_alloy",
            "paper_delta",
        ],
    )
    sizes = SIZES_MB[:1] if quick else SIZES_MB
    for size_mb in sizes:
        config = SystemConfig().with_cache_size(size_mb * MB)
        results = sweep(
            ("lh-cache", "alloy-map-i"), primary_names(), quick=quick, config=config
        )
        n = len(primary_names())
        lh = sum(results[("lh-cache", b)][1].read_hit_rate for b in primary_names()) / n
        alloy = (
            sum(results[("alloy-map-i", b)][1].read_hit_rate for b in primary_names())
            / n
        )
        paper_lh, paper_alloy, paper_delta = PAPER[size_mb]
        result.add_row(
            pretty_size(size_mb * MB),
            lh * 100.0,
            alloy * 100.0,
            (lh - alloy) * 100.0,
            paper_lh,
            paper_alloy,
            paper_delta,
        )
    result.add_note(
        "expected shape: the associativity gap shrinks as capacity grows "
        "(Hill's classic observation, paper Section 6.3)"
    )
    return result
