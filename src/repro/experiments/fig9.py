"""Figure 9: sensitivity to DRAM-cache size (64 MB to 1 GB)."""

from __future__ import annotations

from repro.experiments.common import design_geomean, primary_names, sweep
from repro.experiments.report import ExperimentResult
from repro.sim.config import SystemConfig
from repro.units import MB, pretty_size

DESIGNS = ("lh-cache", "sram-tag", "alloy-map-i", "ideal-lo")
SIZES_MB = (64, 128, 256, 512, 1024)

#: Paper improvements at 1 GB: LH 11.1%, SRAM-Tag 29.3%, Alloy 46.1%.
PAPER_1GB = {"lh-cache": 11.1, "sram-tag": 29.3, "alloy-map-i": 46.1}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig9",
        title="Geomean speedup vs DRAM-cache size",
        headers=["size", *DESIGNS],
    )
    sizes = SIZES_MB[1:-1] if quick else SIZES_MB
    for size_mb in sizes:
        config = SystemConfig().with_cache_size(size_mb * MB)
        results = sweep(DESIGNS, primary_names(), quick=quick, config=config)
        result.add_row(
            pretty_size(size_mb * MB),
            *(design_geomean(results, d) for d in DESIGNS),
        )
    result.add_note(
        "expected shape: every design improves with capacity; Alloy stays "
        "between SRAM-Tag and IDEAL-LO at every size (paper 1GB: "
        + ", ".join(f"{d}~{v}%" for d, v in PAPER_1GB.items())
        + ")"
    )
    return result
