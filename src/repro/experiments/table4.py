"""Table 4: effective bandwidth relative to off-chip memory (analytic)."""

from __future__ import annotations

from repro.analysis.bandwidth import table4
from repro.experiments.report import ExperimentResult

#: The paper's Table 4 effective-bandwidth column.
PAPER_EFFECTIVE = {
    "offchip-memory": 1.0,
    "sram-tag": 8.0,
    "lh-cache": 1.8,
    "ideal-lo": 8.0,
    "alloy-cache": 6.4,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table4",
        title="Bandwidth comparison (relative to off-chip memory)",
        headers=[
            "structure",
            "raw_bandwidth",
            "bytes_per_hit",
            "effective_bandwidth",
            "paper",
        ],
    )
    for entry in table4():
        result.add_row(
            entry.structure,
            entry.raw_bandwidth,
            entry.bytes_per_hit,
            entry.effective_bandwidth,
            PAPER_EFFECTIVE[entry.structure],
        )
    result.add_note(
        "LH-Cache moves (256+16) bytes per hit -> effective bandwidth under "
        "2x despite 8x raw (paper rounds to 1.8x)"
    )
    return result
