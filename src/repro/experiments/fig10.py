"""Figure 10: average DRAM-cache hit latency per workload."""

from __future__ import annotations

from repro.experiments.common import primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = ("lh-cache", "sram-tag", "alloy-map-i")

#: Paper averages: LH-Cache 107, SRAM-Tag 67, Alloy 43 cycles.
PAPER_AVERAGE = {"lh-cache": 107.0, "sram-tag": 67.0, "alloy-map-i": 43.0}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig10",
        title="Average hit latency (cycles, 256 MB)",
        headers=["workload", *DESIGNS],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    sums = {d: 0.0 for d in DESIGNS}
    for benchmark in primary_names():
        row = []
        for design in DESIGNS:
            _, r = results[(design, benchmark)]
            row.append(r.avg_hit_latency)
            sums[design] += r.avg_hit_latency
        result.add_row(benchmark, *row)
    n = len(primary_names())
    result.add_row("average", *(sums[d] / n for d in DESIGNS))
    result.add_note(
        "paper averages: "
        + ", ".join(f"{d}={v:.0f}" for d, v in PAPER_AVERAGE.items())
        + " — the Alloy Cache cuts LH-Cache hit latency by ~60%"
    )
    return result
