"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ExperimentResult:
    """One regenerated paper artifact: a titled table plus notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        """Extract one column by header name (used by tests)."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_by_key(self, key: Cell) -> List[Cell]:
        """Find the row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.experiment_id}")

    def render(self) -> str:
        return render_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_bars(
    result: ExperimentResult,
    value_column: str,
    label_column: Optional[str] = None,
    width: int = 48,
) -> str:
    """Render one numeric column as a horizontal ASCII bar chart.

    This is how the CLI draws the paper's *figures* (as opposed to tables):
    one bar per row, scaled to the column maximum.
    """
    labels = result.column(label_column) if label_column else result.column(
        result.headers[0]
    )
    values = result.column(value_column)
    numeric = [float(v) for v in values]
    peak = max(numeric) if numeric else 0.0
    label_width = max((len(str(l)) for l in labels), default=0)
    lines = [f"-- {result.experiment_id}: {value_column} --"]
    for label, value in zip(labels, numeric):
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)


def write_csv(result: ExperimentResult, path) -> None:
    """Write an experiment's table as CSV (one header row + data rows)."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    table: List[Sequence[str]] = [result.headers] + [
        [_format_cell(c) for c in row] for row in result.rows
    ]
    widths = [
        max(len(row[i]) for row in table) for i in range(len(result.headers))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    header = "  ".join(h.ljust(w) for h, w in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
