"""Table 7: room for improvement beyond Alloy + MAP-I."""

from __future__ import annotations

from repro.experiments.common import (
    design_geomean,
    improvement_pct,
    primary_names,
    sweep,
)
from repro.experiments.report import ExperimentResult

DESIGNS = ("alloy-map-i", "alloy-perfect", "ideal-lo", "ideal-lo-notag")

#: Paper Table 7 improvements (%).
PAPER = {
    "alloy-map-i": 35.0,
    "alloy-perfect": 36.6,
    "ideal-lo": 38.4,
    "ideal-lo-notag": 41.0,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table7",
        title="Room for improvement (256 MB, geomean improvement %)",
        headers=["design", "improvement_pct", "paper_pct"],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for design in DESIGNS:
        result.add_row(
            design,
            improvement_pct(design_geomean(results, design)),
            PAPER[design],
        )
    result.add_note(
        "expected shape: perfect prediction, then zero latency overheads, "
        "then zero tag overhead each add a small increment"
    )
    return result
