"""Section 5.6: implications of access models on memory power and energy.

The paper's argument is activity-based: PAM sends every L3 miss to off-chip
memory (≈2x the accesses of SAM), so its latency benefit comes at a power
cost; DAM with MAP-I keeps wasteful parallel accesses to a few percent.
This experiment quantifies it with the energy model of
:mod:`repro.dram.energy`: off-chip accesses and energy per access model,
normalized to SAM.
"""

from __future__ import annotations

from repro.experiments.common import primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = ("alloy-sam", "alloy-pam", "alloy-map-g", "alloy-map-i", "alloy-perfect")

LABELS = {
    "alloy-sam": "SAM",
    "alloy-pam": "PAM",
    "alloy-map-g": "MAP-G",
    "alloy-map-i": "MAP-I",
    "alloy-perfect": "Perfect",
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="energy",
        title="Memory activity and DRAM energy by access model (Section 5.6)",
        headers=[
            "model",
            "memory_reads",
            "reads_vs_sam",
            "mem_energy_vs_sam",
            "total_energy_vs_sam",
        ],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)

    totals = {}
    for design in DESIGNS:
        reads = sum(results[(design, b)][1].memory_reads for b in primary_names())
        mem_energy = sum(
            results[(design, b)][1].memory_energy_nj for b in primary_names()
        )
        total_energy = sum(
            results[(design, b)][1].total_dram_energy_nj for b in primary_names()
        )
        totals[design] = (reads, mem_energy, total_energy)

    sam_reads, sam_mem, sam_total = totals["alloy-sam"]
    for design in DESIGNS:
        reads, mem_energy, total_energy = totals[design]
        result.add_row(
            LABELS[design],
            reads,
            reads / sam_reads if sam_reads else 0.0,
            mem_energy / sam_mem if sam_mem else 0.0,
            total_energy / sam_total if sam_total else 0.0,
        )
    result.add_note(
        "paper (qualitative): PAM almost doubles memory activity vs SAM; "
        "MAP-I stays within a few percent of SAM's traffic and energy"
    )
    return result
