"""Extension studies beyond the paper's figures.

Three sensitivity sweeps that probe the design choices DESIGN.md calls out:

* ``psl-sweep`` — how expensive may a miss predictor's lookup be before it
  stops paying? Sweeps the Alloy+MissMap serialization latency from 0 to 48
  cycles. At 0 it behaves like a perfect predictor; at the paper's 24-cycle
  L3 embedding it loses to no-prediction (generalizes Figure 6).
* ``mact-sweep`` — MAP-I accuracy and performance vs MACT size (16 to 1024
  entries), justifying the paper's 256-entry / 96-bytes-per-core choice.
* ``lh-replacement`` — the LH-Cache under DIP / LRU / NRU / random
  replacement, extending Table 1's replacement de-optimization.
* ``mlp-sweep`` — sensitivity to the core's memory-level parallelism
  (MSHRs per core). Our default core blocks on reads, which compresses
  absolute speedups relative to the paper's out-of-order model; this sweep
  brackets the effect. Dependent (pointer-chase) reads serialize even with
  free MSHRs.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.missmap import MissMap
from repro.cache.replacement import make_policy
from repro.core.predictors import MapIPredictor
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.lh_cache import LHCacheDesign
from repro.experiments.common import improvement_pct, reads_for
from repro.experiments.report import ExperimentResult
from repro.sim.config import SystemConfig
from repro.sim.runner import baseline_result, geometric_mean, run_design
from repro.workloads.spec import build_workload

#: Workloads used by the extension sweeps (a representative subset keeps
#: three-way sweeps affordable).
SWEEP_BENCHMARKS = ("mcf_r", "omnetpp_r", "sphinx_r", "libquantum_r")


def _sweep_custom(builder, config: SystemConfig, quick: bool):
    """Geomean speedup + mean stats of a custom design over the subset."""
    reads = reads_for(quick)
    speedups = []
    results = []
    for benchmark in SWEEP_BENCHMARKS:
        base = baseline_result(benchmark, config, reads)
        workload = build_workload(
            benchmark,
            num_cores=config.num_cores,
            reads_per_core=reads,
            capacity_scale=config.capacity_scale,
        )
        result = run_design(builder, workload, config)
        speedups.append(result.speedup_vs(base))
        results.append(result)
    return geometric_mean(speedups), results


def run_psl_sweep(quick: bool = False) -> ExperimentResult:
    """Miss-predictor serialization latency sweep (Alloy + MissMap)."""
    result = ExperimentResult(
        experiment_id="psl-sweep",
        title="Alloy+MissMap vs predictor serialization latency (extension)",
        headers=["psl_cycles", "improvement_pct", "hit_latency"],
    )
    latencies = (0, 24) if quick else (0, 8, 16, 24, 36, 48)
    for psl in latencies:
        config = replace(SystemConfig(), missmap_latency=psl)

        def builder(cfg, stacked, memory, schedule):
            return AlloyCacheDesign(cfg, stacked, memory, schedule, predictor=MissMap())

        gmean, results = _sweep_custom(builder, config, quick)
        lat = sum(r.avg_hit_latency for r in results) / len(results)
        result.add_row(psl, improvement_pct(gmean), lat)
    result.add_note(
        "expected shape: monotone decrease with PSL; a perfect-information "
        "predictor is only worth having if its lookup is nearly free"
    )
    return result


def run_mact_sweep(quick: bool = False) -> ExperimentResult:
    """MAP-I table-size sweep."""
    result = ExperimentResult(
        experiment_id="mact-sweep",
        title="MAP-I accuracy and speedup vs MACT entries (extension)",
        headers=["entries", "bytes_per_core", "accuracy_pct", "improvement_pct"],
    )
    sizes = (2, 256) if quick else (2, 8, 64, 256, 1024)
    config = SystemConfig()
    for entries in sizes:

        def builder(cfg, stacked, memory, schedule, entries=entries):
            predictor = MapIPredictor(cfg.num_cores, entries=entries)
            return AlloyCacheDesign(
                cfg, stacked, memory, schedule, predictor=predictor
            )

        gmean, results = _sweep_custom(builder, config, quick)
        accuracies = [r.predictor_accuracy() or 0.0 for r in results]
        result.add_row(
            entries,
            entries * 3 / 8,
            100.0 * sum(accuracies) / len(accuracies),
            improvement_pct(gmean),
        )
    result.add_note(
        "expected shape: accuracy saturates well before 1024 entries — the "
        "paper's 256-entry (96 B/core) table captures the PC correlation"
    )
    return result


def run_lh_replacement(quick: bool = False) -> ExperimentResult:
    """LH-Cache replacement-policy ablation."""
    result = ExperimentResult(
        experiment_id="lh-replacement",
        title="LH-Cache replacement policies (extension of Table 1)",
        headers=["policy", "improvement_pct", "hit_rate_pct", "hit_latency"],
    )
    config = SystemConfig()
    for policy_name in ("dip", "lru", "nru", "random"):

        def builder(cfg, stacked, memory, schedule, policy_name=policy_name):
            return LHCacheDesign(
                cfg, stacked, memory, schedule, policy=make_policy(policy_name)
            )

        gmean, results = _sweep_custom(builder, config, quick)
        hit = sum(r.read_hit_rate for r in results) / len(results)
        lat = sum(r.avg_hit_latency for r in results) / len(results)
        result.add_row(policy_name, improvement_pct(gmean), hit * 100.0, lat)
    result.add_note(
        "expected shape: random replacement trades a few hit-rate points "
        "for lower hit latency (no update traffic) and comes out ahead — "
        "Table 1's counterintuitive result"
    )
    return result


def run_mlp_sweep(quick: bool = False) -> ExperimentResult:
    """Core memory-level-parallelism sweep (MSHRs per core)."""
    result = ExperimentResult(
        experiment_id="mlp-sweep",
        title="Sensitivity to core MLP: speedups vs MSHRs per core (extension)",
        headers=["mshrs", "lh_cache", "sram_tag", "alloy_map_i"],
    )
    mshr_values = (1, 4) if quick else (1, 2, 4, 8)
    reads = reads_for(quick)
    for mshrs in mshr_values:
        config = replace(SystemConfig(), mshrs_per_core=mshrs)
        row = [mshrs]
        for design in ("lh-cache", "sram-tag", "alloy-map-i"):
            speedups = []
            for benchmark in SWEEP_BENCHMARKS:
                base = baseline_result(benchmark, config, reads)
                workload = build_workload(
                    benchmark,
                    num_cores=config.num_cores,
                    reads_per_core=reads,
                    capacity_scale=config.capacity_scale,
                )
                res = run_design(design, workload, config)
                speedups.append(res.speedup_vs(base))
            row.append(geometric_mean(speedups))
        result.add_row(*row)
    result.add_note(
        "interpretation: blocking cores (mshrs=1) make hit latency dominate "
        "(the Alloy Cache's regime); idealized MLP hides latency and lets "
        "hit rate dominate (SRAM-Tag catches up). The paper's out-of-order "
        "cores behave between these extremes: dependent chains and finite "
        "windows keep latency relevant, which is why its Alloy lead is "
        "larger than our blocking-core result and persists under OoO"
    )
    return result


def run_victim_cache(quick: bool = False) -> ExperimentResult:
    """Victim-buffer extension: recovering conflict misses without latency.

    The paper's closing invitation (Section 6.7): reduce the direct-mapped
    cache's conflict misses while "paying close attention to the impact on
    hit latency". A small SRAM victim buffer does exactly that.
    """
    result = ExperimentResult(
        experiment_id="victim-cache",
        title="Alloy Cache with an SRAM victim buffer (extension)",
        headers=[
            "design",
            "improvement_pct",
            "hit_rate_pct",
            "hit_latency",
            "sram_bytes",
        ],
    )
    config = SystemConfig()
    for name, entries in (("alloy-map-i", 0), ("alloy-victim16", 16), ("alloy-victim64", 64)):
        reads = reads_for(quick)
        speedups = []
        hits = []
        lats = []
        for benchmark in SWEEP_BENCHMARKS:
            base = baseline_result(benchmark, config, reads)
            workload = build_workload(
                benchmark,
                num_cores=config.num_cores,
                reads_per_core=reads,
                capacity_scale=config.capacity_scale,
            )
            res = run_design(name, workload, config)
            speedups.append(res.speedup_vs(base))
            hits.append(res.read_hit_rate)
            lats.append(res.avg_hit_latency)
        result.add_row(
            name,
            improvement_pct(geometric_mean(speedups)),
            100.0 * sum(hits) / len(hits),
            sum(lats) / len(lats),
            entries * 72,
        )
    result.add_note(
        "expected shape: the buffer absorbs ping-ponging conflict pairs — "
        "hit rate rises at nearly unchanged hit latency, unlike the 2-way "
        "variant which pays a longer burst on every access"
    )
    return result


def run_page_policy(quick: bool = False) -> ExperimentResult:
    """Row-buffer policy ablation: is open-page load-bearing for the Alloy?

    The Alloy Cache's 28-consecutive-sets-per-row layout only pays off
    because the stacked DRAM keeps rows open (CAS-only re-access). Closing
    the page after every access removes that benefit without touching
    anything else.
    """
    result = ExperimentResult(
        experiment_id="page-policy",
        title="Stacked-DRAM page policy ablation (extension)",
        headers=["policy", "improvement_pct", "hit_latency", "row_hit_rate_pct"],
    )
    reads = reads_for(quick)
    for policy in ("open", "closed"):
        config = replace(SystemConfig(), stacked_page_policy=policy)
        speedups = []
        lats = []
        row_hits = []
        for benchmark in SWEEP_BENCHMARKS:
            base = baseline_result(benchmark, config, reads)
            workload = build_workload(
                benchmark,
                num_cores=config.num_cores,
                reads_per_core=reads,
                capacity_scale=config.capacity_scale,
            )
            res = run_design("alloy-map-i", workload, config)
            speedups.append(res.speedup_vs(base))
            lats.append(res.avg_hit_latency)
            row_hits.append(res.stacked_row_hit_rate)
        result.add_row(
            policy,
            improvement_pct(geometric_mean(speedups)),
            sum(lats) / len(lats),
            100.0 * sum(row_hits) / len(row_hits),
        )
    result.add_note(
        "expected shape: closed-page forfeits the direct-mapped layout's "
        "row-buffer hits (Table 1's indirect benefit), raising hit latency "
        "toward the ACT+CAS floor"
    )
    return result
