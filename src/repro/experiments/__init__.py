"""Experiment harness: regenerate every table and figure of the paper.

Each experiment module exposes ``run(quick=False) -> ExperimentResult``.
The registry maps paper artifact ids (``fig4``, ``table1``, ...) to these
runners; the CLI (``python -m repro``) and the benchmark suite both go
through it.
"""

from repro.experiments.report import ExperimentResult, render_table
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "render_table",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
