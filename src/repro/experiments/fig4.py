"""Figure 4: performance potential of SRAM-Tag, LH-Cache and IDEAL-LO."""

from __future__ import annotations

from repro.experiments.common import design_geomean, primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = ("lh-cache", "sram-tag", "ideal-lo")

#: Paper geometric means (speedup over no DRAM cache, 256 MB).
PAPER_GEOMEAN = {"lh-cache": 1.087, "sram-tag": 1.24, "ideal-lo": 1.384}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="Speedup over no-DRAM-cache baseline (256 MB)",
        headers=["workload", *DESIGNS],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for benchmark in primary_names():
        result.add_row(
            benchmark, *(results[(d, benchmark)][0] for d in DESIGNS)
        )
    result.add_row("gmean", *(design_geomean(results, d) for d in DESIGNS))
    result.add_note(
        "paper gmeans: "
        + ", ".join(f"{d}={v}" for d, v in PAPER_GEOMEAN.items())
        + "; expected shape LH < SRAM-Tag < IDEAL-LO"
    )
    return result
