"""Section 6.5 / 6.7 ablations: burst-8 restriction and the two-way Alloy."""

from __future__ import annotations

from repro.experiments.common import (
    design_geomean,
    improvement_pct,
    primary_names,
    sweep,
)
from repro.experiments.report import ExperimentResult

BURST_DESIGNS = ("alloy-map-i", "alloy-burst8")
WAY_DESIGNS = ("alloy-map-i", "alloy-2way")


def run_burst8(quick: bool = False) -> ExperimentResult:
    """Section 6.5: power-of-two burst restriction (128 B per TAD access)."""
    result = ExperimentResult(
        experiment_id="burst8",
        title="Odd-size burst ablation: 5-beat (80 B) vs 8-beat (128 B) TADs",
        headers=["design", "improvement_pct", "paper_pct"],
    )
    results = sweep(BURST_DESIGNS, primary_names(), quick=quick)
    paper = {"alloy-map-i": 35.0, "alloy-burst8": 33.0}
    for design in BURST_DESIGNS:
        result.add_row(
            design,
            improvement_pct(design_geomean(results, design)),
            paper[design],
        )
    result.add_note(
        "expected shape: burst-8 costs only a small fraction of the benefit "
        "(paper: 33% vs 35%)"
    )
    return result


def run_twoway(quick: bool = False) -> ExperimentResult:
    """Section 6.7: two-way Alloy Cache (streams two TADs per access)."""
    result = ExperimentResult(
        experiment_id="twoway",
        title="Two-way Alloy Cache ablation",
        headers=["design", "improvement_pct", "hit_rate_pct", "hit_latency"],
    )
    results = sweep(WAY_DESIGNS, primary_names(), quick=quick)
    for design in WAY_DESIGNS:
        per_bench = [results[(design, b)][1] for b in primary_names()]
        hit = sum(r.read_hit_rate for r in per_bench) / len(per_bench)
        lat = sum(r.avg_hit_latency for r in per_bench) / len(per_bench)
        result.add_row(
            design,
            improvement_pct(design_geomean(results, design)),
            hit * 100.0,
            lat,
        )
    result.add_note(
        "expected shape: 2-way gains a little hit rate (paper 48.2 -> 49.7%) "
        "but loses more to the longer burst and worse hit latency "
        "(paper 43 -> 48 cycles), so 1-way wins overall"
    )
    return result
