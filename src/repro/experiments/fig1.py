"""Figure 1: break-even hit rate for fast vs slow caches (analytic)."""

from __future__ import annotations

from repro.analysis.behr import average_latency, break_even_hit_rate
from repro.experiments.report import ExperimentResult


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig1",
        title="Effectiveness of optimization A vs cache hit latency",
        headers=[
            "cache",
            "hit_latency",
            "base_avg@50%",
            "avg_with_A@70%",
            "BEHR",
            "A_helps",
        ],
    )
    for label, hit_latency in (("fast", 0.1), ("slow", 0.5)):
        base = average_latency(0.5, hit_latency)
        with_a = average_latency(0.7, hit_latency * 1.4)
        behr = break_even_hit_rate(0.5, hit_latency, hit_latency * 1.4)
        result.add_row(label, hit_latency, base, with_a, behr, str(with_a < base))
    result.add_note(
        "paper: fast cache BEHR ~52% (A wins, 0.55 -> 0.40); "
        "slow cache BEHR ~83% (A loses, 0.75 -> 0.79)"
    )
    result.add_note(
        f"slow cache with 60% base hit rate needs BEHR="
        f"{break_even_hit_rate(0.6, 0.5, 0.7):.2f} (100%) just to break even"
    )
    return result
