"""Table 1: impact of de-optimizing the LH-Cache (and SRAM-Tag for scale)."""

from __future__ import annotations

from repro.experiments.common import improvement_pct, primary_names, sweep
from repro.experiments.report import ExperimentResult
from repro.sim.runner import geometric_mean

DESIGNS = (
    "lh-cache",
    "lh-cache-rand",
    "lh-cache-1way",
    "sram-tag",
    "sram-tag-1way",
)

#: Paper Table 1 rows: (improvement %, hit rate %, hit latency cycles).
PAPER = {
    "lh-cache": (8.7, 55.2, 107),
    "lh-cache-rand": (10.2, 51.5, 98),
    "lh-cache-1way": (15.2, 49.0, 82),
    "sram-tag": (23.8, 56.8, 67),
    "sram-tag-1way": (24.3, 51.5, 59),
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="De-optimizing the LH-Cache (256 MB, averages over workloads)",
        headers=[
            "configuration",
            "improvement_pct",
            "hit_rate_pct",
            "hit_latency",
            "paper_impr",
            "paper_hit",
            "paper_lat",
        ],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for design in DESIGNS:
        per_bench = [results[(design, b)] for b in primary_names()]
        gmean = geometric_mean([s for s, _ in per_bench])
        hit = sum(r.read_hit_rate for _, r in per_bench) / len(per_bench)
        lat = sum(r.avg_hit_latency for _, r in per_bench) / len(per_bench)
        paper_impr, paper_hit, paper_lat = PAPER[design]
        result.add_row(
            design,
            improvement_pct(gmean),
            hit * 100.0,
            lat,
            paper_impr,
            paper_hit,
            paper_lat,
        )
    result.add_note(
        "expected shape: de-optimizing LH-Cache (random repl, then 1-way) "
        "raises performance while lowering hit rate and hit latency"
    )
    return result
