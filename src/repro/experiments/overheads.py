"""Storage-overhead table (paper Sections 2.1 / 6.1): why SRAM-Tags are
impractical and the Alloy Cache's predictor is free."""

from __future__ import annotations

from repro.analysis.overheads import overhead_table
from repro.experiments.report import ExperimentResult
from repro.units import pretty_size

#: Paper Section 6.1 SRAM overheads: 6/12/24/48/96 MB for 64 MB..1 GB.
PAPER_SRAM_MB = {64: 6, 128: 12, 256: 24, 512: 48, 1024: 96}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="overheads",
        title="Non-DRAM storage overhead per design (Section 6.1)",
        headers=[
            "cache",
            "sram_tag",
            "paper_sram",
            "missmap_dense",
            "missmap_sparse",
            "alloy_map_i",
        ],
    )
    for row in overhead_table():
        size_mb = row.cache_bytes // (1024 * 1024)
        result.add_row(
            pretty_size(row.cache_bytes),
            pretty_size(row.sram_tag_bytes),
            f"{PAPER_SRAM_MB[size_mb]}MB",
            pretty_size(row.missmap_dense_bytes),
            pretty_size(row.missmap_sparse_bytes),
            f"{row.map_i_bytes}B",
        )
    result.add_note(
        "SRAM-Tags need megabytes of SRAM that scale with capacity; the "
        "MissMap needs megabytes of tracking state (hence its L3 embedding "
        "and 24-cycle PSL); MAP-I needs 96 bytes per core, total < 1 KB"
    )
    return result
