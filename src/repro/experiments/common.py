"""Shared sweep machinery for the experiment modules.

``quick`` mode shortens traces so a full experiment run (or the benchmark
suite) stays fast; full mode uses the calibration-length traces behind the
numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.runner import geometric_mean, speedup
from repro.workloads.spec import PRIMARY_BENCHMARKS, SECONDARY_BENCHMARKS

#: Reads per core in full / quick experiment modes.
FULL_READS = 6000
QUICK_READS = 1500


def reads_for(quick: bool) -> int:
    return QUICK_READS if quick else FULL_READS


def primary_names() -> List[str]:
    return list(PRIMARY_BENCHMARKS)


def secondary_names() -> List[str]:
    return list(SECONDARY_BENCHMARKS)


def sweep(
    designs: Iterable[str],
    benchmarks: Iterable[str],
    quick: bool = False,
    config: Optional[SystemConfig] = None,
) -> Dict[Tuple[str, str], Tuple[float, SimResult]]:
    """Run every (design, benchmark) pair; returns speedups + raw results."""
    config = config or SystemConfig()
    reads = reads_for(quick)
    out: Dict[Tuple[str, str], Tuple[float, SimResult]] = {}
    for benchmark in benchmarks:
        for design in designs:
            out[(design, benchmark)] = speedup(
                design, benchmark, config, reads_per_core=reads
            )
    return out


def design_geomean(
    results: Dict[Tuple[str, str], Tuple[float, SimResult]],
    design: str,
) -> float:
    """Geometric-mean speedup of one design across all swept benchmarks."""
    values = [s for (d, _), (s, _) in results.items() if d == design]
    return geometric_mean(values)


def improvement_pct(speedup_value: float) -> float:
    """Speedup expressed as the paper's percentage improvement."""
    return (speedup_value - 1.0) * 100.0
