"""Shared sweep machinery for the experiment modules.

``quick`` mode shortens traces so a full experiment run (or the benchmark
suite) stays fast; full mode uses the calibration-length traces behind the
numbers recorded in EXPERIMENTS.md.

Every experiment's (design x benchmark) grid goes through the parallel
sweep executor in :mod:`repro.sim.parallel`: set ``REPRO_JOBS=N`` (or pass
``max_workers``) to fan cells out over N worker processes, and completed
cells persist in the on-disk result cache so re-running a figure resumes
instead of resimulating.

When the registry runs an experiment it wraps the call in
:func:`experiment_job`, so every grid lands as a *named, journaled job*
(``fig4``, ``table1-quick``, …) under ``.repro_cache/jobs/`` — a killed
figure run resumes from its journal, and ``repro jobs list`` shows which
paper artifacts have complete result sets.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sim.config import SystemConfig
from repro.sim.parallel import default_workers, make_cells, run_sweep
from repro.sim.results import SimResult
from repro.sim.runner import geometric_mean
from repro.workloads.spec import PRIMARY_BENCHMARKS, SECONDARY_BENCHMARKS

#: Reads per core in full / quick experiment modes.
FULL_READS = 6000
QUICK_READS = 1500


def reads_for(quick: bool) -> int:
    return QUICK_READS if quick else FULL_READS


#: The job name experiment sweeps run under (None = plain ephemeral sweep).
_EXPERIMENT_JOB: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_experiment_job", default=None
)


@contextmanager
def experiment_job(name: str) -> Iterator[None]:
    """Route every :func:`sweep` inside the block through a named job.

    Job ids are content-keyed, so one experiment issuing several distinct
    grids under the same name yields several distinct (resumable) jobs.
    """
    token = _EXPERIMENT_JOB.set(name)
    try:
        yield
    finally:
        _EXPERIMENT_JOB.reset(token)


def current_experiment_job() -> Optional[str]:
    return _EXPERIMENT_JOB.get()


def primary_names() -> List[str]:
    return list(PRIMARY_BENCHMARKS)


def secondary_names() -> List[str]:
    return list(SECONDARY_BENCHMARKS)


def sweep(
    designs: Iterable[str],
    benchmarks: Iterable[str],
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    max_workers: Optional[int] = None,
    warmup_fraction: float = 0.25,
) -> Dict[Tuple[str, str], Tuple[float, SimResult]]:
    """Run every (design, benchmark) pair; returns speedups + raw results.

    Cells fan out over ``max_workers`` processes (default: ``REPRO_JOBS``
    env var, or 1). The ``no-cache`` baseline each speedup normalizes
    against joins the grid so it is simulated (or cache-served) exactly
    once per benchmark.
    """
    config = config or SystemConfig()
    reads = reads_for(quick)
    designs = list(designs)
    benchmarks = list(benchmarks)
    grid = designs if "no-cache" in designs else ["no-cache", *designs]
    cells = make_cells(
        grid,
        benchmarks,
        config=config,
        reads_per_core=reads,
        warmup_fraction=warmup_fraction,
    )
    workers = max_workers or default_workers()
    job_name = _EXPERIMENT_JOB.get()
    if job_name:
        from repro.jobs import create_job, submit_job

        report = submit_job(create_job(job_name, cells), max_workers=workers)
    else:
        report = run_sweep(cells, max_workers=workers)
    out: Dict[Tuple[str, str], Tuple[float, SimResult]] = {}
    for benchmark in benchmarks:
        base = report.result("no-cache", benchmark)
        for design in designs:
            result = report.result(design, benchmark)
            out[(design, benchmark)] = (result.speedup_vs(base), result)
    return out


def design_geomean(
    results: Dict[Tuple[str, str], Tuple[float, SimResult]],
    design: str,
) -> float:
    """Geometric-mean speedup of one design across all swept benchmarks."""
    values = [s for (d, _), (s, _) in results.items() if d == design]
    return geometric_mean(values)


def improvement_pct(speedup_value: float) -> float:
    """Speedup expressed as the paper's percentage improvement."""
    return (speedup_value - 1.0) * 100.0
