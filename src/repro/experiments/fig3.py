"""Figure 3: latency breakdown for isolated accesses X and Y (analytic)."""

from __future__ import annotations

from repro.analysis.latency import fig3_table
from repro.experiments.report import ExperimentResult

#: The paper's Figure 3 totals, for side-by-side display.
PAPER_TOTALS = {
    ("baseline", "X", "miss"): 52,
    ("baseline", "Y", "miss"): 88,
    ("sram-tag", "X", "hit"): 64,
    ("sram-tag", "Y", "hit"): 64,
    ("sram-tag", "X", "miss"): 76,
    ("sram-tag", "Y", "miss"): 112,
    ("lh-cache", "X", "hit"): 96,
    ("lh-cache", "Y", "hit"): 96,
    ("lh-cache", "X", "miss"): 76,
    ("lh-cache", "Y", "miss"): 112,
    ("ideal-lo", "X", "hit"): 22,
    ("ideal-lo", "Y", "hit"): 40,
    ("ideal-lo", "X", "miss"): 52,
    ("ideal-lo", "Y", "miss"): 88,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig3",
        title="Isolated-access latency breakdown (processor cycles)",
        headers=["design", "access", "event", "cycles", "paper"],
    )
    ours = fig3_table()
    for key in sorted(ours):
        design, access, event = key
        paper = PAPER_TOTALS.get(key, "-")
        result.add_row(design, access, event, ours[key], paper)
    result.add_note(
        "alloy rows have no single paper bar: Figure 3 shows IDEAL-LO; the "
        "alloy TAD adds one bus beat over it (23/41 vs 22/40)"
    )
    return result
