"""Figure 8: Alloy Cache speedup under each memory access predictor."""

from __future__ import annotations

from repro.experiments.common import design_geomean, primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = (
    "alloy-sam",
    "alloy-pam",
    "alloy-map-g",
    "alloy-map-i",
    "alloy-perfect",
)

#: Paper average improvements (Section 5.4).
PAPER_IMPROVEMENT = {
    "alloy-sam": 22.6,
    "alloy-pam": 29.6,
    "alloy-map-g": 30.9,
    "alloy-map-i": 35.0,
    "alloy-perfect": 36.6,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="Alloy Cache with different memory access predictors (256 MB)",
        headers=["workload", *DESIGNS],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for benchmark in primary_names():
        result.add_row(
            benchmark, *(results[(d, benchmark)][0] for d in DESIGNS)
        )
    result.add_row("gmean", *(design_geomean(results, d) for d in DESIGNS))
    result.add_note(
        "expected shape: SAM < PAM <= MAP-G < MAP-I <= Perfect; paper "
        "improvements: "
        + ", ".join(f"{d}~{v}%" for d, v in PAPER_IMPROVEMENT.items())
    )
    return result
