"""Reproduction scorecard: one PASS/FAIL verdict per paper claim.

Runs the experiments behind each of the paper's headline claims and checks
the *shape* criteria this reproduction promises (see EXPERIMENTS.md).
``python -m repro.cli scorecard --quick`` gives a fast end-to-end health
check of the whole reproduction; the full mode matches EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments.report import ExperimentResult


@dataclass(frozen=True)
class Criterion:
    """One paper claim and the check that verifies it."""

    name: str
    claim: str
    experiments: tuple
    check: Callable[[Dict[str, ExperimentResult]], bool]


def _fig4_ordering(results):
    gmean = results["fig4"].row_by_key("gmean")
    lh, sram, ideal = gmean[1], gmean[2], gmean[3]
    return lh < sram < ideal


def _alloy_beats_sram(results):
    alloy = results["fig8"].row_by_key("gmean")[4]  # MAP-I column
    sram = results["fig4"].row_by_key("gmean")[2]
    return alloy > sram


def _hit_latency_ordering(results):
    avg = results["fig10"].row_by_key("average")
    lh, sram, alloy = avg[1], avg[2], avg[3]
    return alloy < sram < lh and 85 <= lh <= 135


def _missmap_worse_than_nopred(results):
    gmean = results["fig6"].row_by_key("gmean")
    return gmean[2] < gmean[1]  # missmap < nopred


def _map_i_near_perfect(results):
    gmean = results["fig8"].row_by_key("gmean")
    map_i, perfect = gmean[4], gmean[5]
    return map_i > perfect * 0.9


def _pam_wastes_bandwidth(results):
    pam = results["table5"].row_by_key("PAM")
    return pam[2] > 25.0  # % of misses wastefully sent to memory


def _gap_shrinks_with_size(results):
    deltas = results["table6"].column("delta_pct")
    return all(b <= a + 0.5 for a, b in zip(deltas, deltas[1:]))


def _capacity_monotone(results):
    rows = results["fig9"].rows
    alloy = [row[3] for row in rows]
    return all(b >= a - 0.01 for a, b in zip(alloy, alloy[1:]))


def _burst8_cheap(results):
    base = results["burst8"].row_by_key("alloy-map-i")[1]
    burst8 = results["burst8"].row_by_key("alloy-burst8")[1]
    return base - 6.0 < burst8 <= base + 1.0


def _twoway_not_worth_it(results):
    one = results["twoway"].row_by_key("alloy-map-i")
    two = results["twoway"].row_by_key("alloy-2way")
    latency_worse = two[3] > one[3]
    no_big_win = two[1] < one[1] + 5.0
    return latency_worse and no_big_win


def _improvement_ladder(results):
    improvements = results["table7"].column("improvement_pct")
    return all(b >= a - 0.5 for a, b in zip(improvements, improvements[1:]))


def _fig3_exact(results):
    for row in results["fig3"].rows:
        _, _, _, cycles, paper = row
        if paper != "-" and cycles != paper:
            return False
    return True


CRITERIA = (
    Criterion(
        "fig3-cycle-exact",
        "isolated-access latencies match the paper cycle-for-cycle",
        ("fig3",),
        _fig3_exact,
    ),
    Criterion(
        "potential-ordering",
        "LH-Cache < SRAM-Tag < IDEAL-LO (Figure 4)",
        ("fig4",),
        _fig4_ordering,
    ),
    Criterion(
        "alloy-beats-sram",
        "Alloy+MAP-I outperforms impractical SRAM-Tags (the title claim)",
        ("fig4", "fig8"),
        _alloy_beats_sram,
    ),
    Criterion(
        "hit-latency-ordering",
        "hit latency Alloy < SRAM-Tag < LH-Cache, LH near 107 (Figure 10)",
        ("fig10",),
        _hit_latency_ordering,
    ),
    Criterion(
        "missmap-psl-tax",
        "MissMap prediction is worse than no prediction (Figure 6)",
        ("fig6",),
        _missmap_worse_than_nopred,
    ),
    Criterion(
        "map-i-near-perfect",
        "MAP-I lands within 10% of the perfect predictor (Figure 8)",
        ("fig8",),
        _map_i_near_perfect,
    ),
    Criterion(
        "pam-bandwidth-waste",
        "PAM wastefully sends a large share of hits to memory (Table 5)",
        ("table5",),
        _pam_wastes_bandwidth,
    ),
    Criterion(
        "associativity-gap-shrinks",
        "29-way vs 1-way hit-rate gap shrinks with capacity (Table 6)",
        ("table6",),
        _gap_shrinks_with_size,
    ),
    Criterion(
        "capacity-monotone",
        "Alloy Cache speedup grows with cache size (Figure 9)",
        ("fig9",),
        _capacity_monotone,
    ),
    Criterion(
        "burst8-cheap",
        "power-of-two burst restriction costs only a little (Section 6.5)",
        ("burst8",),
        _burst8_cheap,
    ),
    Criterion(
        "twoway-not-worth-it",
        "two-way Alloy pays in latency without a decisive win (Section 6.7)",
        ("twoway",),
        _twoway_not_worth_it,
    ),
    Criterion(
        "room-ladder",
        "MAP-I <= Perfect <= IDEAL-LO <= NoTagOverhead (Table 7)",
        ("table7",),
        _improvement_ladder,
    ),
)


def run(quick: bool = False) -> ExperimentResult:
    # Imported here to avoid a registry <-> scorecard import cycle.
    from repro.experiments.registry import run_experiment

    needed = sorted({e for c in CRITERIA for e in c.experiments})
    results = {e: run_experiment(e, quick=quick) for e in needed}

    card = ExperimentResult(
        experiment_id="scorecard",
        title="Reproduction scorecard (paper-claim shape checks)",
        headers=["criterion", "verdict", "claim"],
    )
    passed = 0
    for criterion in CRITERIA:
        ok = criterion.check(results)
        passed += ok
        card.add_row(criterion.name, "PASS" if ok else "FAIL", criterion.claim)
    card.add_note(f"{passed}/{len(CRITERIA)} criteria passed")
    if quick:
        card.add_note(
            "quick mode uses short traces; borderline criteria can flip — "
            "full mode matches EXPERIMENTS.md"
        )
    return card
