"""Figure 6: Alloy Cache with no predictor, MissMap, and a perfect predictor,
compared against the impractical SRAM-Tag design."""

from __future__ import annotations

from repro.experiments.common import design_geomean, primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = ("alloy-nopred", "alloy-missmap", "alloy-perfect", "sram-tag")

#: Paper average improvements: Alloy+NoPred 21%, Alloy+MissMap below NoPred,
#: Alloy+Perfect 37%, SRAM-Tag ~24%.
PAPER_IMPROVEMENT = {
    "alloy-nopred": 21.0,
    "alloy-missmap": 19.0,
    "alloy-perfect": 37.0,
    "sram-tag": 23.8,
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Alloy Cache miss-handling options vs SRAM-Tag (256 MB)",
        headers=["workload", *DESIGNS],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for benchmark in primary_names():
        result.add_row(
            benchmark, *(results[(d, benchmark)][0] for d in DESIGNS)
        )
    result.add_row("gmean", *(design_geomean(results, d) for d in DESIGNS))
    result.add_note(
        "expected shape: MissMap's 24-cycle PSL on every access makes it "
        "WORSE than no prediction; a perfect predictor is best"
    )
    result.add_note(
        "paper improvements: "
        + ", ".join(f"{d}~{v}%" for d, v in PAPER_IMPROVEMENT.items())
    )
    return result
