"""Experiment registry: paper artifact id -> runner."""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    energy,
    extensions,
    overheads,
    scorecard,
    fig1,
    fig3,
    fig4,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.report import ExperimentResult

Runner = Callable[[bool], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table1": table1.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "burst8": ablations.run_burst8,
    "twoway": ablations.run_twoway,
    "psl-sweep": extensions.run_psl_sweep,
    "mact-sweep": extensions.run_mact_sweep,
    "lh-replacement": extensions.run_lh_replacement,
    "mlp-sweep": extensions.run_mlp_sweep,
    "victim-cache": extensions.run_victim_cache,
    "page-policy": extensions.run_page_policy,
    "energy": energy.run,
    "overheads": overheads.run,
    "scorecard": scorecard.run,
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up a runner; raises ``KeyError`` with the known ids."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by paper artifact id."""
    return get_experiment(experiment_id)(quick)
