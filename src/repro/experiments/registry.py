"""Experiment registry: paper artifact id -> runner, plus the batch executor
used by the CLI (whole experiments fan out over worker processes; each
experiment's inner (design x benchmark) grid additionally goes through
:func:`repro.sim.parallel.run_sweep`)."""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Tuple

from repro.experiments import (
    ablations,
    energy,
    extensions,
    overheads,
    scorecard,
    fig1,
    fig3,
    fig4,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.report import ExperimentResult

Runner = Callable[[bool], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "table1": table1.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "burst8": ablations.run_burst8,
    "twoway": ablations.run_twoway,
    "psl-sweep": extensions.run_psl_sweep,
    "mact-sweep": extensions.run_mact_sweep,
    "lh-replacement": extensions.run_lh_replacement,
    "mlp-sweep": extensions.run_mlp_sweep,
    "victim-cache": extensions.run_victim_cache,
    "page-policy": extensions.run_page_policy,
    "energy": energy.run,
    "overheads": overheads.run,
    "scorecard": scorecard.run,
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up a runner; raises ``KeyError`` with the known ids."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(experiment_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by paper artifact id.

    The run is wrapped in :func:`repro.experiments.common.experiment_job`,
    so its sweeps land as named, journaled jobs (``fig4``,
    ``table1-quick``, …) that a killed run resumes from.
    """
    from repro.experiments.common import experiment_job

    name = experiment_id.lower() + ("-quick" if quick else "")
    with experiment_job(name):
        return get_experiment(experiment_id)(quick)


def _run_one(args: Tuple[str, bool]) -> Tuple[str, ExperimentResult, float]:
    """Worker entry point: run one experiment, return (id, result, seconds)."""
    experiment_id, quick = args
    started = time.time()
    result = run_experiment(experiment_id, quick=quick)
    return experiment_id, result, time.time() - started


def run_experiments(
    experiment_ids: Iterable[str],
    quick: bool = False,
    jobs: int = 1,
) -> List[Tuple[str, ExperimentResult, float]]:
    """Run several experiments, serially or over a process pool.

    Returns ``(id, result, seconds)`` triples in the requested order.
    Experiment-level parallelism composes with the per-sweep executor:
    each worker's inner sweeps still consult the shared on-disk cache.
    """
    work = [(experiment_id, quick) for experiment_id in experiment_ids]
    if jobs <= 1 or len(work) == 1:
        return [_run_one(item) for item in work]
    import multiprocessing

    with multiprocessing.Pool(min(jobs, len(work))) as pool:
        return pool.map(_run_one, work)
