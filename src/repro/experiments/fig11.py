"""Figure 11: the remaining (lower memory intensity) SPEC workloads."""

from __future__ import annotations

from repro.experiments.common import design_geomean, secondary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = ("lh-cache", "sram-tag", "alloy-map-i")

#: Paper geomean improvements over these workloads: LH 3%, SRAM-Tag 7.3%,
#: Alloy Cache 11%.
PAPER_IMPROVEMENT = {"lh-cache": 3.0, "sram-tag": 7.3, "alloy-map-i": 11.0}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="Other SPEC workloads (lower memory intensity, 256 MB)",
        headers=["workload", *DESIGNS],
    )
    names = secondary_names()
    if quick:
        names = names[:5]
    results = sweep(DESIGNS, names, quick=quick)
    for benchmark in names:
        result.add_row(
            benchmark, *(results[(d, benchmark)][0] for d in DESIGNS)
        )
    result.add_row("gmean", *(design_geomean(results, d) for d in DESIGNS))
    result.add_note(
        "expected shape: all improvements are small (low memory intensity) "
        "but the ordering LH < SRAM-Tag < Alloy holds; paper gmeans: "
        + ", ".join(f"{d}~{v}%" for d, v in PAPER_IMPROVEMENT.items())
    )
    return result
