"""Table 5: prediction-scenario breakdown for each predictor.

Four scenarios per L3 (read) miss: serviced by memory or by the DRAM cache,
crossed with the predictor's call. Scenario 2 (predicted memory, actually
cache) wastes bandwidth; scenario 3 (predicted cache, actually memory) adds
latency.
"""

from __future__ import annotations

from repro.experiments.common import primary_names, sweep
from repro.experiments.report import ExperimentResult

DESIGNS = (
    "alloy-sam",
    "alloy-pam",
    "alloy-map-g",
    "alloy-map-i",
    "alloy-perfect",
)

LABELS = {
    "alloy-sam": "SAM",
    "alloy-pam": "PAM",
    "alloy-map-g": "MAP-G",
    "alloy-map-i": "MAP-I",
    "alloy-perfect": "Perfect",
}

#: Paper Table 5 (percent of L3 misses): columns are
#: (mem/mem, mem-pred/cache-actual is col4... ) — see headers below.
PAPER = {
    "SAM": (0.0, 0.0, 51.8, 48.1, 48.1),
    "PAM": (51.8, 48.2, 0.0, 0.0, 51.8),
    "MAP-G": (44.9, 11.0, 6.9, 37.2, 82.1),
    "MAP-I": (28.3, 1.9, 3.5, 26.2, 94.5),
    "Perfect": (51.8, 0.0, 0.0, 48.2, 100.0),
}


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table5",
        title="Predictor accuracy scenarios (% of L3 read misses, 256 MB)",
        headers=[
            "predictor",
            "mem/pred-mem",
            "cache/pred-mem",
            "mem/pred-cache",
            "cache/pred-cache",
            "accuracy_pct",
            "paper_accuracy",
        ],
    )
    results = sweep(DESIGNS, primary_names(), quick=quick)
    for design in DESIGNS:
        totals = {
            "pred_mem_actual_mem": 0,
            "pred_mem_actual_cache": 0,
            "pred_cache_actual_mem": 0,
            "pred_cache_actual_cache": 0,
        }
        for benchmark in primary_names():
            _, r = results[(design, benchmark)]
            for key in totals:
                totals[key] += r.predictor_scenarios.get(key, 0)
        grand = sum(totals.values()) or 1
        pct = {k: 100.0 * v / grand for k, v in totals.items()}
        accuracy = pct["pred_mem_actual_mem"] + pct["pred_cache_actual_cache"]
        label = LABELS[design]
        result.add_row(
            label,
            pct["pred_mem_actual_mem"],
            pct["pred_mem_actual_cache"],
            pct["pred_cache_actual_mem"],
            pct["pred_cache_actual_cache"],
            accuracy,
            PAPER[label][4],
        )
    result.add_note(
        "expected shape: PAM wastes ~half the accesses (cache hits sent to "
        "memory anyway); MAP-I is the most accurate practical predictor"
    )
    return result
