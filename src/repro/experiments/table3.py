"""Table 3: workload characteristics (perfect-L3 speedup, MPKI, footprint)."""

from __future__ import annotations

from repro.experiments.common import reads_for
from repro.experiments.report import ExperimentResult
from repro.sim.config import SystemConfig
from repro.sim.runner import speedup
from repro.units import pretty_size
from repro.workloads.spec import PRIMARY_BENCHMARKS, build_workload


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table3",
        title="Benchmark characteristics (rate-8)",
        headers=[
            "workload",
            "perfect_l3_speedup",
            "paper_speedup",
            "mpki",
            "paper_mpki",
            "footprint",
            "paper_footprint",
        ],
    )
    config = SystemConfig()
    reads = reads_for(quick)
    for name, spec in PRIMARY_BENCHMARKS.items():
        s, _ = speedup("perfect-l3", name, config, reads_per_core=reads)
        workload = build_workload(
            name,
            num_cores=config.num_cores,
            reads_per_core=reads,
            capacity_scale=config.capacity_scale,
        )
        result.add_row(
            name,
            s,
            spec.paper_perfect_l3_speedup,
            workload.mpki,
            spec.paper_mpki,
            pretty_size(
                sum(c.region_bytes for c in spec.pattern.components)
                * config.num_cores
            ),
            pretty_size(spec.paper_footprint_bytes),
        )
    result.add_note(
        "footprint column is the nominal (unscaled) region each rate-8 "
        "workload would touch given unbounded trace length"
    )
    return result
