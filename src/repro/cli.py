"""Command-line interface: regenerate paper tables and figures.

Usage::

    repro --list                 # show every experiment id
    repro fig4                   # regenerate Figure 4 (full traces)
    repro table1 fig10 --quick   # quick mode (short traces)
    repro all --quick            # everything
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _run_one(args: Tuple[str, bool]):
    """Worker entry point: run one experiment, return (id, result, seconds)."""
    experiment_id, quick = args
    started = time.time()
    result = run_experiment(experiment_id, quick=quick)
    return experiment_id, result, time.time() - started


def _run_all(requested, quick: bool, jobs: int):
    """Run experiments serially or over a process pool, preserving order."""
    work = [(experiment_id, quick) for experiment_id in requested]
    if jobs <= 1 or len(work) == 1:
        return [_run_one(item) for item in work]
    import multiprocessing

    with multiprocessing.Pool(min(jobs, len(work))) as pool:
        return pool.map(_run_one, work)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Fundamental Latency Trade-offs in Architecting "
            "DRAM Caches' (Qureshi & Loh, MICRO 2012)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig4 table1), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short traces for a fast smoke run",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="also render numeric columns as ASCII bar charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel worker processes",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(EXPERIMENTS)

    unknown = [e for e in requested if e.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    prepared = _run_all(requested, args.quick, args.jobs)
    for experiment_id, result, elapsed in prepared:
        print(result.render())
        if args.bars:
            from repro.experiments.report import render_bars

            for header in result.headers[1:]:
                column = result.column(header)
                if column and all(isinstance(c, (int, float)) for c in column):
                    print()
                    print(render_bars(result, header))
                    break
        print(f"({elapsed:.1f}s)")
        print()
        if args.csv:
            from pathlib import Path

            from repro.experiments.report import write_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            write_csv(result, out_dir / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
