"""Command-line interface: regenerate paper tables and figures, run sweeps.

Usage::

    repro --list                 # show every experiment id
    repro fig4                   # regenerate Figure 4 (full traces)
    repro table1 fig10 --quick   # quick mode (short traces)
    repro all --quick            # everything
    repro sweep --designs alloy,no-cache --benchmarks mcf,gcc -j 4

The ``sweep`` verb runs an ad-hoc (design x benchmark) grid through the
parallel executor in :mod:`repro.sim.parallel`, printing per-cell telemetry
(wall seconds, heap events, events/sec, cache hit/miss) and speedups over
the ``no-cache`` baseline. Completed cells persist under ``.repro_cache/``
(override with ``REPRO_CACHE_DIR``/``--cache-dir``; disable with
``--no-cache``), so repeating a sweep — or resuming after a crash —
simulates only the missing cells.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiments

#: Friendly aliases accepted by ``repro sweep --designs``.
_DESIGN_ALIASES = {
    "alloy": "alloy-map-i",
    "missmap": "alloy-missmap",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Fundamental Latency Trade-offs in Architecting "
            "DRAM Caches' (Qureshi & Loh, MICRO 2012)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig4 table1), 'all', or the 'sweep' verb",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short traces for a fast smoke run",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="also render numeric columns as ASCII bar charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel worker processes",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a (design x benchmark) sweep through the parallel "
            "executor with the persistent result cache"
        ),
    )
    parser.add_argument(
        "--designs",
        default="alloy-map-i,sram-tag,lh-cache,ideal-lo",
        help="comma-separated design names ('alloy' = alloy-map-i)",
    )
    parser.add_argument(
        "--benchmarks",
        default="mcf_r,lbm_r,soplex_r,milc_r",
        help="comma-separated benchmark names (the _r suffix is optional)",
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=6000,
        metavar="N",
        help="trace reads per core (default 6000)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        metavar="F",
        help="functional-warmup fraction of each trace (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload generation seed"
    )
    parser.add_argument(
        "-j",
        "--max-workers",
        type=int,
        default=1,
        metavar="N",
        help="simulate up to N cells in parallel worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default .repro_cache or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the persistent result cache",
    )
    parser.add_argument(
        "--baseline",
        default="no-cache",
        help="design speedups are normalized against (default no-cache)",
    )
    return parser


def build_breakdown_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro breakdown",
        description=(
            "Per-stage request-latency breakdowns. By default, replay the "
            "paper's isolated Figure 3 accesses through the real designs "
            "and check them against the analytic totals cycle-for-cycle; "
            "with --benchmarks, run full-system simulations and show the "
            "average lifecycle-stage attribution per design/workload."
        ),
    )
    parser.add_argument(
        "--designs",
        default="alloy-map-i,sram-tag,lh-cache,ideal-lo",
        help=(
            "comma-separated design names for --benchmarks mode "
            "('alloy' = alloy-map-i)"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help=(
            "comma-separated benchmark names; when given, run full-system "
            "sims instead of the isolated replay"
        ),
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=4000,
        metavar="N",
        help="trace reads per core in --benchmarks mode (default 4000)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        metavar="F",
        help="functional-warmup fraction of each trace (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload generation seed"
    )
    parser.add_argument(
        "--width",
        type=int,
        default=48,
        metavar="COLS",
        help="width of the ASCII stage bars (default 48)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the persistent result cache in --benchmarks mode",
    )
    return parser


#: One glyph per lifecycle stage, in display order (queue first — it is
#: whatever delayed the request before any device work started).
_STAGE_GLYPHS = (
    ("queue", "q"),
    ("predictor", "p"),
    ("tag", "t"),
    ("data", "d"),
    ("memory", "m"),
)


def _stage_bar(stages: dict, total: float, width: int) -> str:
    """Render a stage dict as a proportional ASCII bar (one glyph/stage)."""
    if total <= 0:
        return ""
    out = []
    for stage, glyph in _STAGE_GLYPHS:
        cycles = stages.get(stage, 0.0)
        out.append(glyph * int(round(cycles / total * width)))
    return "".join(out)


def _breakdown_main(argv: List[str]) -> int:
    args = build_breakdown_parser().parse_args(argv)
    legend = "  ".join(f"{glyph}={stage}" for stage, glyph in _STAGE_GLYPHS)

    if not args.benchmarks.strip():
        from repro.analysis.latency import measured_breakdown

        rows = measured_breakdown()
        print("isolated-access lifecycle breakdown (measured vs Figure 3)")
        print(f"stages: {legend}")
        print()
        header = (
            f"{'design':<10} {'type':<4} {'event':<5} "
            f"{'measured':>8} {'analytic':>8}  stages"
        )
        print(header)
        mismatches = 0
        for (design, access_type, event), row in rows.items():
            mark = "ok" if row.matches_analytic else "MISMATCH"
            if not row.matches_analytic:
                mismatches += 1
            bar = _stage_bar(row.stages, row.total, args.width)
            print(
                f"{design:<10} {access_type:<4} {event:<5} "
                f"{row.total:>8.0f} {row.analytic_total:>8}  [{bar}] {mark}"
            )
        if mismatches:
            print(f"\n{mismatches} rows diverge from the analytic model")
            return 1
        print("\nall rows match the analytic model cycle-exactly")
        return 0

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.sim.parallel import make_cells, run_sweep
    from repro.workloads.spec import get_benchmark

    designs = [
        _DESIGN_ALIASES.get(name.strip().lower(), name.strip().lower())
        for name in args.designs.split(",")
        if name.strip()
    ]
    unknown = [d for d in designs if d not in DESIGN_NAMES]
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(DESIGN_NAMES)}", file=sys.stderr)
        return 2
    try:
        benchmarks = [
            get_benchmark(name.strip()).name
            for name in args.benchmarks.split(",")
            if name.strip()
        ]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    cells = make_cells(
        designs,
        benchmarks,
        reads_per_core=args.reads,
        warmup_fraction=args.warmup,
        seed=args.seed,
    )
    report = run_sweep(cells, use_cache=not args.no_cache)

    print("full-system lifecycle breakdown (mean cycles per demand read)")
    print(f"stages: {legend}")
    for benchmark in benchmarks:
        print(f"\n{benchmark}:")
        for design in designs:
            result = report.result(design, benchmark)
            means = result.stage_latency_means
            total = result.avg_read_latency
            bar = _stage_bar(means, total, args.width)
            parts = "  ".join(
                f"{stage}={means.get(stage, 0.0):6.1f}"
                for stage, _ in _STAGE_GLYPHS
            )
            audit = (
                ""
                if result.unattributed_cycles == 0
                else f"  unattributed={result.unattributed_cycles:.1f}"
            )
            print(
                f"  {design:<14} {total:7.1f} cyc  [{bar}]\n"
                f"  {'':<14} {parts}{audit}"
            )
    return 0


def _sweep_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.sim.parallel import ResultCache, make_cells, run_sweep
    from repro.sim.runner import geometric_mean
    from repro.workloads.spec import get_benchmark

    args = build_sweep_parser().parse_args(argv)
    if args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2

    designs = [
        _DESIGN_ALIASES.get(name.strip().lower(), name.strip().lower())
        for name in args.designs.split(",")
        if name.strip()
    ]
    unknown = [d for d in designs if d not in DESIGN_NAMES]
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(DESIGN_NAMES)}", file=sys.stderr)
        return 2
    try:
        benchmarks = [
            get_benchmark(name.strip()).name
            for name in args.benchmarks.split(",")
            if name.strip()
        ]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    baseline = _DESIGN_ALIASES.get(args.baseline, args.baseline)
    grid = designs if baseline in designs else [baseline, *designs]
    cells = make_cells(
        grid,
        benchmarks,
        reads_per_core=args.reads,
        warmup_fraction=args.warmup,
        seed=args.seed,
    )
    cache = ResultCache(
        Path(args.cache_dir) if args.cache_dir else None,
        persist=False if args.no_cache else None,
    )
    report = run_sweep(
        cells,
        max_workers=args.max_workers,
        cache=cache,
        use_cache=not args.no_cache,
    )

    print(report.render())
    print()
    speedups = report.speedups(baseline)
    print(f"speedup vs {baseline}:")
    header = f"{'benchmark':<12}" + "".join(f"{d:>16}" for d in designs)
    print(header)
    for benchmark in benchmarks:
        row = f"{benchmark:<12}" + "".join(
            f"{speedups[(d, benchmark)]:>16.3f}" for d in designs
        )
        print(row)
    gmeans = []
    for design in designs:
        values = [speedups[(design, b)] for b in benchmarks]
        try:
            gmeans.append(f"{geometric_mean(values):>16.3f}")
        except ValueError:
            gmeans.append(f"{'n/a':>16}")
    print(f"{'gmean':<12}" + "".join(gmeans))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "breakdown":
        return _breakdown_main(argv[1:])

    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        print(
            "\nother verbs:\n"
            "  sweep (see 'repro sweep --help')\n"
            "  breakdown (see 'repro breakdown --help')"
        )
        return 0

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(EXPERIMENTS)

    unknown = [e for e in requested if e.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    prepared = run_experiments(requested, quick=args.quick, jobs=args.jobs)
    for experiment_id, result, elapsed in prepared:
        print(result.render())
        if args.bars:
            from repro.experiments.report import render_bars

            for header in result.headers[1:]:
                column = result.column(header)
                if column and all(isinstance(c, (int, float)) for c in column):
                    print()
                    print(render_bars(result, header))
                    break
        print(f"({elapsed:.1f}s)")
        print()
        if args.csv:
            from pathlib import Path

            from repro.experiments.report import write_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            write_csv(result, out_dir / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
