"""Command-line interface: regenerate paper tables and figures, run sweeps.

Usage::

    repro --list                 # show every experiment id
    repro fig4                   # regenerate Figure 4 (full traces)
    repro table1 fig10 --quick   # quick mode (short traces)
    repro all --quick            # everything
    repro sweep --designs alloy,no-cache --benchmarks mcf,gcc -j 4
    repro sweep --job nightly -j 8   # journaled: resumable after a kill
    repro sweep --resume nightly     # finish whatever the journal misses
    repro explore --strategy halving # Pareto search of the config space
    repro jobs list                  # job admin (also: show / rm)
    repro cache stats                # store admin (also: prune / clear)
    repro serve -j 4 --port 7341     # serve jobs to concurrent clients

The ``sweep`` verb runs an ad-hoc (design x benchmark) grid through the
parallel executor in :mod:`repro.sim.parallel`, printing per-cell telemetry
(sim wall seconds, heap events, events/sec, trace source, cache hit/miss),
the trace-build vs simulation amortization summary, and speedups over
the ``no-cache`` baseline. Completed cells persist under ``.repro_cache/``
(override with ``REPRO_CACHE_DIR``/``--cache-dir``; disable with
``--no-cache``), so repeating a sweep — or resuming after a crash —
simulates only the missing cells. ``--job NAME`` additionally journals
every completion under ``.repro_cache/jobs/`` (see :mod:`repro.jobs`), so
a killed run picks up exactly where it stopped via ``--resume NAME``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiments

#: Friendly aliases accepted by ``repro sweep --designs``.
_DESIGN_ALIASES = {
    "alloy": "alloy-map-i",
    "missmap": "alloy-missmap",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Fundamental Latency Trade-offs in Architecting "
            "DRAM Caches' (Qureshi & Loh, MICRO 2012)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig4 table1), 'all', or the 'sweep' verb",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short traces for a fast smoke run",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write each experiment's table as DIR/<id>.csv",
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="also render numeric columns as ASCII bar charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel worker processes",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a (design x benchmark) sweep through the parallel "
            "executor with the persistent result cache"
        ),
    )
    parser.add_argument(
        "--designs",
        default="alloy-map-i,sram-tag,lh-cache,ideal-lo",
        help="comma-separated design names ('alloy' = alloy-map-i)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help=(
            "comma-separated workload names: catalog benchmarks (the _r "
            "suffix is optional) and/or mixes mix1..mix7 "
            "(default mcf_r,lbm_r,soplex_r,milc_r; empty when --trace "
            "is given)"
        ),
    )
    parser.add_argument(
        "--trace",
        action="append",
        default=None,
        metavar="FILE",
        help=(
            "add an external trace file (DRAMSim2 k6/mase or interchange "
            "CSV, optionally gzipped) as a workload column; repeatable"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("k6", "mase", "csv"),
        default=None,
        help=(
            "format of --trace files (default: sniffed from the file "
            "name: k6*/mase* prefix or .csv[.gz] extension)"
        ),
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=6000,
        metavar="N",
        help="trace reads per core (default 6000)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        metavar="F",
        help="functional-warmup fraction of each trace (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload generation seed"
    )
    parser.add_argument(
        "-j",
        "--max-workers",
        type=int,
        default=1,
        metavar="N",
        help="simulate up to N cells in parallel worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default .repro_cache or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the persistent result cache",
    )
    parser.add_argument(
        "--baseline",
        default="no-cache",
        help="design speedups are normalized against (default no-cache)",
    )
    parser.add_argument(
        "--expect-cache-hits",
        type=int,
        default=None,
        metavar="N",
        help=(
            "exit nonzero unless exactly N cells were served from the "
            "persistent result cache (CI smoke assertion)"
        ),
    )
    parser.add_argument(
        "--job",
        metavar="NAME",
        help=(
            "run the sweep as a named, journaled job: every completed "
            "cell is checkpointed under <cache-dir>/jobs/, so a killed "
            "run resumes with 'repro sweep --resume NAME'"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="REF",
        help=(
            "resume a journaled job by name or id, replaying completed "
            "cells from its journal and simulating only the missing ones "
            "(the grid flags are ignored; the job manifest defines it)"
        ),
    )
    return parser


def build_jobs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description=(
            "Inspect and manage journaled jobs under <cache-dir>/jobs/"
        ),
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("list", help="list every job with completion counts")
    show = sub.add_parser("show", help="show one job's manifest and journal")
    show.add_argument("ref", help="job name or id")
    rm = sub.add_parser("rm", help="delete a job directory (and journal)")
    rm.add_argument("ref", help="job name or id")
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (default .repro_cache or REPRO_CACHE_DIR)",
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "Administer the persistent store: cached cell results, "
            "shared trace arenas, and job journals"
        ),
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("stats", help="size and entry counts per store kind")
    prune = sub.add_parser(
        "prune", help="evict oldest entries until the store fits a budget"
    )
    prune.add_argument(
        "--max-bytes",
        required=True,
        metavar="SIZE",
        help="size budget, e.g. 200M, 1G, 500000 (bytes)",
    )
    prune.add_argument(
        "--min-age",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "never evict entries modified within the last SECONDS "
            "(protects work concurrent clients just finished; default 0)"
        ),
    )
    clear = sub.add_parser("clear", help="delete store contents")
    clear.add_argument(
        "--results", action="store_true", help="clear only cached results"
    )
    clear.add_argument(
        "--traces", action="store_true", help="clear only trace arenas"
    )
    clear.add_argument(
        "--jobs", action="store_true", help="clear only job directories"
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (default .repro_cache or REPRO_CACHE_DIR)",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the resumable job layer to concurrent clients over "
            "NDJSON/TCP (plus HTTP GET /metrics on the same port), with "
            "a bounded job queue, per-client rate limits, incremental "
            "per-cell result streaming, and graceful drain on SIGTERM"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: kernel-assigned, printed on startup)",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port to PATH (for scripted clients / CI)",
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve one NDJSON session over stdin/stdout instead of TCP",
    )
    parser.add_argument(
        "-j",
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width used for every job (default 1)",
    )
    parser.add_argument(
        "--job-slots",
        type=int,
        default=2,
        metavar="N",
        help="jobs simulating concurrently (default 2)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=8,
        metavar="N",
        help="jobs waiting for a slot before submits are rejected",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=50.0,
        metavar="MSGS",
        help="per-client message rate limit in msgs/sec (0 disables)",
    )
    parser.add_argument(
        "--burst",
        type=int,
        default=20,
        metavar="N",
        help="per-client rate-limit burst allowance (default 20)",
    )
    parser.add_argument(
        "--max-client-jobs",
        type=int,
        default=4,
        metavar="N",
        help="in-flight jobs per connection (default 4)",
    )
    parser.add_argument(
        "--idle-segments",
        type=int,
        default=4,
        metavar="N",
        help=(
            "idle shared-memory workload segments kept mapped between "
            "jobs (default 4; 0 releases eagerly)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default .repro_cache or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the persistent result cache",
    )
    return parser


def _serve_main(argv: List[str]) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve.server import ServeConfig, run_server, run_stdio

    args = build_serve_parser().parse_args(argv)
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.job_slots < 1:
        print(
            f"--job-slots must be >= 1, got {args.job_slots}",
            file=sys.stderr,
        )
        return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_slots=args.job_slots,
        max_queue=args.max_queue,
        rate=args.rate,
        burst=args.burst,
        max_client_jobs=args.max_client_jobs,
        idle_segments=args.idle_segments,
        use_cache=not args.no_cache,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    if args.stdio:
        return asyncio.run(run_stdio(config))
    port_file = Path(args.port_file) if args.port_file else None
    try:
        return asyncio.run(run_server(config, port_file=port_file))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C race
        return 0


def build_explore_parser() -> argparse.ArgumentParser:
    from repro.explore import (
        DEFAULT_BENCHMARKS,
        DEFAULT_DESIGNS,
        STACKED_TIMING_PRESETS,
        STRATEGIES,
    )

    parser = argparse.ArgumentParser(
        prog="repro explore",
        description=(
            "Design-space exploration over the DRAM-cache config space "
            "(design x page policy x burst x capacity x timing), with a "
            "Pareto-frontier report over latency / hit rate / stacked-bus "
            "pressure / energy-delay^2. Every round is a journaled job, "
            "so a killed exploration resumes when rerun with identical "
            "arguments."
        ),
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="halving",
        help=(
            "search strategy: full grid, seeded random sample, or "
            "successive halving (short traces -> kill dominated configs "
            "-> longer traces; default)"
        ),
    )
    parser.add_argument(
        "--name",
        default="explore",
        help="job-name prefix for the checkpointed rounds (default explore)",
    )
    parser.add_argument(
        "--designs",
        default=",".join(DEFAULT_DESIGNS),
        help="comma-separated design families to search over",
    )
    parser.add_argument(
        "--benchmarks",
        default=",".join(DEFAULT_BENCHMARKS),
        help=(
            "comma-separated workloads each config is scored on: catalog "
            "benchmarks and/or mixes mix1..mix7"
        ),
    )
    parser.add_argument(
        "--page-policies",
        default="open,closed",
        help="stacked-DRAM page policies axis (default open,closed)",
    )
    parser.add_argument(
        "--line-bursts",
        default="4,8",
        help="stacked-bus cycles per 64B line axis (default 4,8)",
    )
    parser.add_argument(
        "--cache-mbs",
        default="128,256",
        help="DRAM-cache capacities in MB (default 128,256)",
    )
    parser.add_argument(
        "--timings",
        default="paper,fast,slow",
        help=(
            "stacked timing presets "
            f"(known: {','.join(sorted(STACKED_TIMING_PRESETS))})"
        ),
    )
    parser.add_argument(
        "--capacity-scales",
        default="256",
        help="workload capacity-scale factors (default 256)",
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=3000,
        metavar="N",
        help="first-round trace reads per core (default 3000)",
    )
    parser.add_argument(
        "--eta",
        type=int,
        default=3,
        metavar="K",
        help="halving: survivor divisor and fidelity multiplier (default 3)",
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=8,
        metavar="N",
        help="halving: stop once this many configs remain (default 8)",
    )
    parser.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        metavar="N",
        help="halving: hard cap on rounds (default: run until --keep)",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=32,
        metavar="N",
        help="random: number of sampled configs (default 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload/sampling seed"
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        metavar="F",
        help="functional-warmup fraction of each trace (default 0.25)",
    )
    parser.add_argument(
        "-j",
        "--max-workers",
        type=int,
        default=1,
        metavar="N",
        help="simulate up to N cells in parallel worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the persistent result cache",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="also write the full report (rounds, frontier) as JSON",
    )
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Time a pinned (design x benchmark x reads) grid, report "
            "events/sec and wall seconds per cell (warmup-discarded "
            "medians), and emit a schema-versioned BENCH_<date>.json"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="time only the quick subset of the pinned grid (CI smoke)",
    )
    parser.add_argument(
        "--envelope",
        action="store_true",
        help=(
            "time only the pinned envelope cells (multi-way Alloy, victim "
            "buffer, mshrs=4) that gate the batch engine's newer kernels"
        ),
    )
    parser.add_argument(
        "--designs",
        default=None,
        help="comma-separated design names overriding the pinned grid",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark names overriding the pinned grid",
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=None,
        metavar="N",
        help="trace reads per core (default: the pinned grid's 2000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="kept timing repeats per cell (default 3; --quick default 2)",
    )
    parser.add_argument(
        "--discard",
        type=int,
        default=1,
        metavar="N",
        help="leading warmup repeats to discard per cell (default 1)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="output JSON path (default BENCH_<date>.json in the cwd)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the table only; do not write a BENCH_*.json",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline BENCH_*.json to compare against (embedded into the "
            "emitted payload); default with --check: newest BENCH_*.json "
            "in the cwd"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "gate against the baseline: exit nonzero when any shared "
            "cell regresses beyond the tolerance band"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        metavar="F",
        help="allowed fractional events/sec regression (default 0.30)",
    )
    parser.add_argument(
        "--engine",
        choices=("interp", "batch", "auto"),
        default="",
        help=(
            "simulation engine to time (default: the SystemConfig default, "
            "i.e. the interpreter unless REPRO_ENGINE overrides it; "
            "'auto' picks batch whenever the cell is inside its envelope)"
        ),
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="F",
        help=(
            "require every shared cell to beat the (host-scaled) baseline "
            "by at least this factor; exits nonzero otherwise (CI proof "
            "that --engine batch outruns the interpreter baseline)"
        ),
    )
    parser.add_argument(
        "--label",
        default="",
        help="free-form label recorded in the payload (e.g. a commit id)",
    )
    return parser


def build_golden_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro golden",
        description=(
            "Golden-results scorecard: the cycle-exact Figure 3 replay "
            "plus a pinned simulation grid, captured as canonical JSON "
            "(tests/goldens/scorecard.json)"
        ),
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check",
        action="store_true",
        help="re-simulate and diff against the committed golden file",
    )
    mode.add_argument(
        "--write",
        action="store_true",
        help="regenerate the golden file from the current code",
    )
    parser.add_argument(
        "--path",
        metavar="PATH",
        help="golden file location (default tests/goldens/scorecard.json)",
    )
    return parser


def _bench_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.perf import bench as perf_bench
    from repro.workloads.spec import resolve_workload

    args = build_bench_parser().parse_args(argv)
    designs = list(
        perf_bench.QUICK_DESIGNS if args.quick else perf_bench.DEFAULT_DESIGNS
    )
    benchmarks = list(
        perf_bench.QUICK_BENCHMARKS
        if args.quick
        else perf_bench.DEFAULT_BENCHMARKS
    )
    if args.designs:
        designs = [
            _DESIGN_ALIASES.get(name.strip().lower(), name.strip().lower())
            for name in args.designs.split(",")
            if name.strip()
        ]
        unknown = [d for d in designs if d not in DESIGN_NAMES]
        if unknown:
            print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.benchmarks:
        try:
            benchmarks = [
                resolve_workload(name.strip())
                for name in args.benchmarks.split(",")
                if name.strip()
            ]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    repeats = args.repeats
    if repeats is None:
        repeats = 2 if args.quick else perf_bench.DEFAULT_REPEATS
    if args.envelope:
        cells = perf_bench.envelope_bench_cells(
            reads_per_core=args.reads or perf_bench.DEFAULT_READS,
            engine=args.engine,
        )
    else:
        cells = perf_bench.make_bench_grid(
            designs,
            benchmarks,
            reads_per_core=args.reads or perf_bench.DEFAULT_READS,
            engine=args.engine,
        )
        if not (args.quick or args.designs or args.benchmarks):
            # The pinned default grid also times the envelope cells
            # (multi-way Alloy, victim buffer, mshrs=4) so the committed
            # baseline gates every kernel family.
            cells += perf_bench.envelope_bench_cells(
                reads_per_core=args.reads or perf_bench.DEFAULT_READS,
                engine=args.engine,
            )

    def progress(timing):
        print(
            f"  {timing.cell.cell_id:<44} "
            f"{timing.events_per_sec:>10.0f} ev/s "
            f"({timing.wall_median:.3f}s median)",
            flush=True,
        )

    print(f"timing {len(cells)} cells ({repeats} repeats each):")
    run = perf_bench.run_bench(
        cells, repeats=repeats, discard=args.discard, progress=progress
    )
    print()
    print(run.render())
    payload = run.to_payload(label=args.label)

    status = 0
    gate = args.check or args.min_speedup is not None
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None and gate:
        try:
            baseline_path = perf_bench.latest_bench_file(Path("."))
        except ValueError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        if baseline_path is None:
            print(
                "bench: no BENCH_*.json baseline found in the cwd",
                file=sys.stderr,
            )
            return 2
    if baseline_path is not None:
        try:
            baseline = perf_bench.load_bench(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        comparison = perf_bench.compare(
            payload,
            baseline,
            tolerance=args.tolerance,
            min_speedup=args.min_speedup or 0.0,
        )
        comparison["baseline_path"] = str(baseline_path)
        payload["comparison"] = comparison
        print()
        print(perf_bench.render_comparison(comparison))
        if gate and comparison["verdict"] != "pass":
            print(
                f"bench: verdict {comparison['verdict']} "
                f"(failing cells: "
                f"{', '.join(comparison['regressions']) or 'n/a'})",
                file=sys.stderr,
            )
            status = 1

    if not args.no_write:
        out = Path(args.out) if args.out else perf_bench.default_bench_path()
        perf_bench.write_bench(payload, out)
        print(f"\nwrote {out}")
    return status


def _golden_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.perf import golden as perf_golden

    args = build_golden_parser().parse_args(argv)
    path = (
        Path(args.path) if args.path else perf_golden.DEFAULT_GOLDEN_PATH
    )
    if args.write:
        payload = perf_golden.write_golden(path)
        print(
            f"wrote {path} ({len(payload['grid'])} grid cells, "
            f"{len(payload['fig3'])} fig3 rows)"
        )
        return 0
    diffs = perf_golden.check_golden(path)
    if diffs:
        print(f"golden scorecard drift vs {path}:", file=sys.stderr)
        for diff in diffs:
            print(f"  {diff}", file=sys.stderr)
        return 1
    print(f"golden scorecard intact ({path})")
    return 0


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Differential correctness check: fuzz the inlined DramDevice "
            "hot path against the reference oracle (bit-identical "
            "AccessResults, timelines, and stats), run paired full-system "
            "simulations, and exercise the runtime invariant layer "
            "(see repro.verify)"
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=25,
        metavar="N",
        help="randomized streams per device config (default 25)",
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=350,
        metavar="N",
        help="accesses per device stream (default 350)",
    )
    parser.add_argument(
        "--system-seeds",
        type=int,
        default=None,
        metavar="N",
        help="paired full-system runs (default: seeds // 10, min 1)",
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=300,
        metavar="N",
        help="trace reads per core in the system runs (default 300)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print per-config progress while the matrix runs",
    )
    return parser


def _check_main(argv: List[str]) -> int:
    from repro.verify import run_check

    args = build_check_parser().parse_args(argv)
    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2
    report = run_check(
        seeds=args.seeds,
        accesses=args.accesses,
        system_seeds=args.system_seeds,
        reads_per_core=args.reads,
        progress=print if args.report else None,
    )
    print(report.render())
    return 0 if report.ok else 1


def build_breakdown_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro breakdown",
        description=(
            "Per-stage request-latency breakdowns. By default, replay the "
            "paper's isolated Figure 3 accesses through the real designs "
            "and check them against the analytic totals cycle-for-cycle; "
            "with --benchmarks, run full-system simulations and show the "
            "average lifecycle-stage attribution per design/workload."
        ),
    )
    parser.add_argument(
        "--designs",
        default="alloy-map-i,sram-tag,lh-cache,ideal-lo",
        help=(
            "comma-separated design names for --benchmarks mode "
            "('alloy' = alloy-map-i)"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help=(
            "comma-separated benchmark names; when given, run full-system "
            "sims instead of the isolated replay"
        ),
    )
    parser.add_argument(
        "--reads",
        type=int,
        default=4000,
        metavar="N",
        help="trace reads per core in --benchmarks mode (default 4000)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=0.25,
        metavar="F",
        help="functional-warmup fraction of each trace (default 0.25)",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload generation seed"
    )
    parser.add_argument(
        "--width",
        type=int,
        default=48,
        metavar="COLS",
        help="width of the ASCII stage bars (default 48)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the persistent result cache in --benchmarks mode",
    )
    return parser


#: One glyph per lifecycle stage, in display order (queue first — it is
#: whatever delayed the request before any device work started).
_STAGE_GLYPHS = (
    ("queue", "q"),
    ("predictor", "p"),
    ("tag", "t"),
    ("data", "d"),
    ("memory", "m"),
)


def _stage_bar(stages: dict, total: float, width: int) -> str:
    """Render a stage dict as a proportional ASCII bar (one glyph/stage)."""
    if total <= 0:
        return ""
    out = []
    for stage, glyph in _STAGE_GLYPHS:
        cycles = stages.get(stage, 0.0)
        out.append(glyph * int(round(cycles / total * width)))
    return "".join(out)


def _breakdown_main(argv: List[str]) -> int:
    args = build_breakdown_parser().parse_args(argv)
    legend = "  ".join(f"{glyph}={stage}" for stage, glyph in _STAGE_GLYPHS)

    if not args.benchmarks.strip():
        from repro.analysis.latency import measured_breakdown

        rows = measured_breakdown()
        print("isolated-access lifecycle breakdown (measured vs Figure 3)")
        print(f"stages: {legend}")
        print()
        header = (
            f"{'design':<10} {'type':<4} {'event':<5} "
            f"{'measured':>8} {'analytic':>8}  stages"
        )
        print(header)
        mismatches = 0
        for (design, access_type, event), row in rows.items():
            mark = "ok" if row.matches_analytic else "MISMATCH"
            if not row.matches_analytic:
                mismatches += 1
            bar = _stage_bar(row.stages, row.total, args.width)
            print(
                f"{design:<10} {access_type:<4} {event:<5} "
                f"{row.total:>8.0f} {row.analytic_total:>8}  [{bar}] {mark}"
            )
        if mismatches:
            print(f"\n{mismatches} rows diverge from the analytic model")
            return 1
        print("\nall rows match the analytic model cycle-exactly")
        return 0

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.sim.parallel import make_cells, run_sweep
    from repro.workloads.spec import resolve_workload

    designs = [
        _DESIGN_ALIASES.get(name.strip().lower(), name.strip().lower())
        for name in args.designs.split(",")
        if name.strip()
    ]
    unknown = [d for d in designs if d not in DESIGN_NAMES]
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(DESIGN_NAMES)}", file=sys.stderr)
        return 2
    try:
        benchmarks = [
            resolve_workload(name.strip())
            for name in args.benchmarks.split(",")
            if name.strip()
        ]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    cells = make_cells(
        designs,
        benchmarks,
        reads_per_core=args.reads,
        warmup_fraction=args.warmup,
        seed=args.seed,
    )
    report = run_sweep(cells, use_cache=not args.no_cache)

    print("full-system lifecycle breakdown (mean cycles per demand read)")
    print(f"stages: {legend}")
    for benchmark in benchmarks:
        print(f"\n{benchmark}:")
        for design in designs:
            result = report.result(design, benchmark)
            means = result.stage_latency_means
            total = result.avg_read_latency
            bar = _stage_bar(means, total, args.width)
            parts = "  ".join(
                f"{stage}={means.get(stage, 0.0):6.1f}"
                for stage, _ in _STAGE_GLYPHS
            )
            audit = (
                ""
                if result.unattributed_cycles == 0
                else f"  unattributed={result.unattributed_cycles:.1f}"
            )
            print(
                f"  {design:<14} {total:7.1f} cyc  [{bar}]\n"
                f"  {'':<14} {parts}{audit}"
            )
    return 0


def _trace_cells(paths, format, designs, warmup_fraction, seed):
    """Decode external trace files into sweep cells (plus their specs).

    Each file becomes one workload column: its cells carry the content-
    keyed ``trace:`` spec as the benchmark, a config with ``num_cores``
    taken from the decoded workload (k6/mase streams are single-core),
    and ``reads_per_core=0`` (the file defines its own length). The
    decoded workload is adopted into the arena so the sweep's fetch is a
    memo hit rather than a second streaming decode.
    """
    from dataclasses import replace

    from repro.sim.config import SystemConfig
    from repro.sim.parallel import SweepCell
    from repro.workloads.arena import get_workload_arena
    from repro.workloads.tracefile import trace_workload_spec, workload_from_spec

    cells = []
    specs = []
    for path in paths:
        spec = trace_workload_spec(path, format=format)
        workload = workload_from_spec(spec)
        specs.append(spec)
        config = replace(SystemConfig(), num_cores=workload.num_cores)
        for design in designs:
            cells.append(
                SweepCell(
                    design=design,
                    benchmark=spec,
                    config=config,
                    reads_per_core=0,
                    warmup_fraction=warmup_fraction,
                    seed=seed,
                )
            )
        get_workload_arena().adopt(cells[-1].workload_params(), workload)
    return cells, specs


def _sweep_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.jobs import create_job, open_job, submit_job
    from repro.sim.parallel import ResultCache, make_cells, run_sweep
    from repro.sim.runner import geometric_mean
    from repro.workloads.spec import resolve_workload

    args = build_sweep_parser().parse_args(argv)
    if args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2
    if args.job and args.resume:
        print("--job and --resume are mutually exclusive", file=sys.stderr)
        return 2

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    cache = ResultCache(
        cache_dir,
        persist=False if args.no_cache else None,
    )
    baseline = _DESIGN_ALIASES.get(args.baseline, args.baseline)

    if args.resume:
        try:
            job = open_job(args.resume, cache_dir=cache_dir)
        except KeyError as exc:
            print(f"sweep: {exc.args[0]}", file=sys.stderr)
            return 2
        # The manifest defines the grid; rebuild the display axes from it.
        designs = list(dict.fromkeys(c.design for c in job.cells))
        benchmarks = list(dict.fromkeys(c.benchmark for c in job.cells))
        print(
            f"resuming job {job.job_id} ({job.completed_cells()}"
            f"/{len(job.cells)} cells journaled)"
        )
        report = submit_job(
            job,
            max_workers=args.max_workers,
            cache=cache,
            use_cache=not args.no_cache,
        )
    else:
        designs = [
            _DESIGN_ALIASES.get(name.strip().lower(), name.strip().lower())
            for name in args.designs.split(",")
            if name.strip()
        ]
        unknown = [d for d in designs if d not in DESIGN_NAMES]
        if unknown:
            print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
            print(f"known: {', '.join(DESIGN_NAMES)}", file=sys.stderr)
            return 2
        # --trace with no explicit --benchmarks sweeps only the traces.
        named = args.benchmarks
        if named is None:
            named = "" if args.trace else "mcf_r,lbm_r,soplex_r,milc_r"
        try:
            benchmarks = [
                resolve_workload(name.strip())
                for name in named.split(",")
                if name.strip()
            ]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

        grid = designs if baseline in designs else [baseline, *designs]
        cells = make_cells(
            grid,
            benchmarks,
            reads_per_core=args.reads,
            warmup_fraction=args.warmup,
            seed=args.seed,
        )
        if args.trace:
            try:
                trace_cells, trace_specs = _trace_cells(
                    args.trace,
                    args.format,
                    grid,
                    warmup_fraction=args.warmup,
                    seed=args.seed,
                )
            except (OSError, ValueError) as exc:
                print(f"sweep: {exc}", file=sys.stderr)
                return 2
            cells = [*cells, *trace_cells]
            benchmarks = [*benchmarks, *trace_specs]
        if not cells:
            print("sweep: no workloads selected", file=sys.stderr)
            return 2
        if args.job:
            job = create_job(args.job, cells, cache_dir=cache_dir)
            print(
                f"job {job.job_id} ({job.completed_cells()}"
                f"/{len(job.cells)} cells journaled)"
            )
            report = submit_job(
                job,
                max_workers=args.max_workers,
                cache=cache,
                use_cache=not args.no_cache,
            )
        else:
            report = run_sweep(
                cells,
                max_workers=args.max_workers,
                cache=cache,
                use_cache=not args.no_cache,
            )

    print(report.render())
    grid_designs = {c.cell.design for c in report.cells}
    if baseline not in grid_designs:
        # A resumed job need not contain the baseline design; the raw
        # telemetry table above is the whole report then.
        return 0
    if args.resume:
        designs = [d for d in designs if d != baseline] or [baseline]
    print()
    speedups = report.speedups(baseline)
    print(f"speedup vs {baseline}:")
    header = f"{'benchmark':<12}" + "".join(f"{d:>16}" for d in designs)
    print(header)
    for benchmark in benchmarks:
        row = f"{benchmark:<12}" + "".join(
            f"{speedups[(d, benchmark)]:>16.3f}" for d in designs
        )
        print(row)
    gmeans = []
    for design in designs:
        values = [speedups[(design, b)] for b in benchmarks]
        try:
            gmeans.append(f"{geometric_mean(values):>16.3f}")
        except ValueError:
            gmeans.append(f"{'n/a':>16}")
    print(f"{'gmean':<12}" + "".join(gmeans))
    if (
        args.expect_cache_hits is not None
        and report.cache_hits != args.expect_cache_hits
    ):
        print(
            f"expected exactly {args.expect_cache_hits} cache hits, "
            f"got {report.cache_hits} "
            f"({report.cache_misses} miss)",
            file=sys.stderr,
        )
        return 1
    return 0


def _jobs_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.jobs import format_size, list_jobs, open_job, remove_job

    args = build_jobs_parser().parse_args(argv)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None

    if args.action == "list":
        infos = list_jobs(cache_dir)
        if not infos:
            print("no jobs")
            return 0
        print(
            f"{'job id':<50} {'done':>9} {'size':>10} "
            f"{'created':<20} name"
        )
        for info in infos:
            print(
                f"{info.job_id:<50} "
                f"{info.completed_cells:>4}/{info.total_cells:<4} "
                f"{format_size(info.bytes):>10} "
                f"{info.created:<20} {info.name}"
            )
        return 0

    try:
        if args.action == "rm":
            removed = remove_job(args.ref, cache_dir=cache_dir)
            print(f"removed {removed}")
            return 0
        job = open_job(args.ref, cache_dir=cache_dir)
    except KeyError as exc:
        print(f"jobs: {exc.args[0]}", file=sys.stderr)
        return 2

    journal = job.journal()
    done = journal.load() if journal is not None else {}
    print(f"job {job.job_id}")
    print(f"  name:      {job.name}")
    print(f"  created:   {job.created}")
    print(f"  directory: {job.directory}")
    print(f"  cells:     {len(job.cells)} ({len(done)} journaled)")
    if journal is not None and journal.dropped:
        print(f"  journal:   {journal.dropped} corrupt line(s) dropped")
    for cell in job.cells:
        state = "done" if cell.key() in done else "pending"
        print(
            f"    {cell.design:<16} {cell.benchmark:<12} "
            f"reads={cell.reads_per_core:<7} seed={cell.seed:<3} {state}"
        )
    return 0


def _cache_main(argv: List[str]) -> int:
    from pathlib import Path

    from repro.jobs import cache_stats, clear_cache, parse_size, prune_cache

    args = build_cache_parser().parse_args(argv)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None

    if args.action == "stats":
        print(cache_stats(cache_dir).render())
        return 0
    if args.action == "prune":
        try:
            budget = parse_size(args.max_bytes)
        except ValueError as exc:
            print(f"cache: {exc}", file=sys.stderr)
            return 2
        print(
            prune_cache(
                budget, cache_dir, min_age_seconds=args.min_age
            ).render()
        )
        return 0
    # clear: with no kind flags, clear everything.
    any_flag = args.results or args.traces or args.jobs
    removed = clear_cache(
        cache_dir,
        results=args.results or not any_flag,
        traces=args.traces or not any_flag,
        jobs=args.jobs or not any_flag,
    )
    print(f"cleared {removed.render()}")
    return 0


def _explore_main(argv: List[str]) -> int:
    import json
    from pathlib import Path

    from repro.dramcache.factory import DESIGN_NAMES
    from repro.explore import ExploreSpace, explore
    from repro.workloads.spec import resolve_workload

    args = build_explore_parser().parse_args(argv)
    if args.max_workers < 1:
        print(
            f"--max-workers must be >= 1, got {args.max_workers}",
            file=sys.stderr,
        )
        return 2

    def split(text: str) -> List[str]:
        return [part.strip() for part in text.split(",") if part.strip()]

    designs = [
        _DESIGN_ALIASES.get(name.lower(), name.lower())
        for name in split(args.designs)
    ]
    unknown = [d for d in designs if d not in DESIGN_NAMES]
    if unknown:
        print(f"unknown designs: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(DESIGN_NAMES)}", file=sys.stderr)
        return 2
    try:
        benchmarks = [
            resolve_workload(name) for name in split(args.benchmarks)
        ]
        space = ExploreSpace(
            designs=tuple(designs),
            benchmarks=tuple(benchmarks),
            page_policies=tuple(split(args.page_policies)),
            line_bursts=tuple(int(b) for b in split(args.line_bursts)),
            cache_mbs=tuple(int(mb) for mb in split(args.cache_mbs)),
            timings=tuple(split(args.timings)),
            capacity_scales=tuple(
                int(s) for s in split(args.capacity_scales)
            ),
        )
    except (KeyError, ValueError) as exc:
        print(f"explore: {exc.args[0]}", file=sys.stderr)
        return 2

    report = explore(
        space,
        args.strategy,
        name=args.name,
        reads_per_core=args.reads,
        eta=args.eta,
        keep=args.keep,
        max_rounds=args.max_rounds,
        samples=args.samples,
        seed=args.seed,
        warmup_fraction=args.warmup,
        max_workers=args.max_workers,
        use_cache=not args.no_cache,
        log=print,
    )
    print()
    print(report.render())
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_payload(), indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "breakdown":
        return _breakdown_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "golden":
        return _golden_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "jobs":
        return _jobs_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "explore":
        return _explore_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])

    args = build_parser().parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        print(
            "\nother verbs:\n"
            "  sweep (see 'repro sweep --help')\n"
            "  explore (see 'repro explore --help')\n"
            "  serve (see 'repro serve --help')\n"
            "  jobs (see 'repro jobs --help')\n"
            "  cache (see 'repro cache --help')\n"
            "  breakdown (see 'repro breakdown --help')\n"
            "  bench (see 'repro bench --help')\n"
            "  golden (see 'repro golden --help')\n"
            "  check (see 'repro check --help')"
        )
        return 0

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(EXPERIMENTS)

    unknown = [e for e in requested if e.lower() not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    prepared = run_experiments(requested, quick=args.quick, jobs=args.jobs)
    for experiment_id, result, elapsed in prepared:
        print(result.render())
        if args.bars:
            from repro.experiments.report import render_bars

            for header in result.headers[1:]:
                column = result.column(header)
                if column and all(isinstance(c, (int, float)) for c in column):
                    print()
                    print(render_bars(result, header))
                    break
        print(f"({elapsed:.1f}s)")
        print()
        if args.csv:
            from pathlib import Path

            from repro.experiments.report import write_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            write_csv(result, out_dir / f"{experiment_id}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
