"""Break-Even Hit Rate analysis (paper Section 1, Figure 1).

The paper motivates latency-first design with a simple average-latency
model: memory costs 1 unit, the cache costs ``hit_latency`` units, and an
optimization *A* that improves hit rate but inflates hit latency is only
worthwhile if its hit rate exceeds the *Break-Even Hit Rate* (BEHR) — the
hit rate at which average latency equals the unoptimized cache's.

All latencies here are normalized to memory latency = 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def average_latency(hit_rate: float, hit_latency: float, miss_latency: float = 1.0) -> float:
    """Average access latency for a cache in front of memory.

    A miss costs the full memory latency (the model assumes miss detection
    is free; the paper's point is that even under this generous assumption,
    slow hits sink the optimization).
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be within [0, 1]")
    return hit_rate * hit_latency + (1.0 - hit_rate) * miss_latency


def break_even_hit_rate(
    base_hit_rate: float,
    base_hit_latency: float,
    new_hit_latency: float,
    miss_latency: float = 1.0,
) -> float:
    """Hit rate at which an optimization with ``new_hit_latency`` matches the
    base cache's average latency.

    Returns a value that may exceed 1.0, meaning the optimization can never
    break even (the paper's 60%-base-hit-rate example needs 100%).
    """
    base_avg = average_latency(base_hit_rate, base_hit_latency, miss_latency)
    denominator = miss_latency - new_hit_latency
    if denominator <= 0:
        raise ValueError("hit latency must stay below miss latency")
    return (miss_latency - base_avg) / denominator


def behr_curve(
    base_hit_latency: float,
    new_hit_latency: float,
    points: int = 101,
    miss_latency: float = 1.0,
) -> List[Tuple[float, float]]:
    """(base hit rate, BEHR) pairs — one of Figure 1's dashed curves."""
    out = []
    for i in range(points):
        h = i / (points - 1)
        out.append(
            (h, break_even_hit_rate(h, base_hit_latency, new_hit_latency, miss_latency))
        )
    return out


def fig1_example() -> Dict[str, float]:
    """Reproduce the worked example of Section 1 / Figure 1.

    Optimization A removes 40% of misses (50% -> 70% hit rate) but inflates
    hit latency by 1.4x. For the fast cache (hit latency 0.1) it is a win;
    for the slow cache (0.5) it is a loss.
    """
    fast_base = average_latency(0.5, 0.1)
    fast_with_a = average_latency(0.7, 0.14)
    slow_base = average_latency(0.5, 0.5)
    slow_with_a = average_latency(0.7, 0.7)
    return {
        "fast_base_avg": fast_base,                     # 0.55
        "fast_with_A_avg": fast_with_a,                 # 0.40
        "fast_behr": break_even_hit_rate(0.5, 0.1, 0.14),   # ~0.52
        "slow_base_avg": slow_base,                     # 0.75
        "slow_with_A_avg": slow_with_a,                 # 0.79
        "slow_behr": break_even_hit_rate(0.5, 0.5, 0.7),    # ~0.83
        "slow_behr_at_60pct_base": break_even_hit_rate(0.6, 0.5, 0.7),  # 1.0
    }
