"""Storage-overhead comparison (paper Sections 2.1, 2.2, 5.3 and 6.1).

The paper's practicality argument in numbers:

* **SRAM-Tag** needs ~6 bytes of SRAM per cached 64 B line: 6 MB at 64 MB
  up to 96 MB (!) of SRAM at 1 GB — "impractical".
* **LH-Cache's MissMap** needs multi-megabyte tracking state; the paper
  buries it in the L3, paying the 24-cycle PSL instead of area.
* **Alloy + MAP-I** needs 96 bytes per core — under 1 KB total.

MissMap storage depends on how the cached lines spread over 4 KB pages:
the dense bound packs each segment full (capacity / 64 lines per segment);
the sparse bound puts every line on its own page. Real footprints sit in
between; either way it is megabytes against MAP's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.missmap import LINES_PER_SEGMENT, SEGMENT_ENTRY_BYTES
from repro.dramcache.sram_tag import SRAM_TAG_BYTES_PER_LINE
from repro.units import GB, LINE_SIZE, MB

#: MAP-I storage: 256 x 3-bit entries per core (Section 5.3.2).
MAP_I_BYTES_PER_CORE = 96


@dataclass(frozen=True)
class OverheadRow:
    """Non-DRAM storage needed to manage one cache size."""

    cache_bytes: int
    sram_tag_bytes: int
    missmap_dense_bytes: int
    missmap_sparse_bytes: int
    map_i_bytes: int


def sram_tag_overhead(cache_bytes: int) -> int:
    """SRAM tag-store size: ~6 B per line (24 MB for 256 MB, Section 2.1)."""
    return (cache_bytes // LINE_SIZE) * SRAM_TAG_BYTES_PER_LINE


def missmap_overhead_dense(cache_bytes: int) -> int:
    """MissMap tracking a fully dense footprint (segments packed full)."""
    lines = cache_bytes // LINE_SIZE
    segments = -(-lines // LINES_PER_SEGMENT)
    return segments * SEGMENT_ENTRY_BYTES


def missmap_overhead_sparse(cache_bytes: int) -> int:
    """MissMap worst case: every cached line on its own 4 KB page."""
    return (cache_bytes // LINE_SIZE) * SEGMENT_ENTRY_BYTES


def map_overhead(num_cores: int = 8) -> int:
    """MAP-I storage for the whole chip (768 B for 8 cores)."""
    return MAP_I_BYTES_PER_CORE * num_cores


def overhead_table(
    sizes=(64 * MB, 128 * MB, 256 * MB, 512 * MB, 1 * GB),
    num_cores: int = 8,
) -> List[OverheadRow]:
    """One row per cache size (the Section 6.1 progression)."""
    return [
        OverheadRow(
            cache_bytes=size,
            sram_tag_bytes=sram_tag_overhead(size),
            missmap_dense_bytes=missmap_overhead_dense(size),
            missmap_sparse_bytes=missmap_overhead_sparse(size),
            map_i_bytes=map_overhead(num_cores),
        )
        for size in sizes
    ]
