"""Analytic models from the paper: BEHR, latency breakdowns, bandwidth."""

from repro.analysis.behr import (
    average_latency,
    break_even_hit_rate,
    behr_curve,
    fig1_example,
)
from repro.analysis.latency import (
    AccessBreakdown,
    baseline_latency,
    sram_tag_latency,
    lh_cache_latency,
    ideal_lo_latency,
    alloy_latency,
    fig3_table,
)
from repro.analysis.bandwidth import BandwidthEntry, table4

__all__ = [
    "average_latency",
    "break_even_hit_rate",
    "behr_curve",
    "fig1_example",
    "AccessBreakdown",
    "baseline_latency",
    "sram_tag_latency",
    "lh_cache_latency",
    "ideal_lo_latency",
    "alloy_latency",
    "fig3_table",
    "BandwidthEntry",
    "table4",
]
