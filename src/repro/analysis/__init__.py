"""Analytic models from the paper: BEHR, latency breakdowns, bandwidth."""

from repro.analysis.behr import (
    average_latency,
    break_even_hit_rate,
    behr_curve,
    fig1_example,
)
from repro.analysis.latency import (
    AccessBreakdown,
    MeasuredBreakdown,
    baseline_latency,
    sram_tag_latency,
    lh_cache_latency,
    ideal_lo_latency,
    alloy_latency,
    fig3_table,
    measured_breakdown,
)
from repro.analysis.bandwidth import BandwidthEntry, table4

__all__ = [
    "average_latency",
    "break_even_hit_rate",
    "behr_curve",
    "fig1_example",
    "AccessBreakdown",
    "MeasuredBreakdown",
    "measured_breakdown",
    "baseline_latency",
    "sram_tag_latency",
    "lh_cache_latency",
    "ideal_lo_latency",
    "alloy_latency",
    "fig3_table",
    "BandwidthEntry",
    "table4",
]
