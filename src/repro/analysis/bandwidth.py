"""Effective-bandwidth comparison (paper Section 4.2, Table 4).

Raw stacked-DRAM bandwidth is 8x off-chip. What matters is bytes moved per
*useful* 64-byte line served:

* SRAM-Tag moves exactly one line per hit -> keeps the full 8x.
* LH-Cache moves 3 tag lines + 1 data line + a replacement update
  (~272 bytes) -> effective bandwidth under 2x.
* Alloy Cache moves one 80-byte TAD -> 6.4x.
* IDEAL-LO moves one line -> 8x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.units import LINE_SIZE, LH_TAG_LINES

#: Raw stacked : off-chip bandwidth ratio (paper Section 2.5).
STACKED_RAW_BANDWIDTH = 8.0

#: Bytes of replacement-update traffic per LH-Cache hit: one 16 B beat
#: (the paper's Table 4 charges (256+16) bytes per access).
LH_UPDATE_BYTES = 16


@dataclass(frozen=True)
class BandwidthEntry:
    """One Table 4 row."""

    structure: str
    raw_bandwidth: float
    bytes_per_hit: int

    @property
    def effective_bandwidth(self) -> float:
        """Raw bandwidth scaled by useful bytes per transfer."""
        return self.raw_bandwidth * LINE_SIZE / self.bytes_per_hit


def table4(alloy_tad_bytes: int = 80) -> List[BandwidthEntry]:
    """Reproduce Table 4 (``alloy_tad_bytes=128`` for the burst-8 variant)."""
    return [
        BandwidthEntry("offchip-memory", 1.0, LINE_SIZE),
        BandwidthEntry("sram-tag", STACKED_RAW_BANDWIDTH, LINE_SIZE),
        BandwidthEntry(
            "lh-cache",
            STACKED_RAW_BANDWIDTH,
            (LH_TAG_LINES + 1) * LINE_SIZE + LH_UPDATE_BYTES,
        ),
        BandwidthEntry("ideal-lo", STACKED_RAW_BANDWIDTH, LINE_SIZE),
        BandwidthEntry("alloy-cache", STACKED_RAW_BANDWIDTH, alloy_tad_bytes),
    ]
