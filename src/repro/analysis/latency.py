"""Isolated-access latency breakdowns (paper Section 2.4, Figure 3).

The paper analyzes two isolated access types against each design:

* **X** — good off-chip row-buffer locality (a row-buffer hit in memory);
* **Y** — must activate the memory row.

Latencies come straight from the timing presets: off-chip ACT = CAS = 36,
16 cycles/line on the bus; stacked ACT = CAS = 18, 4 cycles/line; L3/SRAM/
MissMap lookup = 24. The functions below rebuild each bar of Figure 3 and
are asserted cycle-exact against the paper's numbers in the test suite:

=======================  =====  =====
design / event            X      Y
=======================  =====  =====
baseline memory            52     88
SRAM-Tag hit               64     64
SRAM-Tag miss              76    112
LH-Cache hit               96     96
LH-Cache miss              76    112
IDEAL-LO hit               22     40
IDEAL-LO miss              52     88
=======================  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dram.timings import DramTimings, OFFCHIP_DDR3, STACKED_DRAM
from repro.units import LH_TAG_LINES

#: L3 / SRAM tag-store / MissMap lookup latency (paper Table 2).
LOOKUP_LATENCY = 24

#: One stacked-DRAM clock (1.6 GHz -> 2 CPU cycles at 4 GHz) to compare
#: the streamed-out tags against the request address.
TAG_CHECK = 2


@dataclass(frozen=True)
class AccessBreakdown:
    """One bar of Figure 3: a sequence of (activity, cycles) segments."""

    design: str
    access_type: str  # "X" or "Y"
    event: str  # "hit" or "miss"
    segments: Tuple[Tuple[str, int], ...]

    @property
    def total(self) -> int:
        return sum(cycles for _, cycles in self.segments)


def _mem_segments(access_type: str, mem: DramTimings) -> Tuple[Tuple[str, int], ...]:
    """Off-chip service: CAS+bus for X (row hit), ACT+CAS+bus for Y."""
    if access_type == "X":
        return (("mem-cas", mem.t_cas), ("mem-bus", mem.line_burst))
    return (
        ("mem-act", mem.t_act),
        ("mem-cas", mem.t_cas),
        ("mem-bus", mem.line_burst),
    )


def baseline_latency(
    access_type: str, mem: DramTimings = OFFCHIP_DDR3
) -> AccessBreakdown:
    """No DRAM cache: X = 52 cycles, Y = 88 cycles."""
    return AccessBreakdown("baseline", access_type, "miss", _mem_segments(access_type, mem))


def sram_tag_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """SRAM-Tag: TSL, then cache data (set-per-row => always row miss) or memory."""
    segments: List[Tuple[str, int]] = [("sram-tag-lookup", LOOKUP_LATENCY)]
    if hit:
        segments += [
            ("cache-act", stacked.t_act),
            ("cache-cas", stacked.t_cas),
            ("cache-bus", stacked.line_burst),
        ]
    else:
        segments += list(_mem_segments(access_type, mem))
    return AccessBreakdown("sram-tag", access_type, "hit" if hit else "miss", tuple(segments))


def lh_cache_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """LH-Cache: MissMap (PSL), then tags + tag check + compound data access."""
    segments: List[Tuple[str, int]] = [("missmap", LOOKUP_LATENCY)]
    if hit:
        segments += [
            ("cache-act", stacked.t_act),
            ("cache-cas", stacked.t_cas),
            ("tag-stream", LH_TAG_LINES * stacked.line_burst),
            ("tag-check", TAG_CHECK),
            ("data-cas", stacked.t_cas),
            ("cache-bus", stacked.line_burst),
        ]
    else:
        segments += list(_mem_segments(access_type, mem))
    return AccessBreakdown("lh-cache", access_type, "hit" if hit else "miss", tuple(segments))


def ideal_lo_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """IDEAL-LO: zero overheads; X hits the cache row buffer too."""
    if hit:
        if access_type == "X":
            segments: Tuple[Tuple[str, int], ...] = (
                ("cache-cas", stacked.t_cas),
                ("cache-bus", stacked.line_burst),
            )
        else:
            segments = (
                ("cache-act", stacked.t_act),
                ("cache-cas", stacked.t_cas),
                ("cache-bus", stacked.line_burst),
            )
        return AccessBreakdown("ideal-lo", access_type, "hit", segments)
    return AccessBreakdown("ideal-lo", access_type, "miss", _mem_segments(access_type, mem))


def alloy_latency(
    access_type: str,
    hit: bool,
    row_hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
    burst_beats: int = 5,
) -> AccessBreakdown:
    """Alloy Cache: one TAD burst; parallel memory access on predicted miss.

    A hit is the TAD stream itself (CAS or ACT+CAS plus ``burst_beats`` bus
    cycles). A correctly-predicted miss costs ``max(memory, TAD probe)``
    which for realistic parameters is the memory path — shown here as the
    memory segments alone.
    """
    if hit:
        segments: List[Tuple[str, int]] = []
        if not row_hit:
            segments.append(("cache-act", stacked.t_act))
        segments += [("cache-cas", stacked.t_cas), ("tad-bus", burst_beats)]
        return AccessBreakdown("alloy", access_type, "hit", tuple(segments))
    return AccessBreakdown("alloy", access_type, "miss", _mem_segments(access_type, mem))


def fig3_table() -> Dict[Tuple[str, str, str], int]:
    """All Figure 3 totals keyed by (design, access type, hit/miss)."""
    rows: Dict[Tuple[str, str, str], int] = {}
    for x in ("X", "Y"):
        rows[("baseline", x, "miss")] = baseline_latency(x).total
        for hit in (True, False):
            event = "hit" if hit else "miss"
            rows[("sram-tag", x, event)] = sram_tag_latency(x, hit).total
            rows[("lh-cache", x, event)] = lh_cache_latency(x, hit).total
            rows[("ideal-lo", x, event)] = ideal_lo_latency(x, hit).total
        rows[("alloy", x, "hit")] = alloy_latency(x, True, row_hit=(x == "X")).total
        rows[("alloy", x, "miss")] = alloy_latency(x, False, row_hit=False).total
    return rows


# ----------------------------------------------------------------------
# Measured breakdowns: replay Figure 3's isolated accesses through the
# actual timing designs and read the per-stage lifecycle attribution back.
# ----------------------------------------------------------------------

#: Figure 3 bar -> concrete design implementation. The baseline bar is the
#: no-cache design; the alloy bar uses the oracle predictor (zero predictor
#: latency, always-correct SAM/PAM choice) so its isolated miss shows the
#: pure overlapped-PAM path the analytic model describes.
_FIG3_IMPLS = {
    "baseline": "no-cache",
    "sram-tag": "sram-tag",
    "lh-cache": "lh-cache",
    "ideal-lo": "ideal-lo",
    "alloy": "alloy-perfect",
}

#: The probed line. Its neighbor (``+1``) shares an off-chip row (32 lines
#: per row) and — for the designs with spatial row packing (IDEAL-LO's 28
#: lines/row, Alloy's 28 TADs/row) — a stacked row, so touching the
#: neighbor first reproduces access type X exactly. Designs that map one
#: set per row (SRAM-Tag, LH-Cache) put the neighbor in a *different*
#: stacked row, which is precisely why their analytic hit bars always pay
#: the cache activation.
_PROBE_LINE = 10
_PROBE_PC = 0x400
#: Issue the measured access late enough that the priming traffic has fully
#: drained from every bank/bus timeline (so queue stages measure zero).
_ISSUE_CYCLE = 1000.0


@dataclass(frozen=True)
class MeasuredBreakdown:
    """One Figure 3 bar, measured: the lifecycle stages a real design
    reported for an isolated access, next to the analytic total."""

    design: str
    access_type: str  # "X" or "Y"
    event: str  # "hit" or "miss"
    total: float
    #: Non-zero lifecycle stages (queue/predictor/tag/data/memory).
    stages: Dict[str, float] = field(compare=False)
    analytic_total: int = 0

    @property
    def matches_analytic(self) -> bool:
        """Cycle-exact agreement between measurement and Figure 3."""
        return self.total == float(self.analytic_total)


def _replay_isolated(
    impl: str, access_type: str, hit: bool, config
) -> Tuple[float, Dict[str, float]]:
    """Run one isolated access through a freshly-built design.

    Background work is dropped (no scheduler), mirroring the paper's
    isolated-access analysis: nothing but the access under test touches
    the devices after priming.
    """
    from repro.dram.device import DramDevice
    from repro.dramcache.factory import make_design
    from repro.lifecycle import MemoryRequest

    memory = DramDevice(config.offchip, name="memory")
    stacked = DramDevice(config.stacked, name="stacked")
    design = make_design(impl, config, stacked, memory, lambda when, fn: None)

    if hit:
        design.warm(_PROBE_LINE, False, _PROBE_PC, 0)
    if access_type == "X":
        # Touch the neighboring line first: opens the off-chip row and,
        # where the design packs neighbors together, the stacked row too.
        memory.access_line(0.0, _PROBE_LINE + 1)
        loc = design.data_location(_PROBE_LINE + 1)
        if loc is not None:
            stacked.access(0.0, loc)

    outcome = design.handle(
        MemoryRequest(_PROBE_LINE, False, _PROBE_PC, 0, _ISSUE_CYCLE)
    )
    assert outcome.cache_hit == hit, (
        f"{impl}: expected {'hit' if hit else 'miss'}, "
        f"got {'hit' if outcome.cache_hit else 'miss'}"
    )
    stages = (
        dict(outcome.breakdown.items()) if outcome.breakdown is not None else {}
    )
    return outcome.done - _ISSUE_CYCLE, stages


def measured_breakdown(
    config=None,
) -> Dict[Tuple[str, str, str], MeasuredBreakdown]:
    """Measure every Figure 3 bar by replaying it through the real designs.

    Returns rows keyed exactly like :func:`fig3_table`. Each row carries the
    end-to-end measured latency and the per-stage lifecycle attribution the
    design reported; the test suite asserts ``total == analytic_total`` for
    every row and that the stages sum to the total — the analytic model and
    the simulator agree cycle-for-cycle.
    """
    from repro.sim.config import SystemConfig

    if config is None:
        config = SystemConfig()
    rows: Dict[Tuple[str, str, str], MeasuredBreakdown] = {}
    for (design_name, access_type, event), analytic in fig3_table().items():
        total, stages = _replay_isolated(
            _FIG3_IMPLS[design_name], access_type, event == "hit", config
        )
        rows[(design_name, access_type, event)] = MeasuredBreakdown(
            design=design_name,
            access_type=access_type,
            event=event,
            total=total,
            stages=stages,
            analytic_total=analytic,
        )
    return rows
