"""Isolated-access latency breakdowns (paper Section 2.4, Figure 3).

The paper analyzes two isolated access types against each design:

* **X** — good off-chip row-buffer locality (a row-buffer hit in memory);
* **Y** — must activate the memory row.

Latencies come straight from the timing presets: off-chip ACT = CAS = 36,
16 cycles/line on the bus; stacked ACT = CAS = 18, 4 cycles/line; L3/SRAM/
MissMap lookup = 24. The functions below rebuild each bar of Figure 3 and
are asserted cycle-exact against the paper's numbers in the test suite:

=======================  =====  =====
design / event            X      Y
=======================  =====  =====
baseline memory            52     88
SRAM-Tag hit               64     64
SRAM-Tag miss              76    112
LH-Cache hit               96     96
LH-Cache miss              76    112
IDEAL-LO hit               22     40
IDEAL-LO miss              52     88
=======================  =====  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.timings import DramTimings, OFFCHIP_DDR3, STACKED_DRAM
from repro.units import LH_TAG_LINES

#: L3 / SRAM tag-store / MissMap lookup latency (paper Table 2).
LOOKUP_LATENCY = 24

#: One stacked-DRAM clock (1.6 GHz -> 2 CPU cycles at 4 GHz) to compare
#: the streamed-out tags against the request address.
TAG_CHECK = 2


@dataclass(frozen=True)
class AccessBreakdown:
    """One bar of Figure 3: a sequence of (activity, cycles) segments."""

    design: str
    access_type: str  # "X" or "Y"
    event: str  # "hit" or "miss"
    segments: Tuple[Tuple[str, int], ...]

    @property
    def total(self) -> int:
        return sum(cycles for _, cycles in self.segments)


def _mem_segments(access_type: str, mem: DramTimings) -> Tuple[Tuple[str, int], ...]:
    """Off-chip service: CAS+bus for X (row hit), ACT+CAS+bus for Y."""
    if access_type == "X":
        return (("mem-cas", mem.t_cas), ("mem-bus", mem.line_burst))
    return (
        ("mem-act", mem.t_act),
        ("mem-cas", mem.t_cas),
        ("mem-bus", mem.line_burst),
    )


def baseline_latency(
    access_type: str, mem: DramTimings = OFFCHIP_DDR3
) -> AccessBreakdown:
    """No DRAM cache: X = 52 cycles, Y = 88 cycles."""
    return AccessBreakdown("baseline", access_type, "miss", _mem_segments(access_type, mem))


def sram_tag_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """SRAM-Tag: TSL, then cache data (set-per-row => always row miss) or memory."""
    segments: List[Tuple[str, int]] = [("sram-tag-lookup", LOOKUP_LATENCY)]
    if hit:
        segments += [
            ("cache-act", stacked.t_act),
            ("cache-cas", stacked.t_cas),
            ("cache-bus", stacked.line_burst),
        ]
    else:
        segments += list(_mem_segments(access_type, mem))
    return AccessBreakdown("sram-tag", access_type, "hit" if hit else "miss", tuple(segments))


def lh_cache_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """LH-Cache: MissMap (PSL), then tags + tag check + compound data access."""
    segments: List[Tuple[str, int]] = [("missmap", LOOKUP_LATENCY)]
    if hit:
        segments += [
            ("cache-act", stacked.t_act),
            ("cache-cas", stacked.t_cas),
            ("tag-stream", LH_TAG_LINES * stacked.line_burst),
            ("tag-check", TAG_CHECK),
            ("data-cas", stacked.t_cas),
            ("cache-bus", stacked.line_burst),
        ]
    else:
        segments += list(_mem_segments(access_type, mem))
    return AccessBreakdown("lh-cache", access_type, "hit" if hit else "miss", tuple(segments))


def ideal_lo_latency(
    access_type: str,
    hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
) -> AccessBreakdown:
    """IDEAL-LO: zero overheads; X hits the cache row buffer too."""
    if hit:
        if access_type == "X":
            segments: Tuple[Tuple[str, int], ...] = (
                ("cache-cas", stacked.t_cas),
                ("cache-bus", stacked.line_burst),
            )
        else:
            segments = (
                ("cache-act", stacked.t_act),
                ("cache-cas", stacked.t_cas),
                ("cache-bus", stacked.line_burst),
            )
        return AccessBreakdown("ideal-lo", access_type, "hit", segments)
    return AccessBreakdown("ideal-lo", access_type, "miss", _mem_segments(access_type, mem))


def alloy_latency(
    access_type: str,
    hit: bool,
    row_hit: bool,
    mem: DramTimings = OFFCHIP_DDR3,
    stacked: DramTimings = STACKED_DRAM,
    burst_beats: int = 5,
) -> AccessBreakdown:
    """Alloy Cache: one TAD burst; parallel memory access on predicted miss.

    A hit is the TAD stream itself (CAS or ACT+CAS plus ``burst_beats`` bus
    cycles). A correctly-predicted miss costs ``max(memory, TAD probe)``
    which for realistic parameters is the memory path — shown here as the
    memory segments alone.
    """
    if hit:
        segments: List[Tuple[str, int]] = []
        if not row_hit:
            segments.append(("cache-act", stacked.t_act))
        segments += [("cache-cas", stacked.t_cas), ("tad-bus", burst_beats)]
        return AccessBreakdown("alloy", access_type, "hit", tuple(segments))
    return AccessBreakdown("alloy", access_type, "miss", _mem_segments(access_type, mem))


def fig3_table() -> Dict[Tuple[str, str, str], int]:
    """All Figure 3 totals keyed by (design, access type, hit/miss)."""
    rows: Dict[Tuple[str, str, str], int] = {}
    for x in ("X", "Y"):
        rows[("baseline", x, "miss")] = baseline_latency(x).total
        for hit in (True, False):
            event = "hit" if hit else "miss"
            rows[("sram-tag", x, event)] = sram_tag_latency(x, hit).total
            rows[("lh-cache", x, event)] = lh_cache_latency(x, hit).total
            rows[("ideal-lo", x, event)] = ideal_lo_latency(x, hit).total
        rows[("alloy", x, "hit")] = alloy_latency(x, True, row_hit=(x == "X")).total
        rows[("alloy", x, "miss")] = alloy_latency(x, False, row_hit=False).total
    return rows
