"""Idealized MissMap: exact DRAM-cache presence tracking (Loh & Hill).

The MissMap records which lines are resident in the DRAM cache so that a
miss can be dispatched to memory without first reading DRAM tags. The paper
models an *idealized* MissMap — unlimited capacity, perfectly accurate,
embedded in the L3 and therefore costing one L3 access (24 cycles, the
*Predictor Serialization Latency*) on every lookup, hit or miss.

We track presence exactly, mirror the real structure's segment-based layout
only for storage-estimation (each 4 KB page maps to a segment with a 64-bit
presence vector plus a tag), and leave the latency cost to the timing layer.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.units import LINE_SIZE
from repro.stats import StatGroup

#: Lines covered by one MissMap segment (one 4 KB page).
LINES_PER_SEGMENT = 4096 // LINE_SIZE

#: Bytes per segment entry: ~36-bit page tag + 64-bit presence vector,
#: rounded to 13 bytes (matches the multi-megabyte estimates in Section 2.2).
SEGMENT_ENTRY_BYTES = 13


class MissMap:
    """Exact per-line presence map with segment-level storage accounting."""

    def __init__(self, name: str = "missmap") -> None:
        self.name = name
        self._present: Set[int] = set()
        self._segment_population: Dict[int, int] = {}
        self.stats = StatGroup(name)
        # Lazily-bound counter handles for the per-lookup hot path.
        self._c_lookups = None
        self._c_pred_hits = None
        self._c_pred_misses = None

    # ------------------------------------------------------------------
    @staticmethod
    def _segment(line_address: int) -> int:
        return line_address // LINES_PER_SEGMENT

    def contains(self, line_address: int) -> bool:
        """Query presence (costs one L3 access in the timing layer)."""
        c = self._c_lookups
        if c is None:
            c = self._c_lookups = self.stats.counter("lookups")
        c.value += 1
        present = line_address in self._present
        if present:
            c = self._c_pred_hits
            if c is None:
                c = self._c_pred_hits = self.stats.counter("predicted_hits")
        else:
            c = self._c_pred_misses
            if c is None:
                c = self._c_pred_misses = self.stats.counter("predicted_misses")
        c.value += 1
        return present

    def insert(self, line_address: int) -> None:
        """Record that a line was filled into the DRAM cache."""
        if line_address in self._present:
            return
        self._present.add(line_address)
        seg = self._segment(line_address)
        self._segment_population[seg] = self._segment_population.get(seg, 0) + 1

    def remove(self, line_address: int) -> None:
        """Record that a line was evicted from the DRAM cache."""
        if line_address not in self._present:
            return
        self._present.discard(line_address)
        seg = self._segment(line_address)
        remaining = self._segment_population[seg] - 1
        if remaining:
            self._segment_population[seg] = remaining
        else:
            del self._segment_population[seg]

    # ------------------------------------------------------------------
    @property
    def tracked_lines(self) -> int:
        return len(self._present)

    @property
    def active_segments(self) -> int:
        return len(self._segment_population)

    def storage_bytes(self) -> int:
        """Estimated storage a real MissMap of this occupancy would need."""
        return self.active_segments * SEGMENT_ENTRY_BYTES

    def __contains__(self, line_address: int) -> bool:
        return line_address in self._present
