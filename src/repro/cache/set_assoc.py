"""Functional set-associative cache (tag array + dirty bits).

Supports an arbitrary (including non-power-of-two) number of sets, because
DRAM-cache organizations derive their set counts from row geometry: the
LH-Cache stores 29 ways per 2 KB row and the Alloy Cache 28 TADs per row, so
set indices are computed with a modulo, exactly as Section 4.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.stats import StatGroup


@dataclass(frozen=True)
class Eviction:
    """A line displaced by a fill (``valid`` is False if the way was empty)."""

    valid: bool
    line_address: int = -1
    dirty: bool = False


class _Set:
    """One cache set: parallel tag/valid/dirty arrays plus policy state.

    ``index_map`` mirrors ``tags`` as line_address -> way so the hot
    lookup path is a dict probe instead of a 29-entry linear scan (the
    LH-Cache's associativity makes ``list.index`` a measurable cost).
    The tags list stays authoritative for introspection and empty-way
    selection; every mutation updates both.
    """

    __slots__ = ("tags", "dirty", "policy_state", "index_map")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.tags: List[int] = [-1] * ways
        self.dirty: List[bool] = [False] * ways
        self.policy_state = policy.make_state(ways)
        self.index_map: dict = {}


class SetAssocCache:
    """A set-associative cache of 64 B lines, identified by line address.

    The cache stores full line addresses rather than (tag, index) pairs;
    reconstruction of the evicted address is then exact for any set count.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy if policy is not None else LRUPolicy()
        self.name = name
        self._sets: List[_Set] = [_Set(ways, self.policy) for _ in range(num_sets)]
        self.stats = StatGroup(name)
        # Lazily-bound counter handles for the per-access hot path.
        self._c_hits = None
        self._c_misses = None
        self._c_fills = None

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        """Set index of a line address (modulo mapping, Section 4.1)."""
        return line_address % self.num_sets

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    # ------------------------------------------------------------------
    # Functional operations
    # ------------------------------------------------------------------
    def probe(self, line_address: int) -> bool:
        """Check presence without updating any replacement state."""
        cset = self._sets[self.set_index(line_address)]
        return line_address in cset.index_map

    def lookup(self, line_address: int, is_write: bool = False) -> bool:
        """Access the cache: returns hit/miss and updates replacement state.

        A write hit marks the line dirty. A miss only trains the policy
        (set-dueling counters); the caller decides whether to fill.
        """
        index = line_address % self.num_sets
        cset = self._sets[index]
        way = cset.index_map.get(line_address)
        if way is None:
            c = self._c_misses
            if c is None:
                c = self._c_misses = self.stats.counter("misses")
            c.value += 1
            self.policy.on_miss(index)
            return False
        self.policy.on_hit(cset.policy_state, way, index)
        if is_write:
            cset.dirty[way] = True
        c = self._c_hits
        if c is None:
            c = self._c_hits = self.stats.counter("hits")
        c.value += 1
        return True

    def fill(self, line_address: int, dirty: bool = False) -> Eviction:
        """Insert a line, evicting a victim if the set is full.

        Returns the eviction record so the timing layer can schedule the
        dirty writeback. Filling a line that is already present refreshes
        its replacement state instead of duplicating it.
        """
        index = line_address % self.num_sets
        cset = self._sets[index]
        tags = cset.tags
        way = cset.index_map.get(line_address)
        if way is not None:
            cset.dirty[way] = cset.dirty[way] or dirty
            self.policy.on_insert(cset.policy_state, way, index)
            return Eviction(valid=False)

        if -1 in tags:
            way = tags.index(-1)
            evicted = Eviction(valid=False)
        else:
            way = self.policy.victim_way(cset.policy_state, index)
            evicted = Eviction(
                valid=True,
                line_address=tags[way],
                dirty=cset.dirty[way],
            )
            del cset.index_map[tags[way]]
        tags[way] = line_address
        cset.index_map[line_address] = way
        cset.dirty[way] = dirty
        self.policy.on_insert(cset.policy_state, way, index)
        c = self._c_fills
        if c is None:
            c = self._c_fills = self.stats.counter("fills")
        c.value += 1
        if evicted.valid:
            self.stats.counter("evictions").add()
            if evicted.dirty:
                self.stats.counter("dirty_evictions").add()
        return evicted

    def invalidate(self, line_address: int) -> bool:
        """Remove a line if present; returns whether it was present."""
        cset = self._sets[self.set_index(line_address)]
        way = cset.index_map.pop(line_address, None)
        if way is None:
            return False
        cset.tags[way] = -1
        cset.dirty[way] = False
        return True

    def is_dirty(self, line_address: int) -> bool:
        """True if the line is present and dirty."""
        cset = self._sets[self.set_index(line_address)]
        way = cset.index_map.get(line_address)
        if way is None:
            return False
        return cset.dirty[way]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of ways currently holding valid lines."""
        filled = sum(
            1 for cset in self._sets for tag in cset.tags if tag != -1
        )
        return filled / self.capacity_lines

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached (test/debug helper)."""
        return [
            tag for cset in self._sets for tag in cset.tags if tag != -1
        ]

    def set_contents(self, index: int) -> Tuple[List[int], List[bool]]:
        """Tags and dirty bits of one set (test/debug helper)."""
        cset = self._sets[index]
        return list(cset.tags), list(cset.dirty)

    @property
    def hit_rate(self) -> float:
        hits = self.stats.counter("hits").value
        misses = self.stats.counter("misses").value
        total = hits + misses
        return hits / total if total else 0.0
