"""Functional cache structures: tag arrays, replacement policies, MissMap.

These classes model cache *contents* only (hits, misses, evictions, dirty
state). Timing is layered on top by the design classes in
:mod:`repro.dramcache`, which decide how many DRAM accesses each functional
event costs.
"""

from repro.cache.replacement import (
    ReplacementPolicy,
    LRUPolicy,
    RandomPolicy,
    NRUPolicy,
    DIPPolicy,
    make_policy,
)
from repro.cache.set_assoc import SetAssocCache, Eviction
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.missmap import MissMap

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "NRUPolicy",
    "DIPPolicy",
    "make_policy",
    "SetAssocCache",
    "Eviction",
    "DirectMappedCache",
    "MissMap",
]
