"""Functional direct-mapped cache.

The Alloy Cache is direct-mapped with a non-power-of-two set count
(28 TADs per 2 KB row), so the set index is ``line_address % num_sets``
(Section 4.1 sketches the cheap residue-arithmetic modulo circuit). A
direct-mapped array has no replacement state, which is exactly why the
paper's design avoids replacement-update traffic.

Tags and dirty bits live in plain Python lists: the simulator touches one
element per access, and per-element numpy indexing (scalar boxing plus
``np.bool_`` comparisons) costs several times a list index on that path.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.set_assoc import Eviction
from repro.stats import Counter, StatGroup


class DirectMappedCache:
    """A direct-mapped cache of 64 B lines keyed by line address."""

    def __init__(self, num_sets: int, name: str = "dm-cache") -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.num_sets = num_sets
        self.name = name
        self._tags: List[int] = [-1] * num_sets
        self._dirty: List[bool] = [False] * num_sets
        self.stats = StatGroup(name)
        # Lazily-bound counter handles for the per-access hot path.
        self._c_hits: Optional[Counter] = None
        self._c_misses: Optional[Counter] = None
        self._c_fills: Optional[Counter] = None

    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        """Set index via modulo mapping (mod-28-per-row in hardware)."""
        return line_address % self.num_sets

    @property
    def capacity_lines(self) -> int:
        return self.num_sets

    # ------------------------------------------------------------------
    def probe(self, line_address: int) -> bool:
        """Check presence without touching statistics."""
        return self._tags[line_address % self.num_sets] == line_address

    def lookup(self, line_address: int, is_write: bool = False) -> bool:
        """Access the cache; a write hit marks the line dirty."""
        index = line_address % self.num_sets
        if self._tags[index] == line_address:
            if is_write:
                self._dirty[index] = True
            c = self._c_hits
            if c is None:
                c = self._c_hits = self.stats.counter("hits")
            c.value += 1
            return True
        c = self._c_misses
        if c is None:
            c = self._c_misses = self.stats.counter("misses")
        c.value += 1
        return False

    def fill(self, line_address: int, dirty: bool = False) -> Eviction:
        """Insert a line, returning the displaced victim (if any)."""
        index = line_address % self.num_sets
        old_tag = self._tags[index]
        if old_tag == line_address:
            self._dirty[index] = self._dirty[index] or dirty
            return Eviction(valid=False)
        evicted = (
            Eviction(valid=True, line_address=old_tag, dirty=self._dirty[index])
            if old_tag != -1
            else Eviction(valid=False)
        )
        self._tags[index] = line_address
        self._dirty[index] = dirty
        c = self._c_fills
        if c is None:
            c = self._c_fills = self.stats.counter("fills")
        c.value += 1
        if evicted.valid:
            self.stats.counter("evictions").add()
            if evicted.dirty:
                self.stats.counter("dirty_evictions").add()
        return evicted

    def invalidate(self, line_address: int) -> bool:
        """Remove a line if present; returns whether it was present."""
        index = line_address % self.num_sets
        if self._tags[index] == line_address:
            self._tags[index] = -1
            self._dirty[index] = False
            return True
        return False

    def is_dirty(self, line_address: int) -> bool:
        """True if the line is present and dirty."""
        index = line_address % self.num_sets
        return self._tags[index] == line_address and self._dirty[index]

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of sets holding valid lines."""
        valid = self.num_sets - self._tags.count(-1)
        return valid / self.num_sets

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached (test/debug helper)."""
        return [t for t in self._tags if t != -1]

    @property
    def hit_rate(self) -> float:
        hits = self.stats.counter("hits").value
        misses = self.stats.counter("misses").value
        total = hits + misses
        return hits / total if total else 0.0
