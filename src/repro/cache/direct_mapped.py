"""Functional direct-mapped cache backed by numpy arrays.

The Alloy Cache is direct-mapped with a non-power-of-two set count
(28 TADs per 2 KB row), so the set index is ``line_address % num_sets``
(Section 4.1 sketches the cheap residue-arithmetic modulo circuit). A
direct-mapped array has no replacement state, which is exactly why the
paper's design avoids replacement-update traffic.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cache.set_assoc import Eviction
from repro.stats import StatGroup


class DirectMappedCache:
    """A direct-mapped cache of 64 B lines keyed by line address."""

    def __init__(self, num_sets: int, name: str = "dm-cache") -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.num_sets = num_sets
        self.name = name
        self._tags = np.full(num_sets, -1, dtype=np.int64)
        self._dirty = np.zeros(num_sets, dtype=bool)
        self.stats = StatGroup(name)

    # ------------------------------------------------------------------
    def set_index(self, line_address: int) -> int:
        """Set index via modulo mapping (mod-28-per-row in hardware)."""
        return line_address % self.num_sets

    @property
    def capacity_lines(self) -> int:
        return self.num_sets

    # ------------------------------------------------------------------
    def probe(self, line_address: int) -> bool:
        """Check presence without touching statistics."""
        return bool(self._tags[self.set_index(line_address)] == line_address)

    def lookup(self, line_address: int, is_write: bool = False) -> bool:
        """Access the cache; a write hit marks the line dirty."""
        index = self.set_index(line_address)
        if self._tags[index] == line_address:
            if is_write:
                self._dirty[index] = True
            self.stats.counter("hits").add()
            return True
        self.stats.counter("misses").add()
        return False

    def fill(self, line_address: int, dirty: bool = False) -> Eviction:
        """Insert a line, returning the displaced victim (if any)."""
        index = self.set_index(line_address)
        old_tag = int(self._tags[index])
        if old_tag == line_address:
            self._dirty[index] = self._dirty[index] or dirty
            return Eviction(valid=False)
        evicted = (
            Eviction(valid=True, line_address=old_tag, dirty=bool(self._dirty[index]))
            if old_tag != -1
            else Eviction(valid=False)
        )
        self._tags[index] = line_address
        self._dirty[index] = dirty
        self.stats.counter("fills").add()
        if evicted.valid:
            self.stats.counter("evictions").add()
            if evicted.dirty:
                self.stats.counter("dirty_evictions").add()
        return evicted

    def invalidate(self, line_address: int) -> bool:
        """Remove a line if present; returns whether it was present."""
        index = self.set_index(line_address)
        if self._tags[index] == line_address:
            self._tags[index] = -1
            self._dirty[index] = False
            return True
        return False

    def is_dirty(self, line_address: int) -> bool:
        """True if the line is present and dirty."""
        index = self.set_index(line_address)
        return bool(self._tags[index] == line_address and self._dirty[index])

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of sets holding valid lines."""
        return float(np.count_nonzero(self._tags != -1)) / self.num_sets

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached (test/debug helper)."""
        return [int(t) for t in self._tags[self._tags != -1]]

    @property
    def hit_rate(self) -> float:
        hits = self.stats.counter("hits").value
        misses = self.stats.counter("misses").value
        total = hits + misses
        return hits / total if total else 0.0
