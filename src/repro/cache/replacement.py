"""Replacement policies for set-associative caches.

The paper evaluates the LH-Cache and SRAM-Tag designs with LRU-based DIP
replacement [Qureshi et al., ISCA 2007] and studies a *random replacement*
de-optimization (Table 1) that removes the bandwidth cost of replacement
updates. We implement:

* :class:`LRUPolicy` — true LRU over a per-set recency stack.
* :class:`RandomPolicy` — uniform random victim, no update state.
* :class:`NRUPolicy` — not-recently-used single reference bit.
* :class:`DIPPolicy` — dynamic insertion policy: set-dueling between
  LRU-insertion and bimodal insertion (BIP), with a saturating PSEL counter.

A policy owns per-set metadata created by :meth:`ReplacementPolicy.make_state`
and mutated through the hit/insert hooks; the cache structure itself stays
policy-agnostic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, List, Optional


class ReplacementPolicy(ABC):
    """Interface between a set-associative cache and its replacement logic."""

    #: True if a hit/fill mutates policy metadata that lives in DRAM
    #: (the LH-Cache pays bus traffic for these updates; random does not).
    requires_update_traffic: bool = True

    @abstractmethod
    def make_state(self, ways: int) -> Any:
        """Create per-set metadata for a set with ``ways`` ways."""

    @abstractmethod
    def on_hit(self, state: Any, way: int, set_index: int) -> None:
        """Update metadata after a hit in ``way``."""

    @abstractmethod
    def victim_way(self, state: Any, set_index: int) -> int:
        """Choose the way to evict from a full set."""

    @abstractmethod
    def on_insert(self, state: Any, way: int, set_index: int) -> None:
        """Update metadata after filling ``way`` with a new line."""

    def on_miss(self, set_index: int) -> None:
        """Observe a miss in ``set_index`` (used by set-dueling policies)."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Per-set state is a recency list: position 0 is MRU, the tail is LRU.
    """

    def make_state(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_hit(self, state: List[int], way: int, set_index: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim_way(self, state: List[int], set_index: int) -> int:
        return state[-1]

    def on_insert(self, state: List[int], way: int, set_index: int) -> None:
        state.remove(way)
        state.insert(0, way)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection with no metadata updates.

    This is the Table 1 de-optimization: no LRU state means no replacement
    update traffic on hits, reducing DRAM-cache bank contention.
    """

    requires_update_traffic = False

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self._rng = random.Random(seed)

    def make_state(self, ways: int) -> int:
        return ways

    def on_hit(self, state: int, way: int, set_index: int) -> None:
        pass

    def victim_way(self, state: int, set_index: int) -> int:
        return self._rng.randrange(state)

    def on_insert(self, state: int, way: int, set_index: int) -> None:
        pass


class NRUPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way, cleared on saturation."""

    def make_state(self, ways: int) -> List[bool]:
        return [False] * ways

    def on_hit(self, state: List[bool], way: int, set_index: int) -> None:
        state[way] = True
        if all(state):
            for i in range(len(state)):
                state[i] = False
            state[way] = True

    def victim_way(self, state: List[bool], set_index: int) -> int:
        for way, referenced in enumerate(state):
            if not referenced:
                return way
        return 0

    def on_insert(self, state: List[bool], way: int, set_index: int) -> None:
        self.on_hit(state, way, set_index)


class DIPPolicy(ReplacementPolicy):
    """Dynamic Insertion Policy (LRU-based DIP) with set dueling.

    Leader sets are statically assigned: every ``dueling_period``-th set
    leads for LRU insertion, the next one for BIP. Misses in LRU leaders
    increment PSEL; misses in BIP leaders decrement it. Follower sets insert
    at MRU when PSEL's MSB favors LRU-insertion and use bimodal insertion
    (MRU with probability ``1/bip_epsilon_inverse``, else LRU position)
    otherwise.
    """

    def __init__(
        self,
        psel_bits: int = 10,
        bip_epsilon_inverse: int = 32,
        dueling_period: int = 32,
        seed: int = 0xD1B,
    ) -> None:
        self.psel_max = (1 << psel_bits) - 1
        self.psel = self.psel_max // 2
        self.bip_epsilon_inverse = bip_epsilon_inverse
        self.dueling_period = dueling_period
        self._rng = random.Random(seed)

    # -- leader-set classification ------------------------------------
    def _is_lru_leader(self, set_index: int) -> bool:
        return set_index % self.dueling_period == 0

    def _is_bip_leader(self, set_index: int) -> bool:
        return set_index % self.dueling_period == 1

    def _use_lru_insertion(self, set_index: int) -> bool:
        if self._is_lru_leader(set_index):
            return True
        if self._is_bip_leader(set_index):
            return False
        return self.psel < (self.psel_max + 1) // 2

    # -- policy interface ----------------------------------------------
    def make_state(self, ways: int) -> List[int]:
        return list(range(ways))

    def on_hit(self, state: List[int], way: int, set_index: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def victim_way(self, state: List[int], set_index: int) -> int:
        return state[-1]

    def on_miss(self, set_index: int) -> None:
        if self._is_lru_leader(set_index) and self.psel < self.psel_max:
            self.psel += 1
        elif self._is_bip_leader(set_index) and self.psel > 0:
            self.psel -= 1

    def on_insert(self, state: List[int], way: int, set_index: int) -> None:
        state.remove(way)
        if self._use_lru_insertion(set_index):
            state.insert(0, way)
        elif self._rng.randrange(self.bip_epsilon_inverse) == 0:
            state.insert(0, way)  # BIP's occasional MRU insertion
        else:
            state.append(way)  # insert at LRU position


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Construct a replacement policy from a config string.

    ``seed=None`` (the default) selects each seeded policy's own default
    seed; any explicit seed — including 0 — is honored. (A former
    ``seed or DEFAULT`` idiom silently replaced an explicit 0 with the
    default, so seed-0 runs were not reproducing their configuration.)
    """
    name = name.lower()
    if name == "lru":
        return LRUPolicy()
    if name == "random":
        return RandomPolicy(seed=0xC0FFEE if seed is None else seed)
    if name == "nru":
        return NRUPolicy()
    if name == "dip":
        return DIPPolicy(seed=0xD1B if seed is None else seed)
    raise ValueError(f"unknown replacement policy: {name!r}")
