"""repro: reproduction of "Fundamental Latency Trade-offs in Architecting
DRAM Caches" (Qureshi & Loh, MICRO 2012).

Public API highlights:

* :class:`repro.core.alloy.AlloyCache` / :class:`repro.core.tad.AlloyGeometry`
  — the paper's latency-optimized TAD cache.
* :mod:`repro.core.predictors` — SAM/PAM/MAP-G/MAP-I memory access predictors.
* :func:`repro.sim.runner.run_benchmark` / :func:`repro.sim.runner.speedup`
  — simulate any design over any catalog workload.
* :mod:`repro.experiments` — regenerate every table and figure of the paper.

Quickstart::

    from repro import speedup
    s, result = speedup("alloy-map-i", "mcf_r")
    print(f"Alloy Cache speedup on mcf: {s:.2f}x, "
          f"hit rate {result.read_hit_rate:.1%}")
"""

from repro.lifecycle import STAGES, LatencyBreakdown, MemoryRequest
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.runner import (
    compare_designs,
    geometric_mean,
    run_benchmark,
    run_design,
    speedup,
)
from repro.sim.parallel import (
    ResultCache,
    SweepCell,
    SweepReport,
    make_cells,
    run_sweep,
)
from repro.dramcache.factory import DESIGN_NAMES, make_design
from repro.core.alloy import AlloyCache
from repro.core.tad import AlloyGeometry
from repro.core.predictors import make_predictor
from repro.workloads.spec import (
    ALL_BENCHMARKS,
    PRIMARY_BENCHMARKS,
    SECONDARY_BENCHMARKS,
    build_workload,
)

__version__ = "1.1.0"

__all__ = [
    "SystemConfig",
    "SimResult",
    "MemoryRequest",
    "LatencyBreakdown",
    "STAGES",
    "run_benchmark",
    "run_design",
    "speedup",
    "compare_designs",
    "geometric_mean",
    "run_sweep",
    "make_cells",
    "SweepCell",
    "SweepReport",
    "ResultCache",
    "make_design",
    "DESIGN_NAMES",
    "AlloyCache",
    "AlloyGeometry",
    "make_predictor",
    "build_workload",
    "ALL_BENCHMARKS",
    "PRIMARY_BENCHMARKS",
    "SECONDARY_BENCHMARKS",
    "__version__",
]
