"""Differential fuzzer: inlined hot path vs. reference oracle, bit-for-bit.

Two layers, both driven from ``repro check``:

* **Device streams** — a seeded generator produces randomized access
  streams (mixed demand/background, reads/writes, variable bursts, open and
  closed page policy, and deliberate backlog phases hugging the block-cap
  and watermark boundaries) and replays each stream through a production
  :class:`~repro.dram.device.DramDevice` and an
  :class:`~repro.verify.oracle.OracleDramDevice` built from the same
  timings. Every ``AccessResult`` must compare equal field-for-field, and
  at end of stream the bank/bus timelines, open-row state, and flushed
  stats must match exactly. Each result is also run through the per-access
  invariant checks.
* **System runs** — whole paired :class:`~repro.sim.system.System`
  simulations over randomized small workloads (design, benchmark, core
  count, and page policies drawn from the seed), asserting field-identical
  :class:`~repro.sim.results.SimResult` payloads across the interpreter,
  the batch engine (``engine="batch"``), and the oracle-device run, plus
  one invariant-enabled run of the same cell proving the invariant layer
  passes on real workloads.

Divergences are collected as human-readable strings (capped) rather than
raised, so one bad seed reports every layer it broke.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.dram.device import BACKGROUND_BACKLOG_OPS, DramDevice
from repro.dram.mapping import RowLocation
from repro.dram.timings import OFFCHIP_DDR3, STACKED_DRAM, DramTimings
from repro.verify.invariants import InvariantChecker, InvariantViolation
from repro.verify.oracle import OracleDramDevice

#: (timings, page_policy) combinations every device seed is fuzzed under.
DEVICE_MATRIX: Tuple[Tuple[DramTimings, str], ...] = (
    (STACKED_DRAM, "open"),
    (STACKED_DRAM, "closed"),
    (OFFCHIP_DDR3, "open"),
    (OFFCHIP_DDR3, "closed"),
)

#: Designs and benchmarks the System-level differential rotates through
#: (one combination drawn per system seed). Covers every batch-kernel
#: family: direct-mapped Alloy, set-associative (LH/SRAM-tag plus the
#: multi-way Alloy), the victim buffer, and the tagless ideal bound.
SYSTEM_DESIGNS = (
    "alloy-map-i",
    "lh-cache",
    "sram-tag",
    "ideal-lo",
    "alloy-2way",
    "alloy-victim16",
)
SYSTEM_BENCHMARKS = ("mcf_r", "gcc_r", "milc_r", "lbm_r")
#: MSHRs-per-core values the system seeds rotate through — >1 exercises
#: the kernels' in-flight (MLP) path against the interpreter's.
SYSTEM_MSHRS = (1, 1, 4)

#: Stop collecting after this many divergences (one broken invariant tends
#: to cascade; the first few messages carry the signal).
MAX_DIVERGENCES = 32


# ----------------------------------------------------------------------
# Stream generation
# ----------------------------------------------------------------------
def _stream(
    rng: random.Random, timings: DramTimings, accesses: int
) -> List[Tuple[float, RowLocation, Optional[int], bool, bool]]:
    """One randomized access stream: (now, loc, burst, is_write, background).

    ``now`` is non-decreasing with a mix of zero, fractional, and large
    gaps. Interleaved phases deliberately pile background work onto one
    bank (hugging the bank watermark, ``BACKGROUND_BACKLOG_OPS`` lines) or
    onto one channel bus via oversized bursts around the bus watermark
    (``BACKGROUND_BACKLOG_OPS * line_burst`` cycles), then probe with
    demand reads — the paths a uniform random stream rarely stresses.
    """
    channels = timings.channels
    banks = timings.banks_per_channel
    line_burst = timings.line_burst
    bus_watermark = BACKGROUND_BACKLOG_OPS * line_burst
    out: List[Tuple[float, RowLocation, Optional[int], bool, bool]] = []
    now = 0.0

    def loc(channel=None, bank=None):
        return RowLocation(
            channel=rng.randrange(channels) if channel is None else channel,
            bank=rng.randrange(banks) if bank is None else bank,
            row=rng.randrange(4),
        )

    while len(out) < accesses:
        phase = rng.random()
        if phase < 0.55:
            # Mixed traffic with clustered addresses (row hits + conflicts).
            for _ in range(rng.randrange(4, 12)):
                now += rng.choice((0.0, 0.0, 0.5, 1.0, 3.0, 25.0))
                burst = rng.choice(
                    (None, None, line_burst, line_burst + 1, 1)
                )
                out.append(
                    (now, loc(), burst, rng.random() < 0.3, rng.random() < 0.4)
                )
        elif phase < 0.8:
            # Bank backlog hugging the write-buffer watermark, then demand.
            target = loc()
            depth = BACKGROUND_BACKLOG_OPS + rng.randrange(-2, 4)
            for _ in range(max(1, depth)):
                out.append((now, target, None, True, True))
            for _ in range(rng.randrange(1, 4)):
                out.append((now, target, None, False, False))
            now += rng.choice((0.0, 50.0, 1000.0))
        else:
            # Bus backlog around the bus watermark: one oversized
            # background burst on a neighbor bank, then a demand probe on
            # the same channel whose data finds the bus occupied.
            channel = rng.randrange(channels)
            burst = bus_watermark + rng.randrange(-line_burst, 2 * line_burst)
            out.append(
                (now, loc(channel=channel, bank=0), max(1, burst), True, True)
            )
            out.append((now, loc(channel=channel, bank=1), None, False, False))
            now += rng.choice((0.0, 10.0, 500.0))
    return out[:accesses]


# ----------------------------------------------------------------------
# Device-level differential
# ----------------------------------------------------------------------
def fuzz_device_pair(
    timings: DramTimings,
    page_policy: str,
    seed: int,
    accesses: int = 350,
    dut_factory: Callable[..., DramDevice] = DramDevice,
) -> List[str]:
    """Replay one seeded stream through dut and oracle; return divergences.

    ``dut_factory`` exists so the test suite can prove the fuzzer *detects*
    a deliberately broken device, not just that healthy devices agree.
    """
    # str seeds hash deterministically in random.Random (unlike tuple
    # hashes, which PYTHONHASHSEED salts per process).
    rng = random.Random(f"{seed}:{timings.name}:{page_policy}")
    dut = dut_factory(timings, name="fuzz", page_policy=page_policy)
    oracle = OracleDramDevice(timings, name="fuzz", page_policy=page_policy)
    checker = InvariantChecker()
    divergences: List[str] = []
    where = f"{timings.name}/{page_policy}/seed={seed}"

    for i, (now, loc, burst, is_write, background) in enumerate(
        _stream(rng, timings, accesses)
    ):
        got = dut.access(
            now, loc, burst, is_write=is_write, background=background
        )
        want = oracle.access(
            now, loc, burst, is_write=is_write, background=background
        )
        if got != want:
            divergences.append(
                f"{where} access #{i} (now={now}, {loc}, burst={burst}, "
                f"write={is_write}, background={background}): "
                f"inlined {got!r} != oracle {want!r}"
            )
        try:
            checker.check_access("fuzz", now, got)
        except InvariantViolation as exc:
            divergences.append(f"{where} access #{i}: {exc}")
        if len(divergences) >= MAX_DIVERGENCES:
            return divergences

    for kind, duts, oracles in (
        ("bank", dut._banks, oracle._banks),
        ("bus", dut._buses, oracle._buses),
    ):
        for idx, (a, b) in enumerate(zip(duts, oracles)):
            if (a.demand_free, a.all_free) != (b.demand_free, b.all_free):
                divergences.append(
                    f"{where} {kind}[{idx}] timeline: inlined "
                    f"({a.demand_free}, {a.all_free}) != oracle "
                    f"({b.demand_free}, {b.all_free})"
                )
    if dut._open_row != oracle._open_row:
        divergences.append(f"{where}: open-row state diverged")
    got_stats = dut.stats.as_dict()
    want_stats = oracle.stats.as_dict()
    if got_stats != want_stats:
        keys = set(got_stats) | set(want_stats)
        bad = {
            k: (got_stats.get(k), want_stats.get(k))
            for k in sorted(keys)
            if got_stats.get(k) != want_stats.get(k)
        }
        divergences.append(f"{where}: flushed stats diverged: {bad}")
    try:
        checker.check_device_totals(dut)
    except InvariantViolation as exc:
        divergences.append(f"{where}: {exc}")
    return divergences


# ----------------------------------------------------------------------
# System-level differential
# ----------------------------------------------------------------------
def fuzz_system_pair(
    seed: int,
    reads_per_core: int = 300,
    check_invariants: bool = True,
) -> List[str]:
    """One paired System run: inlined vs oracle devices, identical SimResult.

    The cell (design, benchmark, core count, page policies) is drawn from
    the seed so a seed sweep covers the design matrix. The same cell is
    then run a third time through the batch engine
    (:mod:`repro.sim.batch`), which must also be field-identical to the
    oracle. With ``check_invariants`` the cell is run once more with the
    invariant layer installed — violations surface as divergences.
    """
    from dataclasses import replace

    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.spec import build_workload

    rng = random.Random(seed)
    design = SYSTEM_DESIGNS[seed % len(SYSTEM_DESIGNS)]
    benchmark = rng.choice(SYSTEM_BENCHMARKS)
    num_cores = rng.choice((1, 2, 4))
    offchip_policy = rng.choice(("open", "closed"))
    stacked_policy = rng.choice(("open", "closed"))
    mshrs = rng.choice(SYSTEM_MSHRS)
    config = SystemConfig(
        num_cores=num_cores,
        offchip_page_policy=offchip_policy,
        stacked_page_policy=stacked_policy,
        mshrs_per_core=mshrs,
    )
    workload = build_workload(
        benchmark,
        num_cores=num_cores,
        reads_per_core=reads_per_core,
        capacity_scale=config.capacity_scale,
        seed=seed + 1,
    )
    where = (
        f"system seed={seed} ({design}/{benchmark}, cores={num_cores}, "
        f"pages={offchip_policy}/{stacked_policy}, mshrs={mshrs})"
    )
    divergences: List[str] = []

    inlined = System(config, design, workload).run()
    oracle = System(
        config, design, workload, device_cls=OracleDramDevice
    ).run()
    got = dataclasses.asdict(inlined)
    want = dataclasses.asdict(oracle)
    for key in got:
        if got[key] != want[key]:
            divergences.append(
                f"{where}: SimResult.{key}: inlined {got[key]!r} != "
                f"oracle {want[key]!r}"
            )
            if len(divergences) >= MAX_DIVERGENCES:
                return divergences

    batch_system = System(replace(config, engine="batch"), design, workload)
    batch = dataclasses.asdict(batch_system.run())
    if batch_system.engine_used != "batch":
        divergences.append(
            f"{where}: batch engine declined an in-envelope cell "
            f"(engine_used={batch_system.engine_used!r})"
        )
    for key in batch:
        if batch[key] != want[key]:
            divergences.append(
                f"{where}: SimResult.{key}: batch {batch[key]!r} != "
                f"oracle {want[key]!r}"
            )
            if len(divergences) >= MAX_DIVERGENCES:
                return divergences

    if check_invariants:
        try:
            System(replace(config, verify=True), design, workload).run()
        except InvariantViolation as exc:
            divergences.append(f"{where}: invariant run failed: {exc}")
    return divergences


# ----------------------------------------------------------------------
# The check entry point (CLI: ``repro check``)
# ----------------------------------------------------------------------
@dataclass
class CheckReport:
    """Outcome of one full fuzz matrix (``repro check``)."""

    seeds: int
    system_seeds: int
    device_streams: int = 0
    device_accesses: int = 0
    system_runs: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        lines = [
            f"repro check: {self.device_streams} device streams "
            f"({self.device_accesses} differential accesses) over "
            f"{self.seeds} seeds x {len(DEVICE_MATRIX)} device configs, "
            f"{self.system_runs} paired system runs",
        ]
        if self.ok:
            lines.append(
                "OK: zero inlined-vs-oracle divergences, zero invariant "
                "violations"
            )
        else:
            lines.append(f"FAILED: {len(self.divergences)} divergence(s):")
            lines.extend(f"  {d}" for d in self.divergences)
        return "\n".join(lines)


def run_check(
    seeds: int = 25,
    accesses: int = 350,
    system_seeds: Optional[int] = None,
    reads_per_core: int = 300,
    progress: Optional[Callable[[str], None]] = None,
) -> CheckReport:
    """Run the full differential + invariant matrix.

    ``seeds`` streams per device config; ``system_seeds`` paired full-system
    runs (default ``max(1, seeds // 10)`` — system runs are ~100x the cost
    of a device stream).
    """
    if system_seeds is None:
        system_seeds = max(1, seeds // 10)
    report = CheckReport(seeds=seeds, system_seeds=system_seeds)

    for timings, page_policy in DEVICE_MATRIX:
        found = 0
        for seed in range(seeds):
            divergences = fuzz_device_pair(
                timings, page_policy, seed, accesses=accesses
            )
            report.device_streams += 1
            report.device_accesses += accesses
            found += len(divergences)
            report.divergences.extend(divergences)
            if len(report.divergences) >= MAX_DIVERGENCES:
                return report
        if progress:
            progress(
                f"  device {timings.name}/{page_policy}: {seeds} streams, "
                f"{found or 'no'} divergences"
            )

    for seed in range(system_seeds):
        divergences = fuzz_system_pair(seed, reads_per_core=reads_per_core)
        report.system_runs += 1
        report.divergences.extend(divergences)
        if progress:
            status = f"{len(divergences)} divergences" if divergences else "ok"
            progress(f"  system seed {seed}: {status}")
        if len(report.divergences) >= MAX_DIVERGENCES:
            return report
    return report
