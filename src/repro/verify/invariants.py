"""Runtime invariant layer for device accesses and request lifecycles.

Enabled per-system via ``SystemConfig(verify=True)`` or the ``REPRO_VERIFY=1``
environment variable. The design is pay-for-use: when disabled, *nothing* is
installed — no wrapper objects, no extra branches on the hot path — so the
default configuration runs exactly the code it ran before this module
existed. When enabled, :class:`InvariantChecker` rebinds the system's device
``access`` methods and the design's ``handle`` as checking wrappers
(instance attributes shadow the class methods), and
:meth:`~repro.sim.system.System._collect` runs the end-of-run conservation
checks.

Checked invariants
------------------
Per device access (every access, demand and background):

* ``now <= start <= data_ready <= done`` — time never runs backwards
  through the bank/bus pipeline;
* ``queue_delay == start - now`` and ``bus_queue_delay >= 0`` — no
  negative queueing;
* ``queue_delay + act + cas + bus_queue + burst == done - now`` — the
  five stage fields decompose the access exactly (to float-association
  tolerance).

Per demand read (design level):

* the returned :class:`~repro.lifecycle.LatencyBreakdown` exists, has no
  negative stages, and its total equals ``done - issue``.

Per run (device and design totals):

* ``row_hits + activations == accesses`` and ``reads + writes == accesses``
  on every device;
* ``unattributed_cycles == 0`` — the lifecycle audit found no missing
  cycles anywhere in the run.

A violation raises :class:`InvariantViolation` (an ``AssertionError``
subclass) naming the invariant and its context, so fuzzers and CI fail
loudly instead of averaging the corruption away.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.dram.device import AccessResult, DramDevice

#: Float-association tolerance for sum-style invariants (matches the
#: lifecycle audit's ATTRIBUTION_EPSILON in repro.dramcache.base).
EPSILON = 1e-6


def verify_enabled(flag: bool = False) -> bool:
    """True when the invariant layer should be installed: the explicit
    config ``flag``, or ``REPRO_VERIFY`` set to anything but ''/'0'."""
    return flag or os.environ.get("REPRO_VERIFY", "0") not in ("", "0")


class InvariantViolation(AssertionError):
    """A model invariant failed; the message names invariant and context."""


class InvariantChecker:
    """Installs per-access / per-request checks on one System's hot path.

    One checker per :class:`~repro.sim.system.System`; ``install`` wraps the
    two devices and the design, ``check_final`` runs the end-of-run
    conservation checks. The wrappers preserve signatures, so designs and
    the event loop are oblivious to being checked.
    """

    def __init__(self) -> None:
        self.accesses_checked = 0
        self.reads_checked = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, system) -> None:
        self.wrap_device(system.memory)
        self.wrap_device(system.stacked)
        self.wrap_design(system.design)

    def wrap_device(self, device: DramDevice) -> None:
        """Rebind ``device.access`` to a checking wrapper (instance
        attribute shadowing the class method; ``access_line`` dispatches
        through it automatically)."""
        inner = device.access
        name = device.name
        checker = self

        def checked_access(
            now, loc, burst_cycles=None, is_write=False, background=False
        ):
            result = inner(
                now,
                loc,
                burst_cycles,
                is_write=is_write,
                background=background,
            )
            checker.check_access(name, now, result)
            return result

        device.access = checked_access

    def wrap_design(self, design) -> None:
        """Rebind ``design.handle`` to audit every demand read's outcome."""
        inner = design.handle
        checker = self

        def checked_handle(request):
            issue = request.issue_cycle
            is_write = request.is_write
            outcome = inner(request)
            checker.check_outcome(design.name, issue, is_write, outcome)
            return outcome

        design.handle = checked_handle

    # ------------------------------------------------------------------
    # Per-event checks
    # ------------------------------------------------------------------
    def check_access(self, device: str, now: float, result: AccessResult) -> None:
        """Per-access timing-order and decomposition invariants."""
        self.accesses_checked += 1
        if not now <= result.start <= result.data_ready <= result.done:
            raise InvariantViolation(
                f"{device}: access timeline out of order at now={now}: "
                f"start={result.start} data_ready={result.data_ready} "
                f"done={result.done}"
            )
        if result.queue_delay != result.start - now:
            raise InvariantViolation(
                f"{device}: queue_delay {result.queue_delay} != "
                f"start - now = {result.start - now}"
            )
        if result.queue_delay < 0 or result.bus_queue_delay < 0:
            raise InvariantViolation(
                f"{device}: negative queue delay at now={now}: "
                f"queue={result.queue_delay} bus_queue={result.bus_queue_delay}"
            )
        total = (
            result.queue_delay
            + result.act_cycles
            + result.cas_cycles
            + result.bus_queue_delay
            + result.burst_cycles
        )
        if abs(total - (result.done - now)) > EPSILON:
            raise InvariantViolation(
                f"{device}: stage fields sum to {total}, access took "
                f"{result.done - now} (now={now})"
            )

    def check_outcome(
        self, design: str, issue: float, is_write: bool, outcome
    ) -> None:
        """Per-request lifecycle invariants on the design's outcome."""
        if is_write:
            return  # posted: no observed latency, no breakdown
        self.reads_checked += 1
        if outcome.done < issue:
            raise InvariantViolation(
                f"{design}: read done={outcome.done} before issue={issue}"
            )
        breakdown = outcome.breakdown
        if breakdown is None:
            raise InvariantViolation(
                f"{design}: demand read returned no latency breakdown"
            )
        total = 0.0
        for stage, cycles in breakdown.items():
            if cycles < 0:
                raise InvariantViolation(
                    f"{design}: negative cycles {cycles} in stage "
                    f"{stage!r} (issue={issue})"
                )
            total += cycles
        if abs(total - (outcome.done - issue)) > EPSILON:
            raise InvariantViolation(
                f"{design}: breakdown total {total} != end-to-end latency "
                f"{outcome.done - issue} (issue={issue})"
            )

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def check_device_totals(self, device: DramDevice) -> None:
        """Counter conservation on one device's flushed stats."""
        stats = device.stats
        accesses = stats.counter("accesses").value
        row_hits = stats.counter("row_hits").value
        activations = stats.counter("activations").value
        if row_hits + activations != accesses:
            raise InvariantViolation(
                f"{device.name}: row_hits {row_hits} + activations "
                f"{activations} != accesses {accesses}"
            )
        reads = stats.counter("read_accesses").value
        writes = stats.counter("write_accesses").value
        if reads + writes != accesses:
            raise InvariantViolation(
                f"{device.name}: reads {reads} + writes {writes} != "
                f"accesses {accesses}"
            )
        background = stats.counter("background_accesses").value
        if background > accesses:
            raise InvariantViolation(
                f"{device.name}: background_accesses {background} > "
                f"accesses {accesses}"
            )

    def check_final(self, system, result) -> None:
        """Run the end-of-run conservation checks and audit the result."""
        self.check_device_totals(system.memory)
        self.check_device_totals(system.stacked)
        unattributed = system.design.unattributed_cycles
        if unattributed != 0.0:
            raise InvariantViolation(
                f"{system.design.name}: lifecycle audit left "
                f"{unattributed} unattributed cycles"
            )
        if result.unattributed_cycles != 0.0:
            raise InvariantViolation(
                f"SimResult carries unattributed_cycles="
                f"{result.unattributed_cycles}"
            )
        for core_id, cycles in enumerate(result.per_core_cycles):
            if cycles < 0:
                raise InvariantViolation(
                    f"core {core_id} finished at negative cycle {cycles}"
                )


def maybe_install(system, flag: bool = False) -> Optional[InvariantChecker]:
    """Install a checker on ``system`` when enabled; None when off (the
    zero-cost default — no wrappers exist, the hot path is untouched)."""
    if not verify_enabled(flag):
        return None
    checker = InvariantChecker()
    checker.install(system)
    return checker
