"""Correctness subsystem: differential oracle, fuzzer, and invariant layer.

``repro.dram.device.DramDevice.access`` is a hand-inlined copy of
:meth:`~repro.dram.device.PriorityTimeline.reserve` and
:meth:`~repro.stats.Accumulator.sample` — the hottest function in the
simulator. The inlining is guarded by a *mirror contract*: any behavioral
change to the reference must be mirrored in the copy. This package is what
keeps that contract honest:

* :mod:`repro.verify.oracle` — :class:`OracleDramDevice`, a device that
  routes every reservation through the reference ``PriorityTimeline.reserve``
  and every sample through real ``Accumulator.sample`` calls.
* :mod:`repro.verify.fuzzer` — a differential fuzzer driving inlined and
  oracle devices (and whole paired :class:`~repro.sim.system.System` runs)
  with identical seeded randomized streams, requiring bit-identical results.
* :mod:`repro.verify.invariants` — a runtime invariant layer (enabled via
  ``REPRO_VERIFY=1`` or ``SystemConfig(verify=True)``, zero-cost when off)
  checking per-access timing ordering, per-device counter conservation, and
  the lifecycle attribution audit on real workloads.

The CLI front-end is ``repro check`` (see :func:`repro.verify.fuzzer.run_check`).
"""

from repro.verify.fuzzer import CheckReport, run_check
from repro.verify.invariants import (
    InvariantChecker,
    InvariantViolation,
    verify_enabled,
)
from repro.verify.oracle import OracleDramDevice

__all__ = [
    "CheckReport",
    "InvariantChecker",
    "InvariantViolation",
    "OracleDramDevice",
    "run_check",
    "verify_enabled",
]
