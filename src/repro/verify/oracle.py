"""The oracle device: ``DramDevice`` with nothing inlined.

:class:`OracleDramDevice` is a drop-in :class:`~repro.dram.device.DramDevice`
whose ``access`` is written the straightforward way — every bank and bus
reservation goes through the reference
:meth:`~repro.dram.device.PriorityTimeline.reserve`, every statistic through
real :meth:`~repro.stats.Accumulator.sample` / ``Counter.add`` calls — built
from the same :class:`~repro.dram.timings.DramTimings` and the same
block-cap/watermark policy methods as the production device.

Because the inlined hot path was derived expression-for-expression from
exactly these calls, the two implementations must agree *bit-for-bit*: same
``AccessResult`` fields, same timeline states, same flushed stats. The
differential fuzzer (:mod:`repro.verify.fuzzer`) asserts that equivalence
over randomized streams; any divergence means the mirror contract in
``device.py`` was broken.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.device import AccessResult, DramDevice
from repro.dram.mapping import RowLocation
from repro.units import LINE_SIZE


class OracleDramDevice(DramDevice):
    """Reference implementation of the DRAM device access path.

    Inherits all construction, geometry, policy constants, introspection and
    reset behavior from :class:`DramDevice`; only the hot ``access`` method
    is replaced by the un-inlined reference composition. ``access_line``
    dispatches through ``self.access`` and therefore uses this method too.
    """

    def access(
        self,
        now: float,
        loc: RowLocation,
        burst_cycles: Optional[int] = None,
        is_write: bool = False,
        background: bool = False,
    ) -> AccessResult:
        timings = self.timings
        line_burst = timings.line_burst
        if burst_cycles is None:
            burst_cycles = line_burst

        bank_idx = loc.channel * timings.banks_per_channel + loc.bank
        open_row = self._open_row[bank_idx]
        row_hit = open_row == loc.row
        if row_hit:
            act_cycles = 0
        elif open_row is None:
            act_cycles = timings.t_act
        else:
            act_cycles = timings.t_rp + timings.t_act
        core_latency = act_cycles + timings.t_cas
        bank_service = core_latency + burst_cycles

        start = self._banks[bank_idx].reserve(
            now, bank_service, background, self._block_cap(), self._watermark()
        )
        queue_delay = start - now
        data_ready = start + core_latency

        bus_start = self._buses[loc.channel].reserve(
            data_ready,
            burst_cycles,
            background,
            self._bus_block_cap(),
            self._bus_watermark(),
        )
        bus_queue_delay = bus_start - data_ready
        done = bus_start + burst_cycles
        self._open_row[bank_idx] = loc.row if self.page_policy == "open" else None

        stats = self._stats
        stats.counter("accesses").add()
        if row_hit:
            stats.counter("row_hits").add()
        else:
            stats.counter("activations").add()
        stats.counter("write_accesses" if is_write else "read_accesses").add()
        if background:
            stats.counter("background_accesses").add()
        stats.counter("bus_cycles").add(burst_cycles)
        stats.counter("bytes_on_bus").add(
            int(burst_cycles * LINE_SIZE / line_burst)
        )
        stats.accumulator("queue_delay").sample(queue_delay)
        stats.accumulator("bus_queue_delay").sample(bus_queue_delay)
        if not background:
            stats.accumulator("demand_queue_delay").sample(queue_delay)
            stats.accumulator("demand_bus_queue_delay").sample(bus_queue_delay)
        stats.accumulator("access_latency").sample(done - now)

        return AccessResult(
            start,
            data_ready,
            done,
            row_hit,
            queue_delay,
            bus_queue_delay,
            float(act_cycles),
            float(timings.t_cas),
            float(burst_cycles),
        )
