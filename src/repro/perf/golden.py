"""Golden-results scorecard: byte-stable fidelity snapshot for CI.

Captures the reproduction's *behavior* (as opposed to its speed, which is
:mod:`repro.perf.bench`'s job) in one canonical JSON document:

* ``fig3`` — the cycle-exact isolated-access replay of Figure 3: every
  design/type/event bar's measured total next to the analytic total, with
  the per-stage lifecycle attribution.
* ``grid`` — full :class:`~repro.sim.results.SimResult` dumps for a small
  pinned (design x benchmark x reads) grid covering every latency-relevant
  design family.

``write_golden()`` regenerates ``tests/goldens/scorecard.json``;
``check_golden()`` re-simulates and returns a field-level diff against the
committed file. The JSON is rendered with sorted keys and a fixed indent,
so any drift is a minimal, reviewable diff — and CI fails per-PR instead
of waiting for the next paper re-anchor.

Floats round-trip exactly through JSON (``repr`` of a double is lossless),
so the check is bit-exact, which is precisely what the hot-path
optimization work needs: the optimized simulator must reproduce the
pre-optimization goldens cycle-for-cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.perf.bench import BenchCell, make_bench_grid

#: Bump when the golden payload layout changes.
GOLDEN_SCHEMA = 1

#: Default committed location, relative to the repository root.
DEFAULT_GOLDEN_PATH = Path("tests") / "goldens" / "scorecard.json"

#: The pinned grid: one representative of every latency structure the
#: paper compares (baseline, SRAM tags, tags-in-DRAM, TAD + predictor,
#: TAD + MissMap, the IDEAL-LO bound).
GOLDEN_DESIGNS = (
    "no-cache",
    "sram-tag",
    "lh-cache",
    "alloy-map-i",
    "alloy-missmap",
    "ideal-lo",
)
GOLDEN_BENCHMARKS = ("mcf_r",)
GOLDEN_READS = 2500


def golden_grid() -> List[BenchCell]:
    """The pinned golden grid (plus one cross-benchmark alloy cell)."""
    cells = make_bench_grid(
        GOLDEN_DESIGNS, GOLDEN_BENCHMARKS, reads_per_core=GOLDEN_READS
    )
    cells.append(
        BenchCell("alloy-map-i", "milc_r", reads_per_core=GOLDEN_READS)
    )
    return cells


def fig3_rows() -> List[Dict]:
    """The measured-vs-analytic Figure 3 table as JSON-ready rows."""
    from repro.analysis.latency import measured_breakdown

    rows = []
    for (design, access_type, event), row in measured_breakdown().items():
        rows.append(
            {
                "design": design,
                "access_type": access_type,
                "event": event,
                "measured": row.total,
                "analytic": row.analytic_total,
                "match": row.matches_analytic,
                "stages": dict(row.stages),
            }
        )
    return rows


def grid_results(cells: Optional[Sequence[BenchCell]] = None) -> Dict[str, Dict]:
    """Simulate every golden cell (cache bypassed) -> cell_id -> SimResult."""
    from repro.sim.runner import run_benchmark

    out = {}
    for cell in cells if cells is not None else golden_grid():
        result = run_benchmark(
            cell.design,
            cell.benchmark,
            reads_per_core=cell.reads_per_core,
            warmup_fraction=cell.warmup_fraction,
            seed=cell.seed,
        )
        out[cell.cell_id] = result.to_dict()
    return out


def golden_payload(cells: Optional[Sequence[BenchCell]] = None) -> Dict:
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": "repro-golden-scorecard",
        "fig3": fig3_rows(),
        "grid": grid_results(cells),
    }


def canonical_dumps(payload: Dict) -> str:
    """Byte-stable rendering: sorted keys, fixed indent, trailing newline."""
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def write_golden(path: Path = DEFAULT_GOLDEN_PATH) -> Dict:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = golden_payload()
    path.write_text(canonical_dumps(payload))
    return payload


def diff_payloads(current, golden, prefix: str = "", limit: int = 40) -> List[str]:
    """Human-readable field-level differences, depth-first, capped."""
    diffs: List[str] = []
    _diff(current, golden, prefix or "$", diffs, limit)
    return diffs


def _diff(cur, gold, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    if isinstance(cur, dict) and isinstance(gold, dict):
        for key in sorted(set(cur) | set(gold)):
            if key not in cur:
                out.append(f"{path}.{key}: missing from current run")
            elif key not in gold:
                out.append(f"{path}.{key}: not in golden file")
            else:
                _diff(cur[key], gold[key], f"{path}.{key}", out, limit)
            if len(out) >= limit:
                return
    elif isinstance(cur, list) and isinstance(gold, list):
        if len(cur) != len(gold):
            out.append(f"{path}: length {len(cur)} != golden {len(gold)}")
            return
        for i, (c, g) in enumerate(zip(cur, gold)):
            _diff(c, g, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
    elif cur != gold:
        out.append(f"{path}: {cur!r} != golden {gold!r}")


def check_golden(path: Path = DEFAULT_GOLDEN_PATH) -> List[str]:
    """Re-simulate the golden grid and diff against the committed file.

    Returns the list of differences (empty means the scorecard is intact).
    """
    path = Path(path)
    if not path.exists():
        return [f"golden file {path} does not exist (run 'repro golden --write')"]
    golden = json.loads(path.read_text())
    if golden.get("kind") != "repro-golden-scorecard":
        return [f"{path} is not a repro-golden-scorecard payload"]
    # Rebuild the grid from the committed file so adding cells to
    # GOLDEN_DESIGNS does not fail the check before a --write.
    cells = [
        BenchCell(
            design=entry["design"],
            benchmark=entry["workload"],
            reads_per_core=GOLDEN_READS,
        )
        for entry in golden.get("grid", {}).values()
    ]
    current = golden_payload(cells or None)
    return diff_payloads(current, golden)
