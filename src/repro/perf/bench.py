"""The ``repro bench`` performance harness.

Times a *pinned* (design x benchmark x reads) grid of simulations and
reports, per cell, wall seconds and events/sec over several repeats with
the leading warmup repeats discarded and the median taken — so JIT-free
CPython noise (allocator warmup, frequency scaling on the first run) does
not pollute the trend. Every run can be written as a schema-versioned
``BENCH_<date>.json`` at the repository root, accumulating the perf
trajectory PR over PR.

Determinism is checked for free: every repeat of a cell must produce an
identical :class:`~repro.sim.results.SimResult` (the simulator is pure
w.r.t. its inputs), so a perf "optimization" that changes simulated
behavior is caught right here rather than three figures later.

Cross-machine comparisons (a laptop baseline vs a CI runner) are
normalized by a small fixed pure-Python calibration loop whose throughput
is recorded in every payload: ``compare()`` scales the baseline's
events/sec by the ratio of calibration scores when both sides carry one,
so the ±tolerance band measures the *code*, not the host.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.results import SimResult

#: Bump when the BENCH_*.json layout changes.
#: 2: per-cell trace_build_seconds / trace_source split (ISSUE 4).
BENCH_SCHEMA = 2

#: File-name prefix for emitted benchmark payloads at the repo root.
BENCH_PREFIX = "BENCH_"

#: The pinned default grid. ``--quick`` runs the leading subset (same
#: reads/warmup/seed), so quick cells share cell ids with the full grid
#: and CI can compare a quick run against the committed full baseline.
DEFAULT_DESIGNS = ("alloy-map-i", "lh-cache", "sram-tag", "no-cache")
DEFAULT_BENCHMARKS = ("mcf_r", "milc_r")
QUICK_DESIGNS = ("alloy-map-i", "lh-cache")
QUICK_BENCHMARKS = ("mcf_r",)
DEFAULT_READS = 2000
DEFAULT_REPEATS = 3
DEFAULT_DISCARD = 1


class BenchDeterminismError(AssertionError):
    """Two repeats of one cell produced different simulation results."""


@dataclass(frozen=True)
class BenchCell:
    """One fully-pinned timing cell (everything that determines the run)."""

    design: str
    benchmark: str
    reads_per_core: int = DEFAULT_READS
    warmup_fraction: float = 0.25
    seed: int = 1
    #: Simulation engine ("" = the SystemConfig default). Deliberately NOT
    #: part of :attr:`cell_id`: both engines are bit-exact, so a batch run
    #: compares directly against the committed interpreter baseline — that
    #: comparison *is* the speedup measurement.
    engine: str = ""
    #: MSHRs per core (``mshrs_per_core``). Unlike the engine this changes
    #: simulated behavior, so non-default values suffix the cell id.
    mshrs: int = 1

    @property
    def cell_id(self) -> str:
        """Stable string key used in payloads and cross-run comparisons."""
        suffix = f"/m{self.mshrs}" if self.mshrs != 1 else ""
        return (
            f"{self.design}/{self.benchmark}/r{self.reads_per_core}"
            f"/w{self.warmup_fraction:g}/s{self.seed}{suffix}"
        )


def make_bench_grid(
    designs: Iterable[str],
    benchmarks: Iterable[str],
    reads_per_core: int = DEFAULT_READS,
    warmup_fraction: float = 0.25,
    seed: int = 1,
    engine: str = "",
) -> List[BenchCell]:
    """The full (design x benchmark) grid at one pinned trace length."""
    return [
        BenchCell(
            design=design,
            benchmark=benchmark,
            reads_per_core=reads_per_core,
            warmup_fraction=warmup_fraction,
            seed=seed,
            engine=engine,
        )
        for design in designs
        for benchmark in benchmarks
    ]


#: Pinned cells covering the batch-engine envelope extensions — multi-way
#: Alloy, the victim buffer, and an MLP (mshrs=4) core — as (design,
#: mshrs) pairs timed on one benchmark at the default trace length. These
#: ride along with the full default grid so the committed baseline gates
#: every kernel family, not just the direct-mapped single-MSHR designs.
ENVELOPE_CELLS = (
    ("alloy-4way", 1),
    ("alloy-victim16", 1),
    ("alloy-map-i", 4),
)
ENVELOPE_BENCHMARK = "mcf_r"


def envelope_bench_cells(
    reads_per_core: int = DEFAULT_READS,
    warmup_fraction: float = 0.25,
    seed: int = 1,
    engine: str = "",
) -> List[BenchCell]:
    """The :data:`ENVELOPE_CELLS` as fully-pinned bench cells."""
    return [
        BenchCell(
            design=design,
            benchmark=ENVELOPE_BENCHMARK,
            reads_per_core=reads_per_core,
            warmup_fraction=warmup_fraction,
            seed=seed,
            engine=engine,
            mshrs=mshrs,
        )
        for design, mshrs in ENVELOPE_CELLS
    ]


@dataclass
class CellTiming:
    """Timing telemetry for one cell across its kept repeats."""

    cell: BenchCell
    #: Heap events per run (identical across repeats by determinism).
    heap_events: int
    #: Wall seconds of the kept (post-discard) repeats, in run order.
    wall_seconds: List[float]
    #: Wall seconds of the discarded warmup repeats.
    discarded_seconds: List[float]
    result: SimResult
    #: Seconds spent materializing the workload once, before the timed
    #: repeats (generator run, ``.npz`` load, or arena memo hit).
    trace_build_seconds: float = 0.0
    #: Where the workload came from: ``built`` / ``npz`` / ``memo``.
    trace_source: str = ""
    #: Engine that actually produced the results (``System.engine_used``).
    engine_used: str = "interp"

    @property
    def wall_median(self) -> float:
        return statistics.median(self.wall_seconds)

    @property
    def events_per_sec(self) -> float:
        """Median-wall events/sec (the headline per-cell metric)."""
        median = self.wall_median
        return self.heap_events / median if median > 0 else 0.0


def time_cell(
    cell: BenchCell,
    repeats: int = DEFAULT_REPEATS,
    discard: int = DEFAULT_DISCARD,
) -> CellTiming:
    """Time one cell: ``discard`` warmup runs, then ``repeats`` kept runs.

    The workload is built once; each repeat simulates a fresh
    :class:`~repro.sim.system.System` so no state leaks between runs.
    Every repeat's :class:`SimResult` must be identical (raises
    :class:`BenchDeterminismError` otherwise) — the persistent sweep cache
    is bypassed entirely, this always simulates.
    """
    from dataclasses import replace

    from repro.sim.system import System
    from repro.workloads.arena import WorkloadParams, get_workload_arena
    from repro.workloads.spec import get_benchmark

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if discard < 0:
        raise ValueError(f"discard must be >= 0, got {discard}")

    config = _bench_config()
    if cell.engine:
        config = replace(config, engine=cell.engine)
    if cell.mshrs != 1:
        config = replace(config, mshrs_per_core=cell.mshrs)
    # Materialize through the content-keyed arena so the harness reports
    # the trace-build/sim split (and benefits from persisted arenas).
    workload, trace_telemetry = get_workload_arena().fetch(
        WorkloadParams(
            benchmark=get_benchmark(cell.benchmark).name,
            num_cores=config.num_cores,
            reads_per_core=cell.reads_per_core,
            capacity_scale=config.capacity_scale,
            seed=cell.seed,
        )
    )

    reference: Optional[Dict] = None
    walls: List[float] = []
    discarded: List[float] = []
    result = None
    engine_used = "interp"
    for run_index in range(discard + repeats):
        system = System(
            config, cell.design, workload, warmup_fraction=cell.warmup_fraction
        )
        started = time.perf_counter()
        result = system.run()
        wall = time.perf_counter() - started
        engine_used = system.engine_used
        if cell.engine and engine_used != cell.engine:
            raise BenchDeterminismError(
                f"cell {cell.cell_id}: requested engine {cell.engine!r} "
                f"but the run used {engine_used!r} — the timing would "
                "measure the wrong engine"
            )
        fields = result.to_dict()
        if reference is None:
            reference = fields
        elif fields != reference:
            raise BenchDeterminismError(
                f"cell {cell.cell_id}: repeat {run_index} produced a "
                f"different SimResult than repeat 0"
            )
        (discarded if run_index < discard else walls).append(wall)
    assert result is not None
    return CellTiming(
        cell=cell,
        heap_events=result.heap_events,
        wall_seconds=walls,
        discarded_seconds=discarded,
        result=result,
        trace_build_seconds=float(trace_telemetry["trace_build_seconds"]),
        trace_source=str(trace_telemetry["trace_source"]),
        engine_used=engine_used,
    )


def _bench_config():
    from repro.sim.config import SystemConfig

    return SystemConfig()


@dataclass
class BenchRun:
    """One full harness run over a grid of cells."""

    timings: List[CellTiming]
    repeats: int
    discard: int
    calibration_ops_per_sec: float
    elapsed_seconds: float

    def to_payload(self, label: str = "") -> Dict:
        """Schema-versioned, JSON-ready snapshot of this run."""
        cells = {}
        for t in self.timings:
            c = t.cell
            cells[c.cell_id] = {
                "design": c.design,
                "benchmark": c.benchmark,
                "reads_per_core": c.reads_per_core,
                "warmup_fraction": c.warmup_fraction,
                "seed": c.seed,
                "mshrs": c.mshrs,
                "heap_events": t.heap_events,
                "wall_seconds": list(t.wall_seconds),
                "wall_seconds_median": t.wall_median,
                "events_per_sec": t.events_per_sec,
                "trace_build_seconds": t.trace_build_seconds,
                "trace_source": t.trace_source,
                "engine": c.engine,
                "engine_used": t.engine_used,
                "cycles": t.result.cycles,
                "read_hit_rate": t.result.read_hit_rate,
            }
        return {
            "schema": BENCH_SCHEMA,
            "kind": "repro-bench",
            "label": label,
            "generated": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": self.repeats,
            "discard": self.discard,
            "calibration_ops_per_sec": self.calibration_ops_per_sec,
            "trace_build_seconds": self.trace_build_seconds,
            "cells": cells,
        }

    @property
    def trace_build_seconds(self) -> float:
        """Total workload-materialization time across the grid (excluded
        from the per-repeat walls, reported so the amortization the sweep
        fabric buys is visible next to raw sim throughput)."""
        return sum(t.trace_build_seconds for t in self.timings)

    def render(self) -> str:
        lines = [
            f"{'design':<16} {'benchmark':<10} {'reads':>6} {'events':>9} "
            f"{'wall_s(med)':>11} {'ev/s':>10} {'trace':>6}"
        ]
        for t in self.timings:
            lines.append(
                f"{t.cell.design:<16} {t.cell.benchmark:<10} "
                f"{t.cell.reads_per_core:>6d} {t.heap_events:>9d} "
                f"{t.wall_median:>11.3f} {t.events_per_sec:>10.0f} "
                f"{t.trace_source or '-':>6}"
            )
        lines.append(
            f"-- {len(self.timings)} cells | {self.repeats} repeats "
            f"(+{self.discard} warmup discarded) | "
            f"{self.trace_build_seconds:.2f}s trace build | "
            f"{self.elapsed_seconds:.1f}s elapsed"
        )
        return "\n".join(lines)


def calibrate(loops: int = 200_000) -> float:
    """Throughput of a fixed pure-Python loop (ops/sec), used to normalize
    events/sec across hosts of different single-core speed."""
    acc = 0.0
    d = {"a": 1.0, "b": 2.0}
    started = time.perf_counter()
    for i in range(loops):
        acc += d["a"] * 0.5 + d["b"]
        d["a"] = acc % 7.0
    elapsed = time.perf_counter() - started
    return loops / elapsed if elapsed > 0 else 0.0


def run_bench(
    cells: Sequence[BenchCell],
    repeats: int = DEFAULT_REPEATS,
    discard: int = DEFAULT_DISCARD,
    progress=None,
) -> BenchRun:
    """Time every cell serially (parallel timing would contend for cores
    and corrupt the wall-clock medians)."""
    started = time.perf_counter()
    calibration = calibrate()
    timings = []
    for cell in cells:
        timing = time_cell(cell, repeats=repeats, discard=discard)
        timings.append(timing)
        if progress is not None:
            progress(timing)
    return BenchRun(
        timings=timings,
        repeats=repeats,
        discard=discard,
        calibration_ops_per_sec=calibration,
        elapsed_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Payload persistence and baseline comparison
# ----------------------------------------------------------------------
def default_bench_path(root: Path = Path(".")) -> Path:
    """``BENCH_<today>.json`` at ``root``."""
    return root / f"{BENCH_PREFIX}{_dt.date.today().isoformat()}.json"


def write_bench(payload: Dict, path: Path) -> None:
    path = Path(path)
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")


def load_bench(path: Path) -> Dict:
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro-bench":
        raise ValueError(f"{path} is not a repro-bench payload")
    if data.get("schema", 0) > BENCH_SCHEMA:
        raise ValueError(
            f"{path} uses bench schema {data['schema']}, newer than "
            f"this code's {BENCH_SCHEMA}"
        )
    return data


def latest_bench_file(root: Path = Path(".")) -> Optional[Path]:
    """Newest committed ``BENCH_*.json`` under ``root``, by *parsed* date.

    The date embedded in the file name is parsed as ISO-8601 (date or
    datetime), not compared lexically — ``BENCH_2026-8-9.json`` no longer
    outranks ``BENCH_2026-12-01.json``. Returns ``None`` when there are no
    candidates at all; raises ``ValueError`` (listing every candidate) when
    any candidate's date fails to parse or two candidates tie for newest,
    so the caller can ask for an explicit ``--baseline`` instead of gating
    against an arbitrary file.
    """
    candidates = sorted(Path(root).glob(f"{BENCH_PREFIX}*.json"))
    if not candidates:
        return None
    dated = []
    unparsed = []
    for path in candidates:
        stem = path.name[len(BENCH_PREFIX) : -len(".json")]
        try:
            stamp = _dt.datetime.fromisoformat(stem)
        except ValueError:
            unparsed.append(path.name)
            continue
        if stamp.tzinfo is not None:
            # Mixed offset-aware and naive stamps would make max() raise;
            # fold everything to naive UTC.
            stamp = stamp.astimezone(_dt.timezone.utc).replace(tzinfo=None)
        dated.append((stamp, path))
    if unparsed:
        raise ValueError(
            f"cannot parse an ISO date out of {', '.join(unparsed)} "
            f"(expected {BENCH_PREFIX}<YYYY-MM-DD>.json; candidates: "
            f"{', '.join(p.name for p in candidates)}); "
            "pass --baseline explicitly"
        )
    newest = max(stamp for stamp, _ in dated)
    best = [path for stamp, path in dated if stamp == newest]
    if len(best) > 1:
        raise ValueError(
            f"{len(best)} bench files tie for newest "
            f"({', '.join(p.name for p in best)}); "
            "pass --baseline explicitly"
        )
    return best[0]


def compare(
    current: Dict,
    baseline: Dict,
    tolerance: float = 0.30,
    min_speedup: float = 0.0,
) -> Dict:
    """Gate ``current`` events/sec against ``baseline`` per shared cell.

    A cell *fails* when its (calibration-normalized) events/sec drops below
    ``(1 - tolerance)`` of the baseline. Cells faster than
    ``(1 + tolerance)x`` are flagged as improvements — a hint the committed
    baseline is stale — but do not fail the gate. With ``min_speedup`` the
    gate inverts into a *floor*: every shared cell must run at least that
    many times faster than the host-scaled baseline (how CI proves the
    batch engine beats the committed interpreter numbers). Returns a
    summary dict that callers can embed into the emitted payload.
    """
    cur_cal = float(current.get("calibration_ops_per_sec") or 0.0)
    base_cal = float(baseline.get("calibration_ops_per_sec") or 0.0)
    host_scale = cur_cal / base_cal if cur_cal > 0 and base_cal > 0 else 1.0
    floor = min_speedup if min_speedup > 0 else 1.0 - tolerance

    cells = {}
    regressions = []
    improvements = []
    shared = sorted(
        set(current.get("cells", {})) & set(baseline.get("cells", {}))
    )
    for cell_id in shared:
        cur_eps = float(current["cells"][cell_id]["events_per_sec"])
        base_eps = float(baseline["cells"][cell_id]["events_per_sec"])
        # Scale the baseline to the current host's calibrated speed.
        expected = base_eps * host_scale
        ratio = cur_eps / expected if expected > 0 else 0.0
        ok = ratio >= floor
        cells[cell_id] = {
            "baseline_events_per_sec": base_eps,
            "current_events_per_sec": cur_eps,
            "host_scale": host_scale,
            "speedup": ratio,
            "ok": ok,
        }
        if not ok:
            regressions.append(cell_id)
        elif ratio > 1.0 + tolerance:
            improvements.append(cell_id)
    return {
        "baseline_label": baseline.get("label", ""),
        "baseline_generated": baseline.get("generated", ""),
        "tolerance": tolerance,
        "min_speedup": min_speedup,
        "shared_cells": len(shared),
        "cells": cells,
        "regressions": regressions,
        "improvements": improvements,
        "verdict": (
            "fail"
            if regressions
            else ("empty" if not shared else "pass")
        ),
    }


def render_comparison(comparison: Dict) -> str:
    floor = float(comparison.get("min_speedup") or 0.0)
    band = (
        f"required speedup >= {floor:g}x"
        if floor > 0
        else f"tolerance ±{comparison['tolerance']:.0%}"
    )
    lines = [
        f"vs baseline ({comparison.get('baseline_label') or 'unlabeled'}, "
        f"generated {comparison.get('baseline_generated', '?')}, "
        f"{band}):"
    ]
    for cell_id, row in sorted(comparison["cells"].items()):
        mark = (
            "ok"
            if row["ok"]
            else ("BELOW FLOOR" if floor > 0 else "REGRESSION")
        )
        if (
            floor <= 0
            and row["ok"]
            and row["speedup"] > 1.0 + comparison["tolerance"]
        ):
            mark = "improved (baseline stale?)"
        lines.append(
            f"  {cell_id:<44} {row['baseline_events_per_sec']:>10.0f} -> "
            f"{row['current_events_per_sec']:>10.0f} ev/s "
            f"({row['speedup']:.2f}x)  {mark}"
        )
    if comparison["verdict"] == "empty":
        lines.append("  (no shared cells between run and baseline)")
    return "\n".join(lines)
