"""Performance harness: the ``repro bench`` grid and golden-result gates.

Two pillars keep the simulator's performance trajectory honest:

* :mod:`repro.perf.bench` — times a pinned (design x benchmark x reads)
  grid, reports events/sec and wall seconds per cell with warmup-discarded
  medians, and emits a schema-versioned ``BENCH_<date>.json`` so every
  optimization PR leaves a measurable trace. ``compare()`` gates CI within
  a tolerance band around a committed baseline.
* :mod:`repro.perf.golden` — captures the paper-fidelity scorecard (the
  cycle-exact Figure 3 replay plus a pinned simulation grid) as canonical
  JSON, so any behavioral drift — not just a perf regression — fails CI
  with a field-level diff.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchCell,
    BenchRun,
    CellTiming,
    compare,
    latest_bench_file,
    load_bench,
    make_bench_grid,
    run_bench,
    time_cell,
    write_bench,
)
from repro.perf.golden import (
    GOLDEN_SCHEMA,
    canonical_dumps,
    check_golden,
    golden_payload,
    write_golden,
)
