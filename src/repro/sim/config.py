"""System configuration (paper Table 2) and the capacity-scaling rule.

The paper simulates 8 cores at 4 GHz, an 8 MB L3 with a 24-cycle latency,
2-channel off-chip DDR3 and 4-channel stacked DRAM. All latencies here are
processor cycles.

Capacity scaling
----------------
A pure-Python simulator cannot execute 1 B instructions per core, so we run
reduced traces and scale the DRAM-cache capacity and workload footprints down
by the same ``capacity_scale`` factor (default 256: 256 MB nominal -> 1 MB
simulated). Line size, row size and sets-per-row stay fixed, so hit rates,
row-buffer locality and per-access traffic — the quantities the paper's
trade-off analysis rests on — are preserved. All reports use nominal sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.dram.timings import DramTimings, OFFCHIP_DDR3, STACKED_DRAM
from repro.units import MB


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration for one simulation.

    Attributes:
        num_cores: Cores running in rate mode (paper: 8).
        l3_latency: L3 lookup latency in cycles; charged on every L3 miss
            before the request reaches the DRAM-cache controller, and equal
            to the SRAM-tag and MissMap lookup latencies (paper: 24).
        sram_tag_latency: Tag Serialization Latency of the SRAM-Tag design.
        missmap_latency: Predictor Serialization Latency of the MissMap.
        predictor_latency: Latency of the MAP predictors (paper: 1 cycle).
        cache_size_bytes: *Nominal* DRAM-cache capacity (e.g. 256 MB).
        capacity_scale: Divisor applied to the nominal capacity (and, by the
            workload builders, to footprints) to keep runs tractable.
        offchip: Off-chip DRAM timing preset.
        stacked: Stacked DRAM timing preset.
        write_issue_cycles: Cycles a core spends issuing a (posted) write.
        mshrs_per_core: Outstanding demand reads a core may overlap. 1 is
            the default blocking-read model; larger values approximate an
            out-of-order core's memory-level parallelism (see the
            ``mlp-sweep`` extension experiment).
    """

    num_cores: int = 8
    l3_latency: int = 24
    sram_tag_latency: int = 24
    missmap_latency: int = 24
    predictor_latency: int = 1
    cache_size_bytes: int = 256 * MB
    capacity_scale: int = 256
    offchip: DramTimings = field(default_factory=lambda: OFFCHIP_DDR3)
    stacked: DramTimings = field(default_factory=lambda: STACKED_DRAM)
    write_issue_cycles: int = 1
    mshrs_per_core: int = 1
    #: Row-buffer management for each device: "open" (paper) or "closed".
    offchip_page_policy: str = "open"
    stacked_page_policy: str = "open"
    #: When False, designs skip latency-histogram sampling on the per-read
    #: hot path: means/counters are unchanged, but percentile outputs
    #: (hit/read latency p95, per-stage p95) come back empty. A perf knob
    #: for sweeps that only consume means.
    track_percentiles: bool = True
    #: Install the runtime invariant layer (:mod:`repro.verify.invariants`)
    #: on this system: per-access timing-order/decomposition checks plus
    #: end-of-run conservation audits. Also enabled by ``REPRO_VERIFY=1``.
    #: Off by default and genuinely zero-cost when off (nothing is
    #: installed, the hot path gains no branches).
    verify: bool = False
    #: Simulation engine: "interp" (the reference event interpreter),
    #: "batch" (:mod:`repro.sim.batch` — vectorized precompute + compact
    #: scalar core, bit-identical results), "auto" (batch whenever the
    #: configuration is inside its envelope, interpreter otherwise — what
    #: the sweep/jobs/explore workers run under), or "" to defer to the
    #: ``REPRO_ENGINE`` environment variable (default: interp). "batch"
    #: and "auto" both fall back to the interpreter for configurations
    #: outside the envelope (verify runs, subclassed designs/devices).
    engine: str = ""

    @property
    def scaled_cache_bytes(self) -> int:
        """The capacity actually simulated after scaling."""
        scaled = self.cache_size_bytes // self.capacity_scale
        # Keep a whole number of 2 KB rows.
        return max(scaled - scaled % self.stacked.row_bytes, self.stacked.row_bytes)

    def with_cache_size(self, nominal_bytes: int) -> "SystemConfig":
        """Copy with a different nominal cache size (Figure 9 sweeps)."""
        return replace(self, cache_size_bytes=nominal_bytes)

    def with_scale(self, capacity_scale: int) -> "SystemConfig":
        """Copy with a different capacity scale factor."""
        return replace(self, capacity_scale=capacity_scale)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Rebuild a config from ``dataclasses.asdict`` output.

        The inverse of the flattening used by job manifests
        (:mod:`repro.jobs`): nested timing dicts become
        :class:`DramTimings` again and unknown keys are ignored, so
        manifests written by newer code still load (any semantic drift is
        caught by the content keys, which cover every field).
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        timing_fields = {f.name for f in fields(DramTimings)}
        for device in ("offchip", "stacked"):
            value = kwargs.get(device)
            if isinstance(value, dict):
                kwargs[device] = DramTimings(
                    **{k: v for k, v in value.items() if k in timing_fields}
                )
        return cls(**kwargs)
