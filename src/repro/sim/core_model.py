"""Trace-driven core model.

Each core replays its L3-miss stream in order. Demand reads block: the next
record issues ``gap`` compute cycles after the previous blocking access
completed. Writebacks are posted — they cost one issue cycle and never block
the core (writes are off the critical path, Section 5.3).

This deliberately simple in-order memory model keeps the comparison between
DRAM-cache designs honest: every design sees identical request streams, and
relative speedups are driven entirely by the memory system.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.trace import CoreTrace


def _tolist(arr):
    """Materialize a numpy array (or any sequence) as a plain list."""
    tolist = getattr(arr, "tolist", None)
    return tolist() if tolist is not None else arr


class Core:
    """Cursor over one core's trace with completion-time bookkeeping.

    The trace's numpy arrays are converted to plain Python lists up front:
    the event loop consumes one scalar per event, and per-element numpy
    scalar extraction (``arr[i]`` + ``int()``/``float()`` boxing) costs
    several times a plain list index on that path. The one-time conversion
    applies the same ``float``/``int``/``bool`` casts the per-record path
    used to, so consumers see identical values and types.
    """

    def __init__(self, core_id: int, trace: CoreTrace, start_index: int = 0) -> None:
        self.core_id = core_id
        self._gaps = [float(g) for g in _tolist(trace.gaps)]
        self._addresses = [int(a) for a in _tolist(trace.addresses)]
        self._is_write = [bool(w) for w in _tolist(trace.is_write)]
        self._pcs = [int(p) for p in _tolist(trace.pcs)]
        self._dependent = [bool(d) for d in _tolist(trace.dependent_flags())]
        self._index = start_index
        self._length = len(trace)
        #: Cycle at which this core's last record completed.
        self.finish_time = 0.0
        self.reads_issued = 0
        self.writes_issued = 0
        #: Completion times of in-flight demand reads (MLP cores only).
        self.outstanding: list = []
        #: Completion time of the most recent demand read (dependence point).
        self.last_read_done = 0.0

    # -- MSHR tracking (used when config.mshrs_per_core > 1) ------------
    def retire_completed(self, now: float) -> None:
        """Drop outstanding reads that have completed by ``now``."""
        self.outstanding = [t for t in self.outstanding if t > now]

    def mshr_full(self, limit: int) -> bool:
        return len(self.outstanding) >= limit

    def earliest_completion(self) -> float:
        return min(self.outstanding)

    # ------------------------------------------------------------------
    def has_next(self) -> bool:
        return self._index < self._length

    def peek_gap(self) -> float:
        """Compute-cycle gap preceding the next record."""
        return self._gaps[self._index]

    def next_record(self) -> Tuple[int, bool, int]:
        """Consume and return the next (address, is_write, pc) record."""
        i = self._index
        self._index = i + 1
        is_write = self._is_write[i]
        if is_write:
            self.writes_issued += 1
        else:
            self.reads_issued += 1
        return self._addresses[i], is_write, self._pcs[i]

    def next_is_dependent(self) -> bool:
        """True if the next record is a dependent (pointer-chase) read."""
        return self._dependent[self._index]

    @property
    def remaining(self) -> int:
        return self._length - self._index

    def progress(self) -> float:
        """Fraction of the trace consumed (monitoring helper)."""
        return self._index / self._length if self._length else 1.0


def warmup_split(trace: CoreTrace, warmup_fraction: float) -> int:
    """Index separating functional-warmup records from timed records."""
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    return int(len(trace) * warmup_fraction)
