"""Simulation result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional


@dataclass
class SimResult:
    """Everything an experiment needs from one (workload, design) run.

    Speedups are computed against a baseline result via :meth:`speedup_vs`;
    the runner in :mod:`repro.sim.runner` wires that up.
    """

    workload: str
    design: str
    #: Average per-core execution time in cycles (the paper's metric).
    cycles: float
    per_core_cycles: List[float] = field(default_factory=list)
    instructions: int = 0
    #: Demand-read DRAM-cache hit rate.
    read_hit_rate: float = 0.0
    overall_hit_rate: float = 0.0
    avg_hit_latency: float = 0.0
    avg_read_latency: float = 0.0
    memory_reads: int = 0
    memory_writes: int = 0
    wasted_memory_reads: int = 0
    stacked_row_hit_rate: float = 0.0
    stacked_bus_utilization: float = 0.0
    #: Table 5 scenario counts, keyed pred_{mem,cache}_actual_{mem,cache}.
    predictor_scenarios: Dict[str, int] = field(default_factory=dict)
    design_stats: Dict[str, float] = field(default_factory=dict)
    #: Activity-based energy estimates (paper Section 5.6), in nanojoules.
    memory_energy_nj: float = 0.0
    stacked_energy_nj: float = 0.0
    #: Latency-distribution percentiles (bucket-edge approximations).
    hit_latency_p50: float = 0.0
    hit_latency_p95: float = 0.0
    read_latency_p95: float = 0.0
    #: Per-stage latency attribution over all demand reads (the measured
    #: Figure 3 decomposition): average cycles per read spent in each
    #: lifecycle stage (queue/predictor/tag/data/memory). Every read
    #: samples every stage, so the values sum to ``avg_read_latency``.
    stage_latency_means: Dict[str, float] = field(default_factory=dict)
    #: Per-stage p95 cycles (bucket-edge approximation; ``inf`` when the
    #: 95th-percentile sample fell beyond the last bucket edge).
    stage_latency_p95: Dict[str, float] = field(default_factory=dict)
    #: Lifecycle audit: total absolute cycles the per-stage breakdowns
    #: failed to attribute (0.0 when every read decomposed exactly).
    unattributed_cycles: float = 0.0
    #: Discrete-event heap entries processed while producing this result
    #: (sweep telemetry; 0 for results predating the counter).
    heap_events: int = 0

    # ------------------------------------------------------------------
    def speedup_vs(self, baseline: "SimResult") -> float:
        """Execution-time speedup relative to ``baseline`` (>1 is faster).

        Degenerate runs (zero cycles on either side, possible when a config
        produces an empty timed region) yield 0.0 rather than raising, so
        aggregation can surface the offending value instead of crashing.
        """
        if self.cycles <= 0 or baseline.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def total_dram_energy_nj(self) -> float:
        """Off-chip plus stacked DRAM access energy (Section 5.6 model)."""
        return self.memory_energy_nj + self.stacked_energy_nj

    def energy_per_instruction_nj(self) -> float:
        """DRAM energy amortized per instruction."""
        return (
            self.total_dram_energy_nj / self.instructions
            if self.instructions
            else 0.0
        )

    def predictor_accuracy(self) -> Optional[float]:
        """Fraction of predictions that matched the actual service point."""
        s = self.predictor_scenarios
        if not s:
            return None
        correct = s.get("pred_mem_actual_mem", 0) + s.get(
            "pred_cache_actual_cache", 0
        )
        total = sum(s.values())
        return correct / total if total else None

    def scenario_fractions(self) -> Dict[str, float]:
        """Table 5 rows: each scenario as a fraction of all L3 read misses."""
        total = sum(self.predictor_scenarios.values())
        if not total:
            return {}
        return {k: v / total for k, v in self.predictor_scenarios.items()}

    # ------------------------------------------------------------------
    # Persistence (the on-disk sweep cache stores results as JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict of every field (all values are scalars,
        lists of scalars, or string-keyed scalar dicts)."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (list, dict)):
                value = value.copy()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_dict`; unknown keys are ignored and missing
        keys fall back to field defaults (forward/backward compatible)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
