"""Simulation result records and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimResult:
    """Everything an experiment needs from one (workload, design) run.

    Speedups are computed against a baseline result via :meth:`speedup_vs`;
    the runner in :mod:`repro.sim.runner` wires that up.
    """

    workload: str
    design: str
    #: Average per-core execution time in cycles (the paper's metric).
    cycles: float
    per_core_cycles: List[float] = field(default_factory=list)
    instructions: int = 0
    #: Demand-read DRAM-cache hit rate.
    read_hit_rate: float = 0.0
    overall_hit_rate: float = 0.0
    avg_hit_latency: float = 0.0
    avg_read_latency: float = 0.0
    memory_reads: int = 0
    memory_writes: int = 0
    wasted_memory_reads: int = 0
    stacked_row_hit_rate: float = 0.0
    stacked_bus_utilization: float = 0.0
    #: Table 5 scenario counts, keyed pred_{mem,cache}_actual_{mem,cache}.
    predictor_scenarios: Dict[str, int] = field(default_factory=dict)
    design_stats: Dict[str, float] = field(default_factory=dict)
    #: Activity-based energy estimates (paper Section 5.6), in nanojoules.
    memory_energy_nj: float = 0.0
    stacked_energy_nj: float = 0.0
    #: Latency-distribution percentiles (bucket-edge approximations).
    hit_latency_p50: float = 0.0
    hit_latency_p95: float = 0.0
    read_latency_p95: float = 0.0

    # ------------------------------------------------------------------
    def speedup_vs(self, baseline: "SimResult") -> float:
        """Execution-time speedup relative to ``baseline`` (>1 is faster)."""
        if self.cycles <= 0:
            raise ValueError("result has no cycles")
        return baseline.cycles / self.cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def total_dram_energy_nj(self) -> float:
        """Off-chip plus stacked DRAM access energy (Section 5.6 model)."""
        return self.memory_energy_nj + self.stacked_energy_nj

    def energy_per_instruction_nj(self) -> float:
        """DRAM energy amortized per instruction."""
        return (
            self.total_dram_energy_nj / self.instructions
            if self.instructions
            else 0.0
        )

    def predictor_accuracy(self) -> Optional[float]:
        """Fraction of predictions that matched the actual service point."""
        s = self.predictor_scenarios
        if not s:
            return None
        correct = s.get("pred_mem_actual_mem", 0) + s.get(
            "pred_cache_actual_cache", 0
        )
        total = sum(s.values())
        return correct / total if total else None

    def scenario_fractions(self) -> Dict[str, float]:
        """Table 5 rows: each scenario as a fraction of all L3 read misses."""
        total = sum(self.predictor_scenarios.values())
        if not total:
            return {}
        return {k: v / total for k, v in self.predictor_scenarios.items()}
