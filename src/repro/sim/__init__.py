"""Trace-driven system simulator: cores, L3 boundary, designs, event loop."""

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.system import System
from repro.sim.runner import run_design, compare_designs

__all__ = ["SystemConfig", "SimResult", "System", "run_design", "compare_designs"]
