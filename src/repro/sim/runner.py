"""Convenience runners: simulate designs over workloads and compute speedups.

Baseline (``no-cache``) results are cached per (workload, config) because
every paper figure normalizes against the same baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.system import System
from repro.workloads.spec import build_workload
from repro.workloads.trace import Workload

#: Default trace length per core for experiments; large enough to reach
#: steady state at the default capacity scale, small enough to keep a full
#: figure sweep in minutes.
DEFAULT_READS_PER_CORE = 12000

_baseline_cache: Dict[Tuple, SimResult] = {}


def _config_key(config: SystemConfig) -> Tuple:
    # SystemConfig is a frozen dataclass of hashable fields, so the whole
    # config participates in the baseline cache key (a partial key once
    # caused stale baselines when sweeping mshrs_per_core).
    return (config,)


def run_design(
    design: Union[str, Callable],
    workload: Workload,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
) -> SimResult:
    """Simulate one design over a prebuilt workload.

    ``design`` is a canonical name from :data:`repro.dramcache.DESIGN_NAMES`
    or a builder callable ``(config, stacked, memory, schedule) -> design``
    for custom configurations (used by the extension experiments).
    """
    config = config or SystemConfig()
    system = System(config, design, workload, warmup_fraction=warmup_fraction)
    return system.run()


def run_benchmark(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    warmup_fraction: float = 0.25,
    seed: int = 1,
) -> SimResult:
    """Build the rate-mode workload for ``benchmark`` and simulate ``design``."""
    config = config or SystemConfig()
    workload = build_workload(
        benchmark,
        num_cores=config.num_cores,
        reads_per_core=reads_per_core,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )
    return run_design(design, workload, config, warmup_fraction=warmup_fraction)


def baseline_result(
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
) -> SimResult:
    """The ``no-cache`` baseline for a benchmark, cached across experiments."""
    config = config or SystemConfig()
    key = (benchmark, reads_per_core, seed) + _config_key(config)
    if key not in _baseline_cache:
        _baseline_cache[key] = run_benchmark(
            "no-cache", benchmark, config, reads_per_core, seed=seed
        )
    return _baseline_cache[key]


def speedup(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
) -> Tuple[float, SimResult]:
    """Speedup of ``design`` over the no-cache baseline, plus the raw result."""
    config = config or SystemConfig()
    base = baseline_result(benchmark, config, reads_per_core, seed=seed)
    result = run_benchmark(design, benchmark, config, reads_per_core, seed=seed)
    return result.speedup_vs(base), result


def compare_designs(
    designs: Iterable[str],
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
) -> Dict[str, Tuple[float, SimResult]]:
    """Run several designs on one benchmark; returns design -> (speedup, result)."""
    return {
        design: speedup(design, benchmark, config, reads_per_core, seed=seed)
        for design in designs
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-workload aggregate."""
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(vals))
