"""Convenience runners: simulate designs over workloads and compute speedups.

Every named-design run here routes through the sweep/job execution layer
(:func:`repro.sim.parallel.run_sweep`, itself a thin client of
:mod:`repro.jobs`), so there is exactly **one** execution entry point in
the codebase: :func:`run_design` is the per-cell primitive the executor
calls, and everything else is a one-cell sweep. Baseline (``no-cache``)
results are served from the persistent result cache because every paper
figure normalizes against the same baseline; the cache key covers the full
frozen ``SystemConfig`` plus ``warmup_fraction``, ``reads_per_core`` and
``seed``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.system import System
from repro.workloads.trace import Workload

#: Default trace length per core for experiments; large enough to reach
#: steady state at the default capacity scale, small enough to keep a full
#: figure sweep in minutes.
DEFAULT_READS_PER_CORE = 12000


def run_design(
    design: Union[str, Callable],
    workload: Workload,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
) -> SimResult:
    """Simulate one design over a prebuilt workload.

    ``design`` is a canonical name from :data:`repro.dramcache.DESIGN_NAMES`
    or a builder callable ``(config, stacked, memory, schedule) -> design``
    for custom configurations (used by the extension experiments).
    """
    config = config or SystemConfig()
    system = System(config, design, workload, warmup_fraction=warmup_fraction)
    return system.run()


def run_cell(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    warmup_fraction: float = 0.25,
    seed: int = 1,
    use_cache: bool = False,
) -> SimResult:
    """One-cell sweep through the shared execution layer.

    The single serial entry point behind :func:`run_benchmark` and
    :func:`baseline_result`: builds a :class:`~repro.sim.parallel.SweepCell`
    and runs it through :func:`~repro.sim.parallel.run_sweep`, so workload
    materialization (content-keyed arena), caching and telemetry behave
    identically to every other execution path.
    """
    from repro.sim.parallel import SweepCell, run_sweep

    cell = SweepCell(
        design=design,
        benchmark=benchmark,
        config=config or SystemConfig(),
        reads_per_core=reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    return run_sweep([cell], max_workers=1, use_cache=use_cache).cells[0].result


def run_benchmark(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    warmup_fraction: float = 0.25,
    seed: int = 1,
) -> SimResult:
    """Build the rate-mode workload for ``benchmark`` and simulate ``design``.

    Always simulates (no result-cache consultation) — the historical
    contract of this helper, which verification harnesses rely on.
    """
    return run_cell(
        design,
        benchmark,
        config,
        reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
        use_cache=False,
    )


def baseline_result(
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> SimResult:
    """The ``no-cache`` baseline for a benchmark, cached across experiments.

    Served from (and stored into) the persistent sweep cache by the shared
    executor; the key includes ``warmup_fraction``, so non-default-warmup
    runs no longer normalize against a 0.25-warmup baseline.
    """
    return run_cell(
        "no-cache",
        benchmark,
        config,
        reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
        use_cache=True,
    )


def speedup(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> Tuple[float, SimResult]:
    """Speedup of ``design`` over the no-cache baseline, plus the raw result."""
    config = config or SystemConfig()
    base = baseline_result(
        benchmark,
        config,
        reads_per_core,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )
    result = run_benchmark(
        design,
        benchmark,
        config,
        reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    return result.speedup_vs(base), result


def compare_designs(
    designs: Iterable[str],
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> Dict[str, Tuple[float, SimResult]]:
    """Run several designs on one benchmark; returns design -> (speedup, result)."""
    return {
        design: speedup(
            design,
            benchmark,
            config,
            reads_per_core,
            seed=seed,
            warmup_fraction=warmup_fraction,
        )
        for design in designs
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-workload aggregate."""
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for i, v in enumerate(vals):
        if v <= 0:
            raise ValueError(
                f"geometric mean requires positive values; "
                f"got {v!r} at index {i} of {vals!r}"
            )
        product *= v
    return product ** (1.0 / len(vals))
