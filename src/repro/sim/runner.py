"""Convenience runners: simulate designs over workloads and compute speedups.

Baseline (``no-cache``) results are cached through the persistent sweep
cache in :mod:`repro.sim.parallel` because every paper figure normalizes
against the same baseline; the cache key covers the full frozen
``SystemConfig`` plus ``warmup_fraction``, ``reads_per_core`` and ``seed``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.sim.system import System
from repro.workloads.spec import build_workload
from repro.workloads.trace import Workload

#: Default trace length per core for experiments; large enough to reach
#: steady state at the default capacity scale, small enough to keep a full
#: figure sweep in minutes.
DEFAULT_READS_PER_CORE = 12000


def run_design(
    design: Union[str, Callable],
    workload: Workload,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.25,
) -> SimResult:
    """Simulate one design over a prebuilt workload.

    ``design`` is a canonical name from :data:`repro.dramcache.DESIGN_NAMES`
    or a builder callable ``(config, stacked, memory, schedule) -> design``
    for custom configurations (used by the extension experiments).
    """
    config = config or SystemConfig()
    system = System(config, design, workload, warmup_fraction=warmup_fraction)
    return system.run()


def run_benchmark(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    warmup_fraction: float = 0.25,
    seed: int = 1,
) -> SimResult:
    """Build the rate-mode workload for ``benchmark`` and simulate ``design``."""
    config = config or SystemConfig()
    workload = build_workload(
        benchmark,
        num_cores=config.num_cores,
        reads_per_core=reads_per_core,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )
    return run_design(design, workload, config, warmup_fraction=warmup_fraction)


def baseline_result(
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> SimResult:
    """The ``no-cache`` baseline for a benchmark, cached across experiments.

    Served from (and stored into) the persistent sweep cache; the key
    includes ``warmup_fraction``, so non-default-warmup runs no longer
    normalize against a 0.25-warmup baseline.
    """
    from repro.sim.parallel import cell_key, get_result_cache

    config = config or SystemConfig()
    cache = get_result_cache()
    key = cell_key(
        "no-cache", benchmark, config, reads_per_core, warmup_fraction, seed
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = run_benchmark(
        "no-cache",
        benchmark,
        config,
        reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    cache.put(key, result)
    return result


def speedup(
    design: str,
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> Tuple[float, SimResult]:
    """Speedup of ``design`` over the no-cache baseline, plus the raw result."""
    config = config or SystemConfig()
    base = baseline_result(
        benchmark,
        config,
        reads_per_core,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )
    result = run_benchmark(
        design,
        benchmark,
        config,
        reads_per_core,
        warmup_fraction=warmup_fraction,
        seed=seed,
    )
    return result.speedup_vs(base), result


def compare_designs(
    designs: Iterable[str],
    benchmark: str,
    config: Optional[SystemConfig] = None,
    reads_per_core: int = DEFAULT_READS_PER_CORE,
    seed: int = 1,
    warmup_fraction: float = 0.25,
) -> Dict[str, Tuple[float, SimResult]]:
    """Run several designs on one benchmark; returns design -> (speedup, result)."""
    return {
        design: speedup(
            design,
            benchmark,
            config,
            reads_per_core,
            seed=seed,
            warmup_fraction=warmup_fraction,
        )
        for design in designs
    }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-workload aggregate."""
    vals = list(values)
    if not vals:
        return 0.0
    product = 1.0
    for i, v in enumerate(vals):
        if v <= 0:
            raise ValueError(
                f"geometric mean requires positive values; "
                f"got {v!r} at index {i} of {vals!r}"
            )
        product *= v
    return product ** (1.0 / len(vals))
