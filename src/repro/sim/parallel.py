"""Parallel sweep executor: persistent result cache + shared-workload fabric.

Every paper artifact is a sweep over (design x benchmark x config) cells.
This module turns that grid into an explicit work list and provides:

* :class:`SweepCell` — one fully-specified simulation: design name,
  benchmark, frozen :class:`~repro.sim.config.SystemConfig`, trace length,
  warmup fraction and seed.
* :class:`ResultCache` — a two-tier cache. The in-memory tier replaces the
  old module-global baseline dict in :mod:`repro.sim.runner`; the on-disk
  tier persists every completed cell as JSON under ``.repro_cache/`` so a
  crashed or repeated sweep resumes from completed cells. Keys are a SHA-256
  over the *content* of the cell — design, benchmark, seed, reads_per_core,
  warmup_fraction and every field of the frozen ``SystemConfig`` (timings
  included) — plus a schema version and the package version, so changing any
  knob or upgrading the model invalidates the entry.
* :func:`run_sweep` — a thin client of the resumable job layer
  (:mod:`repro.jobs`): cells are wrapped in an ephemeral (journal-less)
  job and executed by :func:`repro.jobs.engine.submit_job`, the single
  fan-out loop shared with named jobs and ``repro explore``. Cells fan
  out over a lazily-created **persistent** process pool (``max_workers=1``
  runs in-process through the *same* cell function, so serial and
  parallel paths are bit-identical). The pool is reused across
  ``run_sweep`` calls in one process — ``repro report`` issues dozens of
  sweeps and pays pool startup once.
* **Shared-workload fabric** — all designs in a grid row consume the same
  workload, so the parent materializes each unique workload exactly once
  (through the content-keyed :mod:`repro.workloads.arena`), packs its
  arrays into a ``multiprocessing.shared_memory`` segment, and ships
  workers a small picklable handle instead of regenerating — or pickling —
  megabytes of trace arrays per cell. Workers memoize attachments, so a
  workload crosses the process boundary once per worker, not once per
  cell. Segments are torn down in a ``finally`` (plus an ``atexit``
  backstop in the arena module), so nothing survives in ``/dev/shm`` on
  success, exception, or Ctrl-C.
* :class:`SweepReport` — per-cell telemetry (sim wall seconds, trace-build
  seconds, trace source, heap events, events/sec, cache hit/miss) plus
  sweep-level amortization: unique workloads vs generator runs vs cells.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache`` in the
  current working directory).
* ``REPRO_CACHE=0`` — disable the on-disk result tier (memory tier stays
  on).
* ``REPRO_TRACE_CACHE=0`` — disable the on-disk ``.npz`` trace arenas
  (see :mod:`repro.workloads.arena`).
* ``REPRO_SHARED_TRACES=0`` — disable the shared-memory fan-out and the
  persistent pool; parallel sweeps fall back to an ephemeral pool whose
  workers build workloads themselves (kept as a comparison/escape hatch).
* ``REPRO_JOBS`` — default worker count for the experiment-layer sweeps.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.workloads.arena import (
    TRACE_SUBDIR,
    SharedWorkloadHandle,
    WorkloadParams,
    attach_workload,
    get_workload_arena,
)

#: Bump when the cache file layout (not the simulated content) changes.
#: 2: per-stage latency attribution fields on SimResult (ISSUE 2).
CACHE_SCHEMA = 2


def result_signature() -> Tuple[str, ...]:
    """The sorted :class:`SimResult` field names.

    Part of every cache key, so any change to the result shape — new
    breakdown fields, renames — automatically invalidates stale
    ``.repro_cache/`` entries instead of deserializing into wrong-shaped
    results via ``from_dict``'s lenient unknown/missing-key handling.
    """
    return tuple(sorted(f.name for f in fields(SimResult)))

#: Default on-disk cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """Cache directory honouring the ``REPRO_CACHE_DIR`` override."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def cache_enabled() -> bool:
    """Whether the on-disk tier is enabled (``REPRO_CACHE=0`` disables)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def shared_traces_enabled() -> bool:
    """Whether the shared-workload fabric is on (``REPRO_SHARED_TRACES=0``
    falls back to ephemeral pools with worker-side workload builds)."""
    return os.environ.get("REPRO_SHARED_TRACES", "1") != "0"


def default_workers() -> int:
    """Worker count for experiment sweeps (``REPRO_JOBS``, default 1)."""
    raw = os.environ.get("REPRO_JOBS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        print(
            f"repro: REPRO_JOBS={raw!r} is not an integer; using 1 worker",
            file=sys.stderr,
        )
        return 1


# ----------------------------------------------------------------------
# Sweep cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One fully-specified simulation in a sweep grid."""

    design: str
    benchmark: str
    config: SystemConfig = field(default_factory=SystemConfig)
    reads_per_core: int = 12000
    warmup_fraction: float = 0.25
    seed: int = 1

    def key(self) -> str:
        """Content hash identifying this cell in the persistent cache."""
        return cell_key(
            self.design,
            self.benchmark,
            self.config,
            self.reads_per_core,
            self.warmup_fraction,
            self.seed,
        )

    def workload_params(self) -> WorkloadParams:
        """The content-keyed workload this cell consumes.

        The workload name is resolved (``gcc`` and ``gcc_r`` share one
        arena entry; mixes and ``trace:`` specs pass through validated),
        so every design in a grid row maps to the same key.
        """
        from repro.workloads.spec import resolve_workload

        return WorkloadParams(
            benchmark=resolve_workload(self.benchmark),
            num_cores=self.config.num_cores,
            reads_per_core=self.reads_per_core,
            capacity_scale=self.config.capacity_scale,
            seed=self.seed,
        )


def make_cells(
    designs: Iterable[str],
    benchmarks: Iterable[str],
    config: Optional[SystemConfig] = None,
    reads_per_core: int = 12000,
    warmup_fraction: float = 0.25,
    seed: int = 1,
) -> List[SweepCell]:
    """The full (design x benchmark) grid as a list of cells."""
    config = config or SystemConfig()
    return [
        SweepCell(
            design=design,
            benchmark=benchmark,
            config=config,
            reads_per_core=reads_per_core,
            warmup_fraction=warmup_fraction,
            seed=seed,
        )
        for benchmark in benchmarks
        for design in designs
    ]


def _config_dict(config: SystemConfig) -> Dict:
    """The frozen config flattened to JSON-safe primitives (recursively).

    ``engine`` is dropped: the batch engine is bit-exact with the
    interpreter, so cached results are valid regardless of which engine
    produced them and the cache key must not fragment on it.
    """
    flat = asdict(config)
    flat.pop("engine", None)
    return flat


def cell_key(
    design: str,
    benchmark: str,
    config: SystemConfig,
    reads_per_core: int,
    warmup_fraction: float,
    seed: int,
) -> str:
    """SHA-256 content key over everything that determines a ``SimResult``.

    Includes every ``SystemConfig`` field (a partial key once caused stale
    baselines when sweeping ``mshrs_per_core``), ``warmup_fraction`` (the old
    in-memory baseline cache omitted it — see ISSUE 1), the package version
    so model changes invalidate old entries, and the sorted ``SimResult``
    field names (:func:`result_signature`) so result-shape changes do too.
    """
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "result_fields": list(result_signature()),
        "design": design.lower(),
        "benchmark": benchmark,
        "seed": seed,
        "reads_per_core": reads_per_core,
        "warmup_fraction": warmup_fraction,
        "config": _config_dict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Persistent result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Two-tier (memory + JSON-on-disk) cache of completed simulation cells.

    Disk writes are atomic (write to a unique temp file, then ``os.replace``)
    so concurrent workers never expose torn files. Each entry stores the
    serialized :class:`SimResult` plus the telemetry of the run that produced
    it, so cache hits still report heap events.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        persist: Optional[bool] = None,
    ) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.persist = cache_enabled() if persist is None else persist
        self._memory: Dict[str, Tuple[SimResult, Dict]] = {}
        self.hits = 0
        self.misses = 0

    # -- paths ----------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- lookup ---------------------------------------------------------
    def get(self, key: str) -> Optional[SimResult]:
        """Cached result for ``key`` (memory first, then disk), else None."""
        entry = self.get_entry(key)
        return entry[0] if entry else None

    def get_entry(self, key: str) -> Optional[Tuple[SimResult, Dict]]:
        """(result, telemetry-of-original-run) for ``key``, else None."""
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.persist:
            path = self._path(key)
            if path.exists():
                try:
                    data = json.loads(path.read_text())
                    result = SimResult.from_dict(data["result"])
                except (OSError, ValueError, KeyError, TypeError):
                    # Torn/stale file — or one a concurrent pruner deleted
                    # between exists() and read — is a miss; recompute.
                    self.misses += 1
                    return None
                telemetry = data.get("telemetry", {})
                self._memory[key] = (result, telemetry)
                self.hits += 1
                return result, telemetry
        self.misses += 1
        return None

    # -- store ----------------------------------------------------------
    def put(
        self,
        key: str,
        result: SimResult,
        telemetry: Optional[Dict] = None,
        describe: Optional[Dict] = None,
    ) -> None:
        """Store a completed cell in both tiers."""
        telemetry = telemetry or {}
        self._memory[key] = (result, telemetry)
        if self.persist:
            _write_cache_file(
                self._path(key), result, telemetry, describe or {}
            )

    def remember(
        self, key: str, result: SimResult, telemetry: Optional[Dict] = None
    ) -> None:
        """Adopt a completed cell into the memory tier only.

        For results another process already persisted (pool workers write
        their own cells to disk before returning) — the parent mirrors
        them without a redundant disk write or re-read.
        """
        self._memory[key] = (result, telemetry or {})

    def clear(self, disk: bool = True) -> None:
        """Drop the memory tier and (optionally) every on-disk entry."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        if disk and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        # An empty cache must still be truthy: ``cache or default`` would
        # otherwise silently swap a caller's fresh cache for the shared one.
        return True


def _write_cache_file(
    path: Path, result: SimResult, telemetry: Dict, describe: Dict
) -> None:
    """Atomically persist one completed cell (concurrent-worker safe)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CACHE_SCHEMA,
        "cell": describe,
        "telemetry": telemetry,
        "result": result.to_dict(),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
    os.replace(tmp, path)


_shared_caches: Dict[Tuple[str, bool], ResultCache] = {}


def get_result_cache() -> ResultCache:
    """The process-wide shared cache for the current env configuration.

    One instance per (directory, persist) pair so tests that repoint
    ``REPRO_CACHE_DIR`` get a fresh memory tier automatically.
    """
    key = (str(default_cache_dir()), cache_enabled())
    if key not in _shared_caches:
        _shared_caches[key] = ResultCache()
    return _shared_caches[key]


# ----------------------------------------------------------------------
# Cell execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
def _execute_cell(
    cell: SweepCell,
    workload=None,
    trace_telemetry: Optional[Dict] = None,
    trace_dir: Optional[Path] = None,
) -> Tuple[SimResult, Dict]:
    """Run one cell and return (result, telemetry). Pure w.r.t. the cell:
    identical cells produce identical results in any process.

    With no prebuilt ``workload``, fetches through the content-keyed arena
    (memo -> ``.npz`` -> generate). ``wall_seconds`` covers only the
    simulation; workload materialization is reported separately as
    ``trace_build_seconds`` / ``trace_source``.

    Cells with no explicit engine run under ``engine="auto"`` (batch where
    eligible, interpreter otherwise) unless ``REPRO_ENGINE`` is set — the
    env var stays authoritative so CI parity legs can pin either engine.
    The engine that actually produced the result lands in telemetry as
    ``engine_used``; it never affects the result itself (bit-exact) so
    cache keys ignore the engine entirely.
    """
    from repro.sim.system import System

    if workload is None:
        arena = get_workload_arena(trace_dir)
        workload, trace_telemetry = arena.fetch(cell.workload_params())
    trace_telemetry = trace_telemetry or {
        "trace_source": "caller",
        "trace_build_seconds": 0.0,
    }
    config = cell.config
    if not config.engine and "REPRO_ENGINE" not in os.environ:
        config = replace(config, engine="auto")
    started = time.perf_counter()
    system = System(
        config,
        cell.design,
        workload,
        warmup_fraction=cell.warmup_fraction,
    )
    result = system.run()
    wall = time.perf_counter() - started
    telemetry = {
        "wall_seconds": wall,
        "heap_events": result.heap_events,
        "events_per_sec": result.heap_events / wall if wall > 0 else 0.0,
        "engine_used": system.engine_used,
        "trace_build_seconds": float(
            trace_telemetry.get("trace_build_seconds", 0.0)
        ),
        "trace_source": str(trace_telemetry.get("trace_source", "")),
    }
    return result, telemetry


def _cell_describe(cell: SweepCell) -> Dict:
    """Human-readable echo of the cell stored alongside cached results."""
    return {
        "design": cell.design,
        "benchmark": cell.benchmark,
        "seed": cell.seed,
        "reads_per_core": cell.reads_per_core,
        "warmup_fraction": cell.warmup_fraction,
        "config": _config_dict(cell.config),
    }


# -- worker side -------------------------------------------------------
#: Per-worker memo of attached shared workloads, by workload content key.
#: Entries hold (workload, segment) so the mapping outlives the parent's
#: unlink: on Linux the memory stays valid while mapped, which is what
#: lets a persistent pool reuse attachments across run_sweep calls.
_worker_attachments: Dict[str, Tuple[object, object]] = {}

#: FIFO cap on the attachment memo. Evicted segments are closed — safe
#: because the single-threaded worker only touches the entry it just
#: looked up, never an evicted one.
_WORKER_MEMO_CAP = 32


def _attach_cached(handle: SharedWorkloadHandle):
    """Worker-side attach with per-key memoization.

    Returns (workload, trace_telemetry). A memo hit costs nothing — the
    arrays are already mapped into this worker from a previous cell (or a
    previous sweep; content keys make reuse safe across segment names).
    """
    cached = _worker_attachments.get(handle.key)
    if cached is not None:
        return cached[0], {
            "trace_source": "shared-memo",
            "trace_build_seconds": 0.0,
        }
    started = time.perf_counter()
    workload, shm = attach_workload(handle)
    elapsed = time.perf_counter() - started
    while len(_worker_attachments) >= _WORKER_MEMO_CAP:
        _, old_shm = _worker_attachments.pop(next(iter(_worker_attachments)))
        try:
            old_shm.close()
        except OSError:  # pragma: no cover - racing cleanup
            pass
    _worker_attachments[handle.key] = (workload, shm)
    return workload, {
        "trace_source": "shared",
        "trace_build_seconds": elapsed,
    }


def _worker(
    cell: SweepCell,
    cache_dir: Optional[str],
    persist: bool,
    handle: Optional[SharedWorkloadHandle] = None,
) -> Tuple[SimResult, Dict]:
    """Pool entry point: run the cell and persist it before returning, so a
    crashed parent still finds the completed cell on the next run.

    With a :class:`SharedWorkloadHandle` the workload comes zero-copy from
    the parent's shared-memory segment; without one (fabric disabled) the
    worker materializes it through its own arena — the explicit
    ``cache_dir`` keeps forked workers honest when tests repoint
    ``REPRO_CACHE_DIR`` after the pool was spawned.
    """
    kill = os.environ.get("REPRO_TEST_KILL_CELL")
    if kill and kill == f"{cell.design}/{cell.benchmark}":
        # Crash-injection hook for the resume tests and the CI
        # interrupted-resume smoke: die exactly like a hard worker crash,
        # which the parent observes as BrokenProcessPool.
        os.kill(os.getpid(), signal.SIGKILL)
    workload = None
    trace_telemetry = None
    if handle is not None:
        workload, trace_telemetry = _attach_cached(handle)
    trace_dir = Path(cache_dir) / TRACE_SUBDIR if cache_dir else None
    result, telemetry = _execute_cell(
        cell, workload, trace_telemetry, trace_dir=trace_dir
    )
    if persist:
        cache = ResultCache(Path(cache_dir) if cache_dir else None, persist=True)
        cache.put(cell.key(), result, telemetry, _cell_describe(cell))
    return result, telemetry


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------
_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0
#: Serializes pool create/teardown: serve runs concurrent jobs on worker
#: threads, and an unguarded double-create would leak a whole pool.
_pool_lock = threading.Lock()


def _get_pool(max_workers: int) -> ProcessPoolExecutor:
    """The lazily-created pool, reused across ``run_sweep`` calls.

    Recreated only when the requested size changes (never shrunk while
    other threads may hold it — growth wins, so concurrent jobs requesting
    different sizes share the largest). Workers spawn on demand
    (ProcessPoolExecutor grows the pool per submit), so asking for 4
    workers to run 2 cells forks 2 processes.
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None and _pool_size < max_workers:
            _pool.shutdown(wait=True, cancel_futures=True)
            _pool = None
            _pool_size = 0
        if _pool is None:
            _pool = ProcessPoolExecutor(max_workers=max_workers)
            _pool_size = max_workers
        return _pool


def shutdown_worker_pool() -> None:
    """Tear down the persistent pool (idempotent; atexit backstop).

    Also the recovery path after :class:`BrokenProcessPool` — the next
    sweep gets a fresh pool instead of the poisoned one.
    """
    global _pool, _pool_size
    with _pool_lock:
        pool, _pool, _pool_size = _pool, None, 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_worker_pool)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One executed (or cache-served) sweep cell plus its telemetry."""

    cell: SweepCell
    result: SimResult
    #: Wall-clock seconds of the simulation that produced ``result`` (the
    #: original run's time when served from cache). Excludes trace build.
    wall_seconds: float
    heap_events: int
    events_per_sec: float
    from_cache: bool
    #: Seconds this cell's executor spent materializing its workload
    #: (generator run, ``.npz`` load, or shared-memory attach).
    trace_build_seconds: float = 0.0
    #: Where the workload came from: ``built`` (generators ran), ``memo``,
    #: ``npz``, ``shared`` (attached parent segment), ``shared-memo``
    #: (worker reused a prior attachment), or ``""`` for cache hits.
    trace_source: str = ""
    #: Engine that produced ``result``: ``"batch"`` or ``"interp"``
    #: (``""`` for cache entries written before engines were recorded).
    #: Purely telemetry — both engines are bit-exact, so the result and
    #: its cache key are engine-independent.
    engine_used: str = ""


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` learned about a grid of cells."""

    cells: List[CellResult]
    max_workers: int
    #: End-to-end wall-clock of the whole sweep (not the per-cell sum).
    elapsed_seconds: float
    #: Unique workload keys consumed by cells that actually ran.
    workloads_unique: int = 0
    #: How many times trace generators actually ran, anywhere (parent or
    #: workers). The fabric's whole point: equals ``workloads_unique`` on
    #: a cold cache, 0 on a warm one.
    workloads_built: int = 0
    #: Parent-side seconds spent materializing workloads before fan-out
    #: (zero on the serial path, where builds are attributed per cell).
    parent_trace_seconds: float = 0.0

    # -- aggregate telemetry -------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.from_cache)

    @property
    def cache_misses(self) -> int:
        return sum(1 for c in self.cells if not c.from_cache)

    @property
    def total_heap_events(self) -> int:
        return sum(c.heap_events for c in self.cells)

    @property
    def simulated_seconds(self) -> float:
        """Sum of per-cell simulation time (exceeds ``elapsed_seconds``
        when cells ran in parallel; counts only cells actually run)."""
        return sum(c.wall_seconds for c in self.cells if not c.from_cache)

    @property
    def trace_build_seconds(self) -> float:
        """Total workload-materialization time: parent-side builds plus
        whatever executors spent building/loading/attaching per cell."""
        return self.parent_trace_seconds + sum(
            c.trace_build_seconds for c in self.cells if not c.from_cache
        )

    @property
    def events_per_sec(self) -> float:
        simulated = self.simulated_seconds
        events = sum(c.heap_events for c in self.cells if not c.from_cache)
        return events / simulated if simulated > 0 else 0.0

    @property
    def engine_counts(self) -> Dict[str, int]:
        """Engine -> number of cells it produced (``""`` -> "unknown").

        Cache hits keep the engine of the run that populated the cache;
        entries persisted before engines were recorded count as unknown.
        """
        counts: Dict[str, int] = {}
        for c in self.cells:
            key = c.engine_used or "unknown"
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- grid accessors -------------------------------------------------
    def result(self, design: str, benchmark: str) -> SimResult:
        """The :class:`SimResult` for one grid cell (raises KeyError)."""
        for c in self.cells:
            if c.cell.design == design and c.cell.benchmark == benchmark:
                return c.result
        raise KeyError(f"no cell for ({design!r}, {benchmark!r})")

    def results(self) -> Dict[Tuple[str, str], SimResult]:
        """(design, benchmark) -> result for the whole grid."""
        return {
            (c.cell.design, c.cell.benchmark): c.result for c in self.cells
        }

    def speedups(
        self, baseline_design: str = "no-cache"
    ) -> Dict[Tuple[str, str], float]:
        """Per-cell speedup vs ``baseline_design`` on the same benchmark.

        Only defined when the baseline design is part of the sweep grid.
        """
        bases = {
            c.cell.benchmark: c.result
            for c in self.cells
            if c.cell.design == baseline_design
        }
        out: Dict[Tuple[str, str], float] = {}
        for c in self.cells:
            base = bases.get(c.cell.benchmark)
            if base is not None:
                out[(c.cell.design, c.cell.benchmark)] = c.result.speedup_vs(
                    base
                )
        return out

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        """Telemetry table + summary lines (the ``repro sweep`` output)."""
        lines = [
            f"{'design':<16} {'benchmark':<12} {'cycles':>12} "
            f"{'hit_rate':>8} {'events':>9} {'ev/s':>10} "
            f"{'wall_s':>8} {'trace':>11} {'cache':>6}"
        ]
        for c in self.cells:
            lines.append(
                f"{c.cell.design:<16} {c.cell.benchmark:<12} "
                f"{c.result.cycles:>12.1f} "
                f"{c.result.read_hit_rate:>8.3f} "
                f"{c.heap_events:>9d} {c.events_per_sec:>10.0f} "
                f"{c.wall_seconds:>8.3f} "
                f"{c.trace_source or '-':>11} "
                f"{'hit' if c.from_cache else 'miss':>6}"
            )
        lines.append(
            f"-- {len(self.cells)} cells | workers={self.max_workers} | "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss | "
            f"{self.total_heap_events} events | "
            f"{self.events_per_sec:,.0f} events/sec simulated | "
            f"{self.elapsed_seconds:.2f}s elapsed"
        )
        if self.cache_misses:
            lines.append(
                f"-- traces: {self.workloads_unique} unique workloads, "
                f"{self.workloads_built} generator runs | "
                f"{self.trace_build_seconds:.2f}s trace build vs "
                f"{self.simulated_seconds:.2f}s simulation"
            )
        counts = self.engine_counts
        lines.append(
            "-- engines: "
            + ", ".join(
                f"{name} {counts[name]}" for name in sorted(counts)
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def run_sweep(
    cells: Sequence[SweepCell],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
) -> SweepReport:
    """Execute every cell, fanning out across ``max_workers`` processes.

    A thin client of the resumable job layer: the cells become an
    ephemeral (journal-less) :class:`repro.jobs.Job` and run through
    :func:`repro.jobs.engine.submit_job` — the same fan-out loop behind
    named jobs, experiment sweeps and ``repro explore``. Cached cells are
    served without simulation; missing cells are executed (in-process
    when ``max_workers=1``, else on the persistent process pool) through
    the same :func:`_execute_cell` function, so the serial and parallel
    paths produce bit-identical :class:`SimResult`\\ s. Workers persist
    each cell as it completes, so an interrupted sweep resumes from
    completed cells; for journaled resume (surviving killed runs even
    with the result cache disabled), name the work via
    :func:`repro.jobs.create_job`/``repro sweep --job``.

    Duplicate cells (same content key) are simulated once and fanned back
    to every occurrence. On the parallel path the parent materializes
    each unique workload once and fans it out over shared memory (see the
    module docstring); workloads for grid rows are built incrementally as
    their cells are submitted, so workers start on the first row while
    the parent is still building later ones.
    """
    from repro.jobs import ephemeral_job, submit_job

    return submit_job(
        ephemeral_job(cells),
        max_workers=max_workers,
        cache=cache,
        use_cache=use_cache,
    )


def _cell_result(
    cell: SweepCell, result: SimResult, telemetry: Dict, from_cache: bool
) -> CellResult:
    """Assemble one CellResult from executor (or cached-run) telemetry."""
    return CellResult(
        cell=cell,
        result=result,
        wall_seconds=float(telemetry.get("wall_seconds", 0.0)),
        heap_events=int(telemetry.get("heap_events", result.heap_events)),
        events_per_sec=float(telemetry.get("events_per_sec", 0.0)),
        from_cache=from_cache,
        trace_build_seconds=float(telemetry.get("trace_build_seconds", 0.0)),
        trace_source=str(telemetry.get("trace_source", "")),
        engine_used=str(telemetry.get("engine_used", "")),
    )
