"""Batch simulation engine: vectorized precompute + a compact scalar core.

The interpreter in :mod:`repro.sim.system` walks one heap event at a time
through layers of design/device method calls. This engine restructures that
loop for throughput while producing **bit-identical** :class:`SimResult`s:

* **Vectorized precompute** (numpy): everything independent of the event
  timeline is computed for the whole trace up front — address decode for
  off-chip memory, set-index/stacked-row decode per design, TAD burst
  lengths, and MAP-I predictor table indices.
* **Compact scalar core**: the serial part (bank/bus timeline reservations,
  replacement state, predictor training) runs in one flat event loop over
  integer-coded heap tuples, with the per-access device reservation inlined
  expression-for-expression from :meth:`repro.dram.device.DramDevice.access`.
* **Deferred statistics**: latency samples are appended to plain lists in
  event order and folded into the accumulators/histograms once at the end.
  The fold is a left fold in sample order starting from the accumulator's
  current total, so float sums match the interpreter bit-for-bit.

Bit-exactness is defined over the :class:`SimResult` surface (what
``repro golden`` hashes and the differential fuzzer compares). Device
*accumulators* (queue-delay samples etc.) are not observable there — only
the device counters feed energy/utilization — so the inlined reservations
skip accumulator sampling; everything observable is reproduced exactly.

Engine selection lives in :meth:`repro.sim.system.System.run`; this module's
:func:`run` returns ``None`` when a configuration is outside the supported
envelope (oracle devices, unknown design or policy types), and the caller
falls back to the interpreter. The envelope covers every design family —
including multi-way Alloy, the victim-buffer variant and MLP cores
(``mshrs_per_core > 1``, handled by a shared per-core in-flight list in
each kernel's core-event prologue).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

import numpy as np

from repro.cache.missmap import LINES_PER_SEGMENT as _MM_LINES_PER_SEGMENT
from repro.cache.replacement import DIPPolicy, LRUPolicy, RandomPolicy
from repro.core.predictors import (
    MapGPredictor,
    MapIPredictor,
    PamPredictor,
    SamPredictor,
)
from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCacheDesign, _SCENARIO_KEYS
from repro.dramcache.alloy_victim import VICTIM_HIT_CYCLES, AlloyVictimDesign
from repro.dramcache.base import ATTRIBUTION_EPSILON, LATENCY_BUCKETS
from repro.dramcache.ideal_lo import IdealLODesign
from repro.dramcache.lh_cache import LHCacheDesign, TAG_CHECK_CYCLES
from repro.dramcache.no_cache import NoCacheDesign
from repro.dramcache.sram_tag import SramTagDesign
from repro.lifecycle import STAGES
from repro.sim.core_model import Core
from repro.stats import Histogram
from repro.units import LINE_SIZE

#: Replacement policies whose lookup-path side effects the kernels inline.
_POLICIES = (DIPPolicy, LRUPolicy, RandomPolicy)

#: MAP-family predictor types with an inlined predict/train path.
_MAP_TYPES = (MapIPredictor, MapGPredictor, SamPredictor, PamPredictor)

# Heap event kinds (tuple layout: (when, seq, kind, a, b)).
_EV_CORE = 0  # a = core index
_EV_MEMWRITE = 1  # a = line address (posted off-chip writeback)
_EV_FILL = 2  # a = flat record index
_EV_STACKWRITE = 3  # a = flat record index (background stacked line write)
_EV_WTRAFFIC = 4  # a = flat record index, b = hit (Alloy write traffic)
_EV_WHT = 5  # a = flat record index (LH write-hit traffic)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run(system) -> Optional["object"]:
    """Run ``system`` under the batch engine, or return ``None`` if the
    configuration is outside the supported envelope (caller falls back to
    the interpreter). All eligibility checks happen before any mutation."""
    if system.checker is not None:
        return None
    # Exact types only: OracleDramDevice (verify layer) overrides the
    # reservation arithmetic the kernels inline.
    if type(system.memory) is not DramDevice:
        return None
    if type(system.stacked) is not DramDevice:
        return None
    kernel = _select_kernel(system.design)
    if kernel is None:
        return None

    starts = system._warm()
    system._cores = [
        Core(core_id, trace, start_index=starts[core_id])
        for core_id, trace in enumerate(system.workload.cores)
    ]
    kernel(system, starts)
    system.engine_used = "batch"
    return system._collect()


def _select_kernel(design):
    kind = type(design)
    if kind is NoCacheDesign:
        return _run_no_cache
    if kind is IdealLODesign:
        return _run_ideal_lo
    if kind is SramTagDesign:
        if type(design.tags.policy) not in _POLICIES:
            return None
        return _run_sram
    if kind is LHCacheDesign:
        if type(design.tags.policy) not in _POLICIES:
            return None
        return _run_lh
    if kind is AlloyCacheDesign or kind is AlloyVictimDesign:
        if (
            design.cache.ways != 1
            and type(design.cache._store.policy) is not LRUPolicy
        ):
            return None
        if kind is AlloyVictimDesign and type(design.victims.policy) is not LRUPolicy:
            return None
        if design._pred_kind == 3 and type(design.predictor) not in _MAP_TYPES:
            return None
        return _run_alloy
    return None


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def _flatten(system, starts, need_pcs):
    """Concatenate post-warmup per-core trace slices into flat arrays.

    Returns ``(A, G, W, P, D, base, n_reads, n_writes, A_np)`` where
    ``A``/``G``/``W`` are plain lists (native ints/floats/bools — list
    indexing beats numpy scalar extraction on the hot path), ``D`` is the
    per-record dependence-flag list (built only when the system models MLP,
    ``mshrs_per_core > 1`` — ``None`` otherwise), ``base`` holds per-core
    start offsets into the flat arrays (len = cores + 1), and ``A_np`` is
    kept as an array for the vectorized decodes. The single-core slices are
    views into the (possibly arena-shared) trace arrays; kernels never
    write through them.
    """
    need_dep = system._mshrs > 1
    parts_a, parts_g, parts_w, parts_p, parts_d = [], [], [], [], []
    base = [0]
    n_reads: List[int] = []
    n_writes: List[int] = []
    for core_id, trace in enumerate(system.workload.cores):
        split = starts[core_id]
        a = trace.addresses[split:]
        w = trace.is_write[split:]
        parts_a.append(a)
        parts_g.append(trace.gaps[split:])
        parts_w.append(w)
        if need_pcs:
            parts_p.append(trace.pcs[split:])
        if need_dep:
            parts_d.append(trace.dependent_flags()[split:])
        writes = int(w.sum())
        n_writes.append(writes)
        n_reads.append(len(a) - writes)
        base.append(base[-1] + len(a))
    a_np = np.concatenate(parts_a) if len(parts_a) > 1 else parts_a[0]
    g_np = np.concatenate(parts_g) if len(parts_g) > 1 else parts_g[0]
    w_np = np.concatenate(parts_w) if len(parts_w) > 1 else parts_w[0]
    pcs = None
    if need_pcs:
        p_np = np.concatenate(parts_p) if len(parts_p) > 1 else parts_p[0]
        pcs = p_np
    dep = None
    if need_dep:
        d_np = np.concatenate(parts_d) if len(parts_d) > 1 else parts_d[0]
        dep = d_np.tolist()
    return (
        a_np.tolist(),
        g_np.tolist(),
        w_np.tolist(),
        pcs,
        dep,
        base,
        n_reads,
        n_writes,
        a_np,
    )


def _mem_decode(addr_np, mapping):
    """Vectorized :meth:`AddressMapping.locate` over line addresses.

    Returns ``(bank_index, channel, row)`` lists, with ``bank_index``
    already flattened to ``channel * banks + bank`` (the device's internal
    bank timeline index).
    """
    chunk = addr_np // mapping.lines_per_row
    channel = chunk % mapping.channels
    per_channel = chunk // mapping.channels
    bank = per_channel % mapping.banks
    row = per_channel // mapping.banks
    bank_index = channel * mapping.banks + bank
    return bank_index.tolist(), channel.tolist(), row.tolist()


def _row_decode(row_np, device):
    """Vectorized :meth:`RowMapper.locate` over stacked cache-row ids."""
    channels = device.timings.channels
    banks = device.timings.banks_per_channel
    channel = row_np % channels
    per_channel = row_np // channels
    bank = per_channel % banks
    row = per_channel // banks
    bank_index = channel * banks + bank
    return bank_index.tolist(), channel.tolist(), row.tolist()


def _device_fns(dev):
    """Build ``(demand, background, flush)`` access closures over one device.

    Each closure is the reservation arithmetic of
    :meth:`repro.dram.device.DramDevice.access` inlined expression-for-
    expression (bit-identical floats) and skipping the accumulator sampling
    (not observable in :class:`SimResult`). ``demand`` returns
    ``(done, row_hit, queue_cycles, service_cycles)`` pre-combined the way
    :meth:`LatencyBreakdown.attribute_device` folds them; ``background``
    returns ``done`` alone.

    Bank/bus reservation horizons and the batched integer counters live in
    closure-local lists and cells while the kernel runs (index/deref ops
    instead of attribute ops on the hot path); ``flush`` writes them back
    to the device so post-run consumers (stats, energy) see the usual
    state. Kernels must call ``flush`` after the event loop drains.
    """
    (
        t_act,
        act_conflict,
        t_cas,
        cas_f,
        line_burst,
        block_cap,
        watermark,
        bus_watermark,
        full_line_bytes,
        t_act_f,
        act_conflict_f,
        line_burst_f,
    ) = dev._hot
    banks = dev._banks
    buses = dev._buses
    open_rows = dev._open_row
    open_policy = dev._open_policy
    bank_df = [b.demand_free for b in banks]
    bank_af = [b.all_free for b in banks]
    bus_df = [b.demand_free for b in buses]
    bus_af = [b.all_free for b in buses]
    n_acc = n_rh = n_act = n_rd = n_wr = n_bg = n_bus = n_bytes = 0

    def demand(now, bank_idx, channel, row, burst_cycles, is_write):
        nonlocal n_acc, n_rh, n_act, n_rd, n_wr, n_bus, n_bytes
        open_row = open_rows[bank_idx]
        row_hit = open_row == row
        if row_hit:
            act_cycles = 0
            act_f = 0.0
        elif open_row is None:
            act_cycles = t_act
            act_f = t_act_f
        else:
            act_cycles = act_conflict
            act_f = act_conflict_f
        core_latency = act_cycles + t_cas
        bank_service = core_latency + burst_cycles
        free = bank_df[bank_idx]
        start = now if now >= free else free
        backlog = bank_af[bank_idx] - start
        if backlog > 0:
            blocked = backlog if backlog <= block_cap else block_cap
            drain = backlog - watermark
            start += blocked + (drain if drain > 0.0 else 0.0)
        bank_df[bank_idx] = start + bank_service
        free = bank_af[bank_idx]
        bank_af[bank_idx] = (free if free >= start else start) + bank_service
        data_ready = start + core_latency
        free = bus_df[channel]
        bus_start = data_ready if data_ready >= free else free
        backlog = bus_af[channel] - bus_start
        if backlog > 0:
            blocked = backlog if backlog <= line_burst else line_burst
            drain = backlog - bus_watermark
            bus_start += blocked + (drain if drain > 0.0 else 0.0)
        bus_df[channel] = bus_start + burst_cycles
        free = bus_af[channel]
        bus_af[channel] = (free if free >= bus_start else bus_start) + burst_cycles
        done = bus_start + burst_cycles
        open_rows[bank_idx] = row if open_policy else None
        n_acc += 1
        if row_hit:
            n_rh += 1
        else:
            n_act += 1
        if is_write:
            n_wr += 1
        else:
            n_rd += 1
        n_bus += burst_cycles
        if burst_cycles == line_burst:
            n_bytes += full_line_bytes
            burst_f = line_burst_f
        else:
            n_bytes += int(burst_cycles * LINE_SIZE / line_burst)
            burst_f = float(burst_cycles)
        return (
            done,
            row_hit,
            (start - now) + (bus_start - data_ready),
            (act_f + cas_f) + burst_f,
        )

    def background(now, bank_idx, channel, row, burst_cycles, is_write):
        nonlocal n_acc, n_rh, n_act, n_rd, n_wr, n_bg, n_bus, n_bytes
        open_row = open_rows[bank_idx]
        row_hit = open_row == row
        if row_hit:
            act_cycles = 0
        elif open_row is None:
            act_cycles = t_act
        else:
            act_cycles = act_conflict
        bank_service = act_cycles + t_cas + burst_cycles
        free = bank_af[bank_idx]
        start = now if now >= free else free
        bank_af[bank_idx] = start + bank_service
        data_ready = start + act_cycles + t_cas
        free = bus_af[channel]
        bus_start = data_ready if data_ready >= free else free
        bus_af[channel] = bus_start + burst_cycles
        done = bus_start + burst_cycles
        open_rows[bank_idx] = row if open_policy else None
        n_acc += 1
        if row_hit:
            n_rh += 1
        else:
            n_act += 1
        if is_write:
            n_wr += 1
        else:
            n_rd += 1
        n_bg += 1
        n_bus += burst_cycles
        if burst_cycles == line_burst:
            n_bytes += full_line_bytes
        else:
            n_bytes += int(burst_cycles * LINE_SIZE / line_burst)
        return done

    def flush():
        for i, b in enumerate(banks):
            b.demand_free = bank_df[i]
            b.all_free = bank_af[i]
        for i, b in enumerate(buses):
            b.demand_free = bus_df[i]
            b.all_free = bus_af[i]
        dev._n_accesses += n_acc
        dev._n_row_hits += n_rh
        dev._n_activations += n_act
        dev._n_reads += n_rd
        dev._n_writes += n_wr
        dev._n_background += n_bg
        dev._n_bus_cycles += n_bus
        dev._n_bytes += n_bytes

    # The timeline lists, shared with the closures: kernels that inline
    # whole access sequences (the LH compound-access paths) operate on
    # these directly and flush their own counter tallies to the device.
    state = (bank_df, bank_af, bus_df, bus_af)
    return demand, background, flush, state


def _fold_acc(acc, samples):
    """Fold ``samples`` (non-empty, event order) into an accumulator with
    the same op sequence as per-sample ``total += v`` calls."""
    total = acc.total
    for v in samples:
        total += v
    acc.total = total
    acc.count += len(samples)
    lo = min(samples)
    hi = max(samples)
    if acc.min is None or lo < acc.min:
        acc.min = lo
    if acc.max is None or hi > acc.max:
        acc.max = hi


def _add_hist(hist, samples):
    """Bulk-sample into a histogram: searchsorted(side='left') matches the
    per-sample ``bisect_left`` bucket choice exactly."""
    edges = np.asarray(hist.edges, dtype=np.float64)
    idx = np.searchsorted(edges, np.asarray(samples, dtype=np.float64), side="left")
    binned = np.bincount(idx, minlength=len(hist.edges) + 1).tolist()
    counts = hist.counts
    for i, n in enumerate(binned):
        if n:
            counts[i] += n


def _writeback_reads(design, readlat, hitlat, misslat, stage_samples, unat):
    """Flush the deferred demand-read statistics into the design's stat
    groups, reproducing the interpreter's lazy-creation key sets (nothing
    is created when no demand read occurred)."""
    if not readlat:
        return
    stats = design.stats
    track = design._track_hists
    if hitlat:
        stats.counter("read_hits").value += len(hitlat)
        _fold_acc(stats.accumulator("hit_latency"), hitlat)
        if track:
            _add_hist(design.hit_latency_hist, hitlat)
    if misslat:
        stats.counter("read_misses").value += len(misslat)
        _fold_acc(stats.accumulator("miss_latency"), misslat)
    _fold_acc(stats.accumulator("read_latency"), readlat)
    if track:
        _add_hist(design.read_latency_hist, readlat)
    recorders = []
    for stage, samples in zip(STAGES, stage_samples):
        acc = design.stage_stats.accumulator(stage)
        _fold_acc(acc, samples)
        hist = Histogram(stage, LATENCY_BUCKETS)
        if track:
            _add_hist(hist, samples)
            design._stage_hists[stage] = hist
        recorders.append((stage, acc, hist))
    design._stage_recorders = recorders
    acc = design.stats.accumulator("unattributed_cycles")
    design._acc_unattributed = acc
    _fold_acc(acc, unat)


def _flush(group, name, count):
    """Zero-guarded counter flush (preserves lazy counter creation)."""
    if count:
        group.counter(name).value += count


def _finish_cores(system, finish, last_read, n_reads, n_writes):
    for i, core in enumerate(system._cores):
        core.finish_time = finish[i]
        core.last_read_done = last_read[i]
        core.reads_issued = n_reads[i]
        core.writes_issued = n_writes[i]
        core._index = core._length


# ----------------------------------------------------------------------
# no-cache kernel
# ----------------------------------------------------------------------
def _run_no_cache(system, starts):
    design = system.design
    memory = system.memory
    mdemand, mbg, mflush, _ = _device_fns(memory)
    A, G, W, _, D, base, nr, nw, a_np = _flatten(system, starts, False)
    mb, mc, mr = _mem_decode(a_np, memory.mapping)
    mapping = memory.mapping
    m_lpr = mapping.lines_per_row
    m_ch = mapping.channels
    m_banks = mapping.banks
    mlb = memory.timings.line_burst
    l3 = system._l3_latency
    wic = system._write_issue_cycles
    num_cores = len(base) - 1
    ends = base[1:]
    cur = list(base[:-1])
    mshrs = system._mshrs
    mlp = mshrs > 1
    outst = [[] for _ in range(num_cores)] if mlp else None
    finish = [0.0] * num_cores
    last_read = [0.0] * num_cores
    # Every read misses: misslat is readlat, and the predictor/tag/DRAM$
    # stages are identically zero (lists synthesized after the loop).
    readlat = []
    stq, stm = [], []
    unat = []
    ra = readlat.append
    qa, mma = stq.append, stm.append
    ua = unat.append
    eps = ATTRIBUTION_EPSILON
    heap = []
    push = heappush
    pop = heappop
    seq = 0
    for ci in range(num_cores):
        if cur[ci] < ends[ci]:
            gap = G[cur[ci]]
            push(heap, (gap if gap >= 0.0 else 0.0, seq, _EV_CORE, ci, 0))
            seq += 1
    events = 0
    now = 0.0
    n_mr = n_mw = n_wm = 0
    while heap:
        now, _, kind, a, b = pop(heap)
        events += 1
        if kind == 0:
            ci = a
            if mlp:
                # MLP prologue (interpreter's _handle_core): retire finished
                # reads, stall on a full MSHR file or a dependent read whose
                # producer is still in flight. Each stall is a reschedule —
                # a separate heap pop, like the interpreter's.
                out = outst[ci]
                if out:
                    out = [t for t in out if t > now]
                    outst[ci] = out
                    if len(out) >= mshrs:
                        push(heap, (min(out), seq, _EV_CORE, ci, 0))
                        seq += 1
                        continue
                if D[cur[ci]] and last_read[ci] > now:
                    push(heap, (last_read[ci], seq, _EV_CORE, ci, 0))
                    seq += 1
                    continue
            g = cur[ci]
            if W[g]:
                n_wm += 1
                push(heap, (now, seq, _EV_MEMWRITE, A[g], 0))
                seq += 1
                anchor = completed = now + wic
            else:
                arrival = now + l3
                n_mr += 1
                done, _, q, serv = mdemand(arrival, mb[g], mc[g], mr[g], mlb, False)
                lat = done - arrival
                ra(lat)
                qa(q)
                mma(serv)
                gap = lat - (q + serv)
                if gap < 0.0:
                    gap = -gap
                ua(gap if gap > eps else 0.0)
                completed = done if done >= arrival else arrival
                if mlp:
                    # Compute overlaps the outstanding miss: the next record
                    # issues relative to now, not the read's completion.
                    outst[ci].append(completed)
                    anchor = now
                else:
                    anchor = completed
                if completed > last_read[ci]:
                    last_read[ci] = completed
            if completed > finish[ci]:
                finish[ci] = completed
            g += 1
            cur[ci] = g
            if g < ends[ci]:
                nxt = anchor + G[g]
                push(heap, (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0))
                seq += 1
        else:  # _EV_MEMWRITE
            n_mw += 1
            chunk = a // m_lpr
            ch = chunk % m_ch
            per = chunk // m_ch
            mbg(now, ch * m_banks + per % m_banks, ch, per // m_banks, mlb, True)
    stats = design.stats
    mflush()
    _flush(stats, "write_misses", n_wm)
    _flush(stats, "memory_reads", n_mr)
    _flush(stats, "memory_writes", n_mw)
    zeros = [0.0] * len(readlat)
    _writeback_reads(
        design, readlat, [], readlat, (stq, zeros, zeros, zeros, stm), unat
    )
    _finish_cores(system, finish, last_read, nr, nw)
    system.events_processed += events
    system.now = now


# ----------------------------------------------------------------------
# ideal-lo kernel
# ----------------------------------------------------------------------
def _run_ideal_lo(system, starts):
    design = system.design
    memory = system.memory
    stacked = system.stacked
    mdemand, mbg, mflush, _ = _device_fns(memory)
    sdemand, sbg, sflush, _ = _device_fns(stacked)
    A, G, W, _, D, base, nr, nw, a_np = _flatten(system, starts, False)
    mb, mc, mr = _mem_decode(a_np, memory.mapping)
    store = design.cache
    si_np = a_np % store.num_sets
    SI = si_np.tolist()
    sb, sc, sr = _row_decode(si_np // design.sets_per_row, stacked)
    mapping = memory.mapping
    m_lpr = mapping.lines_per_row
    m_ch = mapping.channels
    m_banks = mapping.banks
    mlb = memory.timings.line_burst
    slb = stacked.timings.line_burst
    tags = store._tags
    dirty = store._dirty
    l3 = system._l3_latency
    wic = system._write_issue_cycles
    num_cores = len(base) - 1
    ends = base[1:]
    cur = list(base[:-1])
    mshrs = system._mshrs
    mlp = mshrs > 1
    outst = [[] for _ in range(num_cores)] if mlp else None
    finish = [0.0] * num_cores
    last_read = [0.0] * num_cores
    readlat, hitlat, misslat = [], [], []
    # Predictor/tag stages are identically zero for this design: the lists
    # are synthesized after the loop instead of appended per read.
    stq, std, stm = [], [], []
    unat = []
    ra, ha, ma = readlat.append, hitlat.append, misslat.append
    qa, da, mma = stq.append, std.append, stm.append
    ua = unat.append
    eps = ATTRIBUTION_EPSILON
    heap = []
    push = heappush
    pop = heappop
    seq = 0
    for ci in range(num_cores):
        if cur[ci] < ends[ci]:
            gap = G[cur[ci]]
            push(heap, (gap if gap >= 0.0 else 0.0, seq, _EV_CORE, ci, 0))
            seq += 1
    events = 0
    now = 0.0
    dm_h = dm_m = dm_f = n_evict = n_devict = 0
    n_mr = n_mw = n_wh = n_wm = n_drh = n_fills = 0
    while heap:
        now, _, kind, a, b = pop(heap)
        events += 1
        if kind == 0:
            ci = a
            if mlp:
                # MLP prologue (interpreter's _handle_core): retire finished
                # reads, stall on a full MSHR file or a dependent read whose
                # producer is still in flight. Each stall is a reschedule —
                # a separate heap pop, like the interpreter's.
                out = outst[ci]
                if out:
                    out = [t for t in out if t > now]
                    outst[ci] = out
                    if len(out) >= mshrs:
                        push(heap, (min(out), seq, _EV_CORE, ci, 0))
                        seq += 1
                        continue
                if D[cur[ci]] and last_read[ci] > now:
                    push(heap, (last_read[ci], seq, _EV_CORE, ci, 0))
                    seq += 1
                    continue
            g = cur[ci]
            addr = A[g]
            i = SI[g]
            if W[g]:
                if tags[i] == addr:
                    dirty[i] = True
                    dm_h += 1
                    n_wh += 1
                    push(heap, (now, seq, _EV_STACKWRITE, g, 0))
                else:
                    dm_m += 1
                    n_wm += 1
                    push(heap, (now, seq, _EV_MEMWRITE, addr, 0))
                seq += 1
                anchor = completed = now + wic
            else:
                arrival = now + l3
                if tags[i] == addr:
                    dm_h += 1
                    done, row_hit, q, serv = sdemand(
                        arrival, sb[g], sc[g], sr[g], slb, False
                    )
                    if row_hit:
                        n_drh += 1
                    lat = done - arrival
                    ha(lat)
                    qa(q)
                    da(serv)
                    mma(0.0)
                else:
                    dm_m += 1
                    n_mr += 1
                    done, _, q, serv = mdemand(
                        arrival, mb[g], mc[g], mr[g], mlb, False
                    )
                    push(heap, (done if done >= now else now, seq, _EV_FILL, g, 0))
                    seq += 1
                    lat = done - arrival
                    ma(lat)
                    qa(q)
                    da(0.0)
                    mma(serv)
                ra(lat)
                gap = lat - (q + serv)
                if gap < 0.0:
                    gap = -gap
                ua(gap if gap > eps else 0.0)
                completed = done if done >= arrival else arrival
                if mlp:
                    # Compute overlaps the outstanding miss: the next record
                    # issues relative to now, not the read's completion.
                    outst[ci].append(completed)
                    anchor = now
                else:
                    anchor = completed
                if completed > last_read[ci]:
                    last_read[ci] = completed
            if completed > finish[ci]:
                finish[ci] = completed
            g += 1
            cur[ci] = g
            if g < ends[ci]:
                nxt = anchor + G[g]
                push(heap, (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0))
                seq += 1
        elif kind == 1:  # _EV_MEMWRITE
            n_mw += 1
            chunk = a // m_lpr
            ch = chunk % m_ch
            per = chunk // m_ch
            mbg(now, ch * m_banks + per % m_banks, ch, per // m_banks, mlb, True)
        elif kind == 2:  # _EV_FILL (DirectMappedCache.fill inlined)
            addr_f = A[a]
            i = SI[a]
            old = tags[i]
            t = now
            if old != addr_f:
                if old != -1:
                    n_evict += 1
                    if dirty[i]:
                        n_devict += 1
                        vdone = sbg(t, sb[a], sc[a], sr[a], slb, False)
                        push(heap, (vdone if vdone >= now else now, seq,
                                    _EV_MEMWRITE, old, 0))
                        seq += 1
                        t = vdone
                tags[i] = addr_f
                dirty[i] = False
                dm_f += 1
            sbg(t, sb[a], sc[a], sr[a], slb, True)
            n_fills += 1
        else:  # _EV_STACKWRITE
            sbg(now, sb[a], sc[a], sr[a], slb, True)
    stats = design.stats
    mflush()
    sflush()
    _flush(stats, "row_hits", n_drh)
    _flush(stats, "write_hits", n_wh)
    _flush(stats, "write_misses", n_wm)
    _flush(stats, "memory_reads", n_mr)
    _flush(stats, "memory_writes", n_mw)
    _flush(stats, "fills", n_fills)
    _flush(store.stats, "hits", dm_h)
    _flush(store.stats, "misses", dm_m)
    _flush(store.stats, "fills", dm_f)
    _flush(store.stats, "evictions", n_evict)
    _flush(store.stats, "dirty_evictions", n_devict)
    zeros = [0.0] * len(readlat)
    _writeback_reads(
        design, readlat, hitlat, misslat, (stq, zeros, zeros, std, stm), unat
    )
    _finish_cores(system, finish, last_read, nr, nw)
    system.events_processed += events
    system.now = now


# ----------------------------------------------------------------------
# sram-tag kernel
# ----------------------------------------------------------------------
def _run_sram(system, starts):
    design = system.design
    memory = system.memory
    stacked = system.stacked
    mdemand, mbg, mflush, _ = _device_fns(memory)
    sdemand, sbg, sflush, s_state = _device_fns(stacked)
    s_bdf, s_baf, s_udf, s_uaf = s_state
    (
        s_tact,
        s_tconf,
        s_tcas,
        s_casf,
        s_lburst,
        s_blockcap,
        s_wmark,
        s_buswmark,
        s_flb,
        s_tactf,
        s_tconff,
        s_lburstf,
    ) = stacked._hot
    s_open = stacked._open_row
    s_openpol = stacked._open_policy
    A, G, W, _, D, base, nr, nw, a_np = _flatten(system, starts, False)
    mb, mc, mr = _mem_decode(a_np, memory.mapping)
    tags_cache = design.tags
    si_np = a_np % tags_cache.num_sets
    SI = si_np.tolist()
    sb, sc, sr = _row_decode(si_np // design.sets_per_row, stacked)
    mapping = memory.mapping
    m_lpr = mapping.lines_per_row
    m_ch = mapping.channels
    m_banks = mapping.banks
    mlb = memory.timings.line_burst
    slb = stacked.timings.line_burst
    # Stacked accesses are all one full line; the open-row outcome picks
    # one of three precomputed latency bundles (see _run_lh).
    core_rh = s_tcas
    core_act = s_tact + s_tcas
    core_conf = s_tconf + s_tcas
    bs_rh = core_rh + slb
    bs_act = core_act + slb
    bs_conf = core_conf + slb
    serv_rh = (0.0 + s_casf) + s_lburstf
    serv_act = (s_tactf + s_casf) + s_lburstf
    serv_conf = (s_tconff + s_casf) + s_lburstf
    # Chained same-bank access after an opener (dirty-victim fills).
    act2 = 0 if s_openpol else s_tact
    bs2 = act2 + s_tcas + slb
    sets = tags_cache._sets
    pol = tags_cache.policy
    pol_kind = 2 if type(pol) is DIPPolicy else (1 if type(pol) is LRUPolicy else 0)
    dp = pol.dueling_period if pol_kind == 2 else 1
    pmax = pol.psel_max if pol_kind == 2 else 0
    half = (pol.psel_max + 1) // 2 if pol_kind == 2 else 0
    bip_inv = pol.bip_epsilon_inverse if pol_kind == 2 else 0
    rng_randrange = pol._rng.randrange if pol_kind != 1 else None
    tsl = design.config.sram_tag_latency
    tslf = float(tsl)
    l3 = system._l3_latency
    wic = system._write_issue_cycles
    num_cores = len(base) - 1
    ends = base[1:]
    cur = list(base[:-1])
    mshrs = system._mshrs
    mlp = mshrs > 1
    outst = [[] for _ in range(num_cores)] if mlp else None
    finish = [0.0] * num_cores
    last_read = [0.0] * num_cores
    readlat, hitlat, misslat = [], [], []
    # stage lists: predictor is identically 0.0 and tag identically tslf
    # for every read — both synthesized after the loop.
    stq, std, stm = [], [], []
    unat = []
    ra, ha, ma = readlat.append, hitlat.append, misslat.append
    qa, da, mma = stq.append, std.append, stm.append
    ua = unat.append
    eps = ATTRIBUTION_EPSILON
    heap = []
    push = heappush
    pop = heappop
    seq = 0
    for ci in range(num_cores):
        if cur[ci] < ends[ci]:
            gap = G[cur[ci]]
            push(heap, (gap if gap >= 0.0 else 0.0, seq, _EV_CORE, ci, 0))
            seq += 1
    events = 0
    now = 0.0
    tg_h = tg_m = tg_f = n_evict = n_devict = 0
    n_mr = n_mw = n_wh = n_wm = n_vr = n_fills = 0
    k_acc = k_rh = k_act = k_rd = k_wr = k_bg = k_bus = k_byt = 0
    while heap:
        now, _, kind, a, b = pop(heap)
        events += 1
        if kind == 0:
            ci = a
            if mlp:
                # MLP prologue (interpreter's _handle_core): retire finished
                # reads, stall on a full MSHR file or a dependent read whose
                # producer is still in flight. Each stall is a reschedule —
                # a separate heap pop, like the interpreter's.
                out = outst[ci]
                if out:
                    out = [t for t in out if t > now]
                    outst[ci] = out
                    if len(out) >= mshrs:
                        push(heap, (min(out), seq, _EV_CORE, ci, 0))
                        seq += 1
                        continue
                if D[cur[ci]] and last_read[ci] > now:
                    push(heap, (last_read[ci], seq, _EV_CORE, ci, 0))
                    seq += 1
                    continue
            g = cur[ci]
            addr = A[g]
            is_wr = W[g]
            if is_wr:
                t_tag = now + tsl
            else:
                arrival = now + l3
                t_tag = arrival + tsl
            i = SI[g]
            cset = sets[i]
            way = cset.index_map.get(addr)
            if way is None:
                tg_m += 1
                if pol_kind == 2:
                    r = i % dp
                    if r == 0:
                        if pol.psel < pmax:
                            pol.psel += 1
                    elif r == 1:
                        if pol.psel > 0:
                            pol.psel -= 1
                hit = False
            else:
                if pol_kind:
                    state = cset.policy_state
                    state.remove(way)
                    state.insert(0, way)
                if is_wr:
                    cset.dirty[way] = True
                tg_h += 1
                hit = True
            if is_wr:
                if hit:
                    n_wh += 1
                    push(heap, (t_tag, seq, _EV_STACKWRITE, g, 0))
                else:
                    n_wm += 1
                    push(heap, (t_tag, seq, _EV_MEMWRITE, addr, 0))
                seq += 1
                anchor = completed = now + wic
            else:
                if hit:
                    # Single stacked data read, ``demand`` closure inlined.
                    bk = sb[g]
                    ch = sc[g]
                    row = sr[g]
                    open_row = s_open[bk]
                    if open_row == row:
                        core = core_rh
                        service = bs_rh
                        serv = serv_rh
                        k_rh += 1
                    elif open_row is None:
                        core = core_act
                        service = bs_act
                        serv = serv_act
                        k_act += 1
                    else:
                        core = core_conf
                        service = bs_conf
                        serv = serv_conf
                        k_act += 1
                    free = s_bdf[bk]
                    start = t_tag if t_tag >= free else free
                    backlog = s_baf[bk] - start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_blockcap else s_blockcap
                        drain = backlog - s_wmark
                        start += blocked + (drain if drain > 0.0 else 0.0)
                    s_bdf[bk] = start + service
                    free = s_baf[bk]
                    s_baf[bk] = (free if free >= start else start) + service
                    data_ready = start + core
                    free = s_udf[ch]
                    bus_start = data_ready if data_ready >= free else free
                    backlog = s_uaf[ch] - bus_start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_lburst else s_lburst
                        drain = backlog - s_buswmark
                        bus_start += blocked + (drain if drain > 0.0 else 0.0)
                    s_udf[ch] = bus_start + slb
                    free = s_uaf[ch]
                    s_uaf[ch] = (free if free >= bus_start else bus_start) + slb
                    done = bus_start + slb
                    s_open[bk] = row if s_openpol else None
                    q = (start - t_tag) + (bus_start - data_ready)
                    k_acc += 1
                    k_rd += 1
                    k_bus += slb
                    k_byt += s_flb
                    lat = done - arrival
                    ha(lat)
                    da(serv)
                    mma(0.0)
                else:
                    n_mr += 1
                    done, _, q, serv = mdemand(
                        t_tag, mb[g], mc[g], mr[g], mlb, False
                    )
                    push(heap, (done, seq, _EV_FILL, g, 0))
                    seq += 1
                    lat = done - arrival
                    ma(lat)
                    da(0.0)
                    mma(serv)
                ra(lat)
                qa(q)
                gap = lat - (q + tslf + serv)
                if gap < 0.0:
                    gap = -gap
                ua(gap if gap > eps else 0.0)
                completed = done if done >= arrival else arrival
                if mlp:
                    # Compute overlaps the outstanding miss: the next record
                    # issues relative to now, not the read's completion.
                    outst[ci].append(completed)
                    anchor = now
                else:
                    anchor = completed
                if completed > last_read[ci]:
                    last_read[ci] = completed
            if completed > finish[ci]:
                finish[ci] = completed
            g += 1
            cur[ci] = g
            if g < ends[ci]:
                nxt = anchor + G[g]
                push(heap, (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0))
                seq += 1
        elif kind == 1:  # _EV_MEMWRITE
            n_mw += 1
            chunk = a // m_lpr
            ch = chunk % m_ch
            per = chunk // m_ch
            mbg(now, ch * m_banks + per % m_banks, ch, per // m_banks, mlb, True)
        elif kind == 2:  # _EV_FILL (SetAssocCache.fill + on_insert inlined)
            addr_f = A[a]
            i = SI[a]
            cset = sets[i]
            ctags = cset.tags
            imap = cset.index_map
            way = imap.get(addr_f)
            ev_dirty = False
            ev_addr = -1
            if way is None:
                if -1 in ctags:
                    way = ctags.index(-1)
                else:
                    if pol_kind:
                        way = cset.policy_state[-1]
                    else:
                        way = rng_randrange(cset.policy_state)
                    ev_addr = ctags[way]
                    ev_dirty = cset.dirty[way]
                    del imap[ev_addr]
                    n_evict += 1
                    if ev_dirty:
                        n_devict += 1
                ctags[way] = addr_f
                imap[addr_f] = way
                cset.dirty[way] = False
                tg_f += 1
            if pol_kind == 1:
                state = cset.policy_state
                state.remove(way)
                state.insert(0, way)
            elif pol_kind == 2:
                state = cset.policy_state
                state.remove(way)
                r = i % dp
                if r == 0:
                    lru_ins = True
                elif r == 1:
                    lru_ins = False
                else:
                    lru_ins = pol.psel < half
                if lru_ins:
                    state.insert(0, way)
                elif rng_randrange(bip_inv) == 0:
                    state.insert(0, way)
                else:
                    state.append(way)
            bk = sb[a]
            ch = sc[a]
            row = sr[a]
            # First stacked access resolves the open row (``background``
            # closure inlined); a chained second access after a dirty
            # victim read statically row-hits/re-activates (act2).
            open_row = s_open[bk]
            if open_row == row:
                act = 0
                service = bs_rh
                k_rh += 1
            elif open_row is None:
                act = s_tact
                service = bs_act
                k_act += 1
            else:
                act = s_tconf
                service = bs_conf
                k_act += 1
            if ev_dirty:
                free = s_baf[bk]
                start = now if now >= free else free
                s_baf[bk] = start + service
                data_ready = start + act + s_tcas
                free = s_uaf[ch]
                bus_start = data_ready if data_ready >= free else free
                s_uaf[ch] = bus_start + slb
                vdone = bus_start + slb
                n_vr += 1
                push(heap, (vdone, seq, _EV_MEMWRITE, ev_addr, 0))
                seq += 1
                # Fill write, chained behind the victim read.
                free = s_baf[bk]
                start = vdone if vdone >= free else free
                s_baf[bk] = start + bs2
                data_ready = start + act2 + s_tcas
                free = s_uaf[ch]
                bus_start = data_ready if data_ready >= free else free
                s_uaf[ch] = bus_start + slb
                if s_openpol:
                    k_rh += 1
                else:
                    k_act += 1
                k_acc += 2
                k_rd += 1
                k_wr += 1
                k_bg += 2
                k_bus += slb + slb
                k_byt += s_flb + s_flb
            else:
                free = s_baf[bk]
                start = now if now >= free else free
                s_baf[bk] = start + service
                data_ready = start + act + s_tcas
                free = s_uaf[ch]
                bus_start = data_ready if data_ready >= free else free
                s_uaf[ch] = bus_start + slb
                k_acc += 1
                k_wr += 1
                k_bg += 1
                k_bus += slb
                k_byt += s_flb
            s_open[bk] = row if s_openpol else None
            n_fills += 1
        else:  # _EV_STACKWRITE
            bk = sb[a]
            ch = sc[a]
            row = sr[a]
            open_row = s_open[bk]
            if open_row == row:
                act = 0
                service = bs_rh
                k_rh += 1
            elif open_row is None:
                act = s_tact
                service = bs_act
                k_act += 1
            else:
                act = s_tconf
                service = bs_conf
                k_act += 1
            free = s_baf[bk]
            start = now if now >= free else free
            s_baf[bk] = start + service
            data_ready = start + act + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + slb
            s_open[bk] = row if s_openpol else None
            k_acc += 1
            k_wr += 1
            k_bg += 1
            k_bus += slb
            k_byt += s_flb
    stats = design.stats
    mflush()
    sflush()
    stacked._n_accesses += k_acc
    stacked._n_row_hits += k_rh
    stacked._n_activations += k_act
    stacked._n_reads += k_rd
    stacked._n_writes += k_wr
    stacked._n_background += k_bg
    stacked._n_bus_cycles += k_bus
    stacked._n_bytes += k_byt
    _flush(stats, "write_hits", n_wh)
    _flush(stats, "write_misses", n_wm)
    _flush(stats, "memory_reads", n_mr)
    _flush(stats, "memory_writes", n_mw)
    _flush(stats, "victim_reads", n_vr)
    _flush(stats, "fills", n_fills)
    _flush(tags_cache.stats, "hits", tg_h)
    _flush(tags_cache.stats, "misses", tg_m)
    _flush(tags_cache.stats, "fills", tg_f)
    _flush(tags_cache.stats, "evictions", n_evict)
    _flush(tags_cache.stats, "dirty_evictions", n_devict)
    n = len(readlat)
    _writeback_reads(
        design, readlat, hitlat, misslat,
        (stq, [0.0] * n, [tslf] * n, std, stm), unat
    )
    _finish_cores(system, finish, last_read, nr, nw)
    system.events_processed += events
    system.now = now


# ----------------------------------------------------------------------
# lh-cache kernel
# ----------------------------------------------------------------------
def _run_lh(system, starts):
    design = system.design
    memory = system.memory
    stacked = system.stacked
    mdemand, mbg, mflush, _ = _device_fns(memory)
    sdemand, sbg, sflush, s_state = _device_fns(stacked)
    s_bdf, s_baf, s_udf, s_uaf = s_state
    (
        s_tact,
        s_tconf,
        s_tcas,
        s_casf,
        s_lburst,
        s_blockcap,
        s_wmark,
        s_buswmark,
        s_flb,
        s_tactf,
        s_tconff,
        s_lburstf,
    ) = stacked._hot
    s_open = stacked._open_row
    s_openpol = stacked._open_policy
    A, G, W, _, D, base, nr, nw, a_np = _flatten(system, starts, False)
    mb, mc, mr = _mem_decode(a_np, memory.mapping)
    tags_cache = design.tags
    si_np = a_np % tags_cache.num_sets
    SI = si_np.tolist()
    sb, sc, sr = _row_decode(si_np // design.sets_per_row, stacked)
    mapping = memory.mapping
    m_lpr = mapping.lines_per_row
    m_ch = mapping.channels
    m_banks = mapping.banks
    mlb = memory.timings.line_burst
    sets = tags_cache._sets
    pol = tags_cache.policy
    pol_kind = 2 if type(pol) is DIPPolicy else (1 if type(pol) is LRUPolicy else 0)
    dp = pol.dueling_period if pol_kind == 2 else 1
    pmax = pol.psel_max if pol_kind == 2 else 0
    half = (pol.psel_max + 1) // 2 if pol_kind == 2 else 0
    bip_inv = pol.bip_epsilon_inverse if pol_kind == 2 else 0
    rng_randrange = pol._rng.randrange if pol_kind != 1 else None
    missmap = design.missmap
    mm_present = missmap._present
    mml = design._missmap_latency
    mmlf = design._missmap_latency_f
    tag_b = design._tag_burst_v
    lb = design._line_burst_v
    ub = design._update_burst_v
    requpd = design._requires_update
    tcc = TAG_CHECK_CYCLES
    # Per-burst constants preresolved for the inlined stacked accesses.
    tag_bf = s_lburstf if tag_b == s_lburst else float(tag_b)
    lb_f = s_lburstf if lb == s_lburst else float(lb)
    tag_bytes = s_flb if tag_b == s_lburst else int(tag_b * LINE_SIZE / s_lburst)
    lb_bytes = s_flb if lb == s_lburst else int(lb * LINE_SIZE / s_lburst)
    ub_bytes = s_flb if ub == s_lburst else int(ub * LINE_SIZE / s_lburst)
    # Chained same-bank accesses after an opener: with the open-row policy
    # they hit the just-opened row; with the closed policy the bank is
    # always precharged (open row None -> a plain activation).
    act2 = 0 if s_openpol else s_tact
    act2_f = 0.0 if s_openpol else s_tactf
    core2 = act2 + s_tcas
    bs2_lb = core2 + lb
    bs2_ub = core2 + ub
    serv2_lb = (act2_f + s_casf) + lb_f
    # First access of each compound sequence resolves the open row at run
    # time; its derived latencies take one of three values.
    core_rh = s_tcas
    core_act = s_tact + s_tcas
    core_conf = s_tconf + s_tcas
    bst_rh = core_rh + tag_b
    bst_act = core_act + tag_b
    bst_conf = core_conf + tag_b
    servt_rh = (0.0 + s_casf) + tag_bf
    servt_act = (s_tactf + s_casf) + tag_bf
    servt_conf = (s_tconff + s_casf) + tag_bf
    tst_rh = servt_rh + tcc
    tst_act = servt_act + tcc
    tst_conf = servt_conf + tcc
    mm_pop = missmap._segment_population
    mm_pop_get = mm_pop.get
    mm_lps = _MM_LINES_PER_SEGMENT
    l3 = system._l3_latency
    wic = system._write_issue_cycles
    num_cores = len(base) - 1
    ends = base[1:]
    cur = list(base[:-1])
    mshrs = system._mshrs
    mlp = mshrs > 1
    outst = [[] for _ in range(num_cores)] if mlp else None
    finish = [0.0] * num_cores
    last_read = [0.0] * num_cores
    readlat, hitlat, misslat = [], [], []
    # The predictor stage is identically the MissMap latency for every
    # read — synthesized after the loop instead of appended per read.
    stq, stt, std, stm = [], [], [], []
    unat = []
    ra, ha, ma = readlat.append, hitlat.append, misslat.append
    qa, ta, da, mma = stq.append, stt.append, std.append, stm.append
    ua = unat.append
    eps = ATTRIBUTION_EPSILON
    heap = []
    push = heappush
    pop = heappop
    seq = 0
    for ci in range(num_cores):
        if cur[ci] < ends[ci]:
            gap = G[cur[ci]]
            push(heap, (gap if gap >= 0.0 else 0.0, seq, _EV_CORE, ci, 0))
            seq += 1
    events = 0
    now = 0.0
    tg_h = tg_m = tg_f = n_evict = n_devict = 0
    n_mml = n_mmh = n_mmm = 0
    n_mr = n_mw = n_wh = n_wm = n_vr = n_fills = n_reopen = n_upd = 0
    # Stacked-device counter tallies for the inlined access sequences
    # (added to the device after ``sflush`` drains the closure-side ones).
    k_acc = k_rh = k_act = k_rd = k_wr = k_bg = k_bus = k_byt = 0
    while heap:
        now, _, kind, a, b = pop(heap)
        events += 1
        if kind == 0:
            ci = a
            if mlp:
                # MLP prologue (interpreter's _handle_core): retire finished
                # reads, stall on a full MSHR file or a dependent read whose
                # producer is still in flight. Each stall is a reschedule —
                # a separate heap pop, like the interpreter's.
                out = outst[ci]
                if out:
                    out = [t for t in out if t > now]
                    outst[ci] = out
                    if len(out) >= mshrs:
                        push(heap, (min(out), seq, _EV_CORE, ci, 0))
                        seq += 1
                        continue
                if D[cur[ci]] and last_read[ci] > now:
                    push(heap, (last_read[ci], seq, _EV_CORE, ci, 0))
                    seq += 1
                    continue
            g = cur[ci]
            addr = A[g]
            is_wr = W[g]
            if is_wr:
                t0 = now + mml
            else:
                arrival = now + l3
                t0 = arrival + mml
            n_mml += 1
            present = addr in mm_present
            if present:
                n_mmh += 1
            else:
                n_mmm += 1
            i = SI[g]
            cset = sets[i]
            way = cset.index_map.get(addr)
            if way is None:
                tg_m += 1
                if pol_kind == 2:
                    r = i % dp
                    if r == 0:
                        if pol.psel < pmax:
                            pol.psel += 1
                    elif r == 1:
                        if pol.psel > 0:
                            pol.psel -= 1
                hit = False
            else:
                if pol_kind:
                    state = cset.policy_state
                    state.remove(way)
                    state.insert(0, way)
                if is_wr:
                    cset.dirty[way] = True
                tg_h += 1
                hit = True
            assert present == hit, "MissMap diverged from the tag array"
            if is_wr:
                if hit:
                    n_wh += 1
                    push(heap, (t0, seq, _EV_WHT, g, 0))
                else:
                    n_wm += 1
                    push(heap, (t0, seq, _EV_MEMWRITE, addr, 0))
                seq += 1
                anchor = completed = now + wic
            else:
                if hit:
                    # Compound hit sequence, device arithmetic inlined
                    # (mirrors the ``demand`` closure expression-for-
                    # expression). All accesses touch one bank/row, so
                    # only the tag read resolves the open row at run time;
                    # the chained accesses statically row-hit (open
                    # policy) or re-activate (closed).
                    bk = sb[g]
                    ch = sc[g]
                    row = sr[g]
                    open_row = s_open[bk]
                    if open_row == row:
                        core = core_rh
                        service = bst_rh
                        serv_t = servt_rh
                        t_stage = tst_rh
                        k_rh += 1
                    elif open_row is None:
                        core = core_act
                        service = bst_act
                        serv_t = servt_act
                        t_stage = tst_act
                        k_act += 1
                    else:
                        core = core_conf
                        service = bst_conf
                        serv_t = servt_conf
                        t_stage = tst_conf
                        k_act += 1
                    free = s_bdf[bk]
                    start = t0 if t0 >= free else free
                    backlog = s_baf[bk] - start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_blockcap else s_blockcap
                        drain = backlog - s_wmark
                        start += blocked + (drain if drain > 0.0 else 0.0)
                    s_bdf[bk] = start + service
                    free = s_baf[bk]
                    s_baf[bk] = (free if free >= start else start) + service
                    data_ready = start + core
                    free = s_udf[ch]
                    bus_start = data_ready if data_ready >= free else free
                    backlog = s_uaf[ch] - bus_start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_lburst else s_lburst
                        drain = backlog - s_buswmark
                        bus_start += blocked + (drain if drain > 0.0 else 0.0)
                    s_udf[ch] = bus_start + tag_b
                    free = s_uaf[ch]
                    s_uaf[ch] = (free if free >= bus_start else bus_start) + tag_b
                    done_t = bus_start + tag_b
                    q_t = (start - t0) + (bus_start - data_ready)
                    # Data read, chained on the same bank.
                    now2 = done_t + tcc
                    free = s_bdf[bk]
                    start = now2 if now2 >= free else free
                    backlog = s_baf[bk] - start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_blockcap else s_blockcap
                        drain = backlog - s_wmark
                        start += blocked + (drain if drain > 0.0 else 0.0)
                    s_bdf[bk] = start + bs2_lb
                    free = s_baf[bk]
                    s_baf[bk] = (free if free >= start else start) + bs2_lb
                    data_ready = start + core2
                    free = s_udf[ch]
                    bus_start = data_ready if data_ready >= free else free
                    backlog = s_uaf[ch] - bus_start
                    if backlog > 0:
                        blocked = backlog if backlog <= s_lburst else s_lburst
                        drain = backlog - s_buswmark
                        bus_start += blocked + (drain if drain > 0.0 else 0.0)
                    s_udf[ch] = bus_start + lb
                    free = s_uaf[ch]
                    s_uaf[ch] = (free if free >= bus_start else bus_start) + lb
                    done = bus_start + lb
                    q_d = (start - now2) + (bus_start - data_ready)
                    if s_openpol:
                        k_rh += 1
                    else:
                        k_act += 1
                        n_reopen += 1
                    if requpd:
                        # Replacement-metadata write (outputs discarded).
                        free = s_bdf[bk]
                        start = done if done >= free else free
                        backlog = s_baf[bk] - start
                        if backlog > 0:
                            blocked = (
                                backlog if backlog <= s_blockcap else s_blockcap
                            )
                            drain = backlog - s_wmark
                            start += blocked + (drain if drain > 0.0 else 0.0)
                        s_bdf[bk] = start + bs2_ub
                        free = s_baf[bk]
                        s_baf[bk] = (free if free >= start else start) + bs2_ub
                        data_ready = start + core2
                        free = s_udf[ch]
                        bus_start = data_ready if data_ready >= free else free
                        backlog = s_uaf[ch] - bus_start
                        if backlog > 0:
                            blocked = backlog if backlog <= s_lburst else s_lburst
                            drain = backlog - s_buswmark
                            bus_start += blocked + (drain if drain > 0.0 else 0.0)
                        s_udf[ch] = bus_start + ub
                        free = s_uaf[ch]
                        s_uaf[ch] = (free if free >= bus_start else bus_start) + ub
                        if s_openpol:
                            k_rh += 1
                        else:
                            k_act += 1
                        k_acc += 1
                        k_wr += 1
                        k_bus += ub
                        k_byt += ub_bytes
                        n_upd += 1
                    s_open[bk] = row if s_openpol else None
                    k_acc += 2
                    k_rd += 2
                    k_bus += tag_b + lb
                    k_byt += tag_bytes + lb_bytes
                    lat = done - arrival
                    ha(lat)
                    q = q_t + q_d
                    qa(q)
                    ta(t_stage)
                    da(serv2_lb)
                    mma(0.0)
                    gap = lat - (q + mmlf + t_stage + serv2_lb)
                else:
                    n_mr += 1
                    done, _, q, serv = mdemand(
                        t0, mb[g], mc[g], mr[g], mlb, False
                    )
                    push(heap, (done, seq, _EV_FILL, g, 0))
                    seq += 1
                    lat = done - arrival
                    ma(lat)
                    qa(q)
                    ta(0.0)
                    da(0.0)
                    mma(serv)
                    gap = lat - (q + mmlf + serv)
                ra(lat)
                if gap < 0.0:
                    gap = -gap
                ua(gap if gap > eps else 0.0)
                completed = done if done >= arrival else arrival
                if mlp:
                    # Compute overlaps the outstanding miss: the next record
                    # issues relative to now, not the read's completion.
                    outst[ci].append(completed)
                    anchor = now
                else:
                    anchor = completed
                if completed > last_read[ci]:
                    last_read[ci] = completed
            if completed > finish[ci]:
                finish[ci] = completed
            g += 1
            cur[ci] = g
            if g < ends[ci]:
                nxt = anchor + G[g]
                push(heap, (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0))
                seq += 1
        elif kind == 1:  # _EV_MEMWRITE
            n_mw += 1
            chunk = a // m_lpr
            ch = chunk % m_ch
            per = chunk // m_ch
            mbg(now, ch * m_banks + per % m_banks, ch, per // m_banks, mlb, True)
        elif kind == 2:  # _EV_FILL (SetAssocCache.fill + on_insert inlined)
            addr2 = A[a]
            bk = sb[a]
            ch = sc[a]
            row = sr[a]
            # Tag read (``background`` closure inlined; background
            # accesses reserve only the all-traffic horizons).
            open_row = s_open[bk]
            if open_row == row:
                act = 0
                service = bst_rh
                k_rh += 1
            elif open_row is None:
                act = s_tact
                service = bst_act
                k_act += 1
            else:
                act = s_tconf
                service = bst_conf
                k_act += 1
            free = s_baf[bk]
            start = now if now >= free else free
            s_baf[bk] = start + service
            data_ready = start + act + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + tag_b
            td = bus_start + tag_b
            k_acc += 1
            k_rd += 1
            k_bg += 1
            k_bus += tag_b
            k_byt += tag_bytes
            i = SI[a]
            cset = sets[i]
            ctags = cset.tags
            imap = cset.index_map
            way = imap.get(addr2)
            ev_valid = False
            ev_dirty = False
            ev_addr = -1
            if way is None:
                if -1 in ctags:
                    way = ctags.index(-1)
                else:
                    if pol_kind:
                        way = cset.policy_state[-1]
                    else:
                        way = rng_randrange(cset.policy_state)
                    ev_valid = True
                    ev_addr = ctags[way]
                    ev_dirty = cset.dirty[way]
                    del imap[ev_addr]
                    n_evict += 1
                    if ev_dirty:
                        n_devict += 1
                ctags[way] = addr2
                imap[addr2] = way
                cset.dirty[way] = False
                tg_f += 1
            if pol_kind == 1:
                state = cset.policy_state
                state.remove(way)
                state.insert(0, way)
            elif pol_kind == 2:
                state = cset.policy_state
                state.remove(way)
                r = i % dp
                if r == 0:
                    lru_ins = True
                elif r == 1:
                    lru_ins = False
                else:
                    lru_ins = pol.psel < half
                if lru_ins:
                    state.insert(0, way)
                elif rng_randrange(bip_inv) == 0:
                    state.insert(0, way)
                else:
                    state.append(way)
            # missmap.insert(addr2), segment accounting included
            if addr2 not in mm_present:
                mm_present.add(addr2)
                seg = addr2 // mm_lps
                mm_pop[seg] = mm_pop_get(seg, 0) + 1
            t = td + tcc
            if ev_valid:
                # missmap.remove(ev_addr)
                if ev_addr in mm_present:
                    mm_present.discard(ev_addr)
                    seg = ev_addr // mm_lps
                    remaining = mm_pop[seg] - 1
                    if remaining:
                        mm_pop[seg] = remaining
                    else:
                        del mm_pop[seg]
                if ev_dirty:
                    # Victim line read, chained on the same bank.
                    free = s_baf[bk]
                    start = t if t >= free else free
                    s_baf[bk] = start + bs2_lb
                    data_ready = start + act2 + s_tcas
                    free = s_uaf[ch]
                    bus_start = data_ready if data_ready >= free else free
                    s_uaf[ch] = bus_start + lb
                    vdone = bus_start + lb
                    if s_openpol:
                        k_rh += 1
                    else:
                        k_act += 1
                    k_acc += 1
                    k_rd += 1
                    k_bg += 1
                    k_bus += lb
                    k_byt += lb_bytes
                    n_vr += 1
                    push(heap, (vdone, seq, _EV_MEMWRITE, ev_addr, 0))
                    seq += 1
                    t = vdone
            # Data write, then the tag-line update chained behind it.
            free = s_baf[bk]
            start = t if t >= free else free
            s_baf[bk] = start + bs2_lb
            data_ready = start + act2 + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + lb
            dw = bus_start + lb
            free = s_baf[bk]
            start = dw if dw >= free else free
            s_baf[bk] = start + bs2_lb
            data_ready = start + act2 + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + lb
            s_open[bk] = row if s_openpol else None
            if s_openpol:
                k_rh += 2
            else:
                k_act += 2
            k_acc += 2
            k_wr += 2
            k_bg += 2
            k_bus += lb + lb
            k_byt += lb_bytes + lb_bytes
            n_fills += 1
        else:  # _EV_WHT (write-hit traffic): tag read, then data write
            bk = sb[a]
            ch = sc[a]
            row = sr[a]
            open_row = s_open[bk]
            if open_row == row:
                act = 0
                service = bst_rh
                k_rh += 1
            elif open_row is None:
                act = s_tact
                service = bst_act
                k_act += 1
            else:
                act = s_tconf
                service = bst_conf
                k_act += 1
            free = s_baf[bk]
            start = now if now >= free else free
            s_baf[bk] = start + service
            data_ready = start + act + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + tag_b
            td = bus_start + tag_b
            t = td + tcc
            free = s_baf[bk]
            start = t if t >= free else free
            s_baf[bk] = start + bs2_lb
            data_ready = start + act2 + s_tcas
            free = s_uaf[ch]
            bus_start = data_ready if data_ready >= free else free
            s_uaf[ch] = bus_start + lb
            s_open[bk] = row if s_openpol else None
            if s_openpol:
                k_rh += 1
            else:
                k_act += 1
            k_acc += 2
            k_rd += 1
            k_wr += 1
            k_bg += 2
            k_bus += tag_b + lb
            k_byt += tag_bytes + lb_bytes
    stats = design.stats
    mflush()
    sflush()
    stacked._n_accesses += k_acc
    stacked._n_row_hits += k_rh
    stacked._n_activations += k_act
    stacked._n_reads += k_rd
    stacked._n_writes += k_wr
    stacked._n_background += k_bg
    stacked._n_bus_cycles += k_bus
    stacked._n_bytes += k_byt
    _flush(stats, "compound_row_reopens", n_reopen)
    _flush(stats, "replacement_updates", n_upd)
    _flush(stats, "write_hits", n_wh)
    _flush(stats, "write_misses", n_wm)
    _flush(stats, "memory_reads", n_mr)
    _flush(stats, "memory_writes", n_mw)
    _flush(stats, "victim_reads", n_vr)
    _flush(stats, "fills", n_fills)
    _flush(tags_cache.stats, "hits", tg_h)
    _flush(tags_cache.stats, "misses", tg_m)
    _flush(tags_cache.stats, "fills", tg_f)
    _flush(tags_cache.stats, "evictions", n_evict)
    _flush(tags_cache.stats, "dirty_evictions", n_devict)
    _flush(missmap.stats, "lookups", n_mml)
    _flush(missmap.stats, "predicted_hits", n_mmh)
    _flush(missmap.stats, "predicted_misses", n_mmm)
    _writeback_reads(
        design, readlat, hitlat, misslat,
        (stq, [mmlf] * len(readlat), stt, std, stm), unat
    )
    _finish_cores(system, finish, last_read, nr, nw)
    system.events_processed += events
    system.now = now


# ----------------------------------------------------------------------
# alloy kernel (direct-mapped, all predictor variants)
# ----------------------------------------------------------------------
def _mact_indices(pcs_np, index_bits):
    """Vectorized :func:`repro.core.predictors.folded_xor` over a PC array."""
    value = pcs_np.astype(np.uint64)
    mask = np.uint64((1 << index_bits) - 1)
    shift = np.uint64(index_bits)
    folded = np.zeros_like(value)
    while value.any():
        folded ^= value & mask
        value >>= shift
    return folded.astype(np.int64).tolist()


def _run_alloy(system, starts):
    design = system.design
    memory = system.memory
    stacked = system.stacked
    mdemand, mbg, mflush, _ = _device_fns(memory)
    sdemand, sbg, sflush, _ = _device_fns(stacked)
    predictor = design.predictor
    dkind = design._pred_kind
    if dkind == 3:
        ptype = type(predictor)
        pk = {MapIPredictor: 3, MapGPredictor: 4, SamPredictor: 5, PamPredictor: 6}[
            ptype
        ]
    else:
        pk = dkind  # 0 = none, 1 = MissMap, 2 = Perfect
    A, G, W, P, D, base, nr, nw, a_np = _flatten(system, starts, pk == 3)
    mb, mc, mr = _mem_decode(a_np, memory.mapping)
    si_np = a_np % design._num_sets
    SI = si_np.tolist()
    sb, sc, sr = _row_decode(si_np // design._sets_per_row, stacked)
    slot_np = si_np % design._sets_per_row
    BU = np.asarray(design._burst_by_slot, dtype=np.int64)[slot_np].tolist()
    IDX = _mact_indices(P, predictor._index_bits) if pk == 3 else None
    mapping = memory.mapping
    m_lpr = mapping.lines_per_row
    m_ch = mapping.channels
    m_banks = mapping.banks
    mlb = memory.timings.line_burst
    store = design.cache._store
    # Multi-way Alloy keeps the TAD array in a SetAssocCache (always LRU,
    # guarded in _select_kernel); direct-mapped uses the flat tag arrays.
    mw = design.cache.ways != 1
    if mw:
        sets = store._sets
        tags = dirty = None
    else:
        tags = store._tags
        dirty = store._dirty
    # The victim-buffer variant (always direct-mapped) layers a single-set
    # LRU SetAssocCache probe over the read path.
    victim = type(design) is AlloyVictimDesign
    if victim:
        vset = design.victims._sets[0]
        vtags = vset.tags
        vdirty = vset.dirty
        vstate = vset.policy_state
        vimap = vset.index_map
    vhc = VICTIM_HIT_CYCLES
    vhcf = float(VICTIM_HIT_CYCLES)
    mact = predictor._mact if pk == 3 else None
    mac_g = predictor._mac if pk == 4 else None
    missmap = design._missmap
    plat = design._pred_latency if dkind == 3 else 0
    mml = design._missmap_latency
    l3 = system._l3_latency
    wic = system._write_issue_cycles
    num_cores = len(base) - 1
    ends = base[1:]
    cur = list(base[:-1])
    mshrs = system._mshrs
    mlp = mshrs > 1
    outst = [[] for _ in range(num_cores)] if mlp else None
    finish = [0.0] * num_cores
    last_read = [0.0] * num_cores
    readlat, hitlat, misslat = [], [], []
    stq, stp, stt, std, stm = [], [], [], [], []
    unat = []
    ra, ha, ma = readlat.append, hitlat.append, misslat.append
    qa, pa, ta, da, mma = stq.append, stp.append, stt.append, std.append, stm.append
    ua = unat.append
    eps = ATTRIBUTION_EPSILON
    heap = []
    push = heappush
    pop = heappop
    seq = 0
    if victim and system._heap:
        # Warmup can overflow the victim buffer: each dirty casualty was
        # scheduled as a _memory_write(t, addr) closure on the system heap
        # (address captured as the lambda's default). The interpreter pops
        # them at run start, before any core event — translate them, in
        # pop order, ahead of the core start pushes.
        for when, _, fn in sorted(system._heap):
            push(heap, (when, seq, _EV_MEMWRITE, fn.__defaults__[0], 0))
            seq += 1
        system._heap.clear()
    for ci in range(num_cores):
        if cur[ci] < ends[ci]:
            gap = G[cur[ci]]
            push(heap, (gap if gap >= 0.0 else 0.0, seq, _EV_CORE, ci, 0))
            seq += 1
    events = 0
    now = 0.0
    dm_h = dm_m = dm_f = n_evict = n_devict = 0
    pm = pc_ = 0  # predictor _note tallies
    s_mm = s_mc = s_cm = s_cc = 0  # Table 5 scenarios
    n_mr = n_mw = n_wh = n_wm = n_trh = n_wasted = n_fills = 0
    n_vhit = v_h = v_m = v_f = v_evict = v_devict = 0

    if victim:

        def stash(ev_a, ev_d, tnow):
            # _stash_victim_functional inlined: victims.fill(ev_a, ev_d)
            # on the single LRU set, plus the dirty-overflow writeback.
            nonlocal seq, v_f, v_evict, v_devict
            w = vimap.get(ev_a)
            if w is None:
                ov_addr = -1
                ov_dirty = False
                if -1 in vtags:
                    w = vtags.index(-1)
                else:
                    w = vstate[-1]
                    ov_addr = vtags[w]
                    ov_dirty = vdirty[w]
                    del vimap[ov_addr]
                    v_evict += 1
                    if ov_dirty:
                        v_devict += 1
                vtags[w] = ev_a
                vimap[ev_a] = w
                vdirty[w] = ev_d
                v_f += 1
                if ov_dirty:
                    push(heap, (tnow, seq, _EV_MEMWRITE, ov_addr, 0))
                    seq += 1
            elif ev_d:
                vdirty[w] = True
            vstate.remove(w)
            vstate.insert(0, w)

    while heap:
        now, _, kind, a, b = pop(heap)
        events += 1
        if kind == 0:
            ci = a
            if mlp:
                # MLP prologue (interpreter's _handle_core): retire finished
                # reads, stall on a full MSHR file or a dependent read whose
                # producer is still in flight. Each stall is a reschedule —
                # a separate heap pop, like the interpreter's.
                out = outst[ci]
                if out:
                    out = [t for t in out if t > now]
                    outst[ci] = out
                    if len(out) >= mshrs:
                        push(heap, (min(out), seq, _EV_CORE, ci, 0))
                        seq += 1
                        continue
                if D[cur[ci]] and last_read[ci] > now:
                    push(heap, (last_read[ci], seq, _EV_CORE, ci, 0))
                    seq += 1
                    continue
            g = cur[ci]
            addr = A[g]
            i = SI[g]
            if W[g]:
                if mw:
                    cset = sets[i]
                    way = cset.index_map.get(addr)
                    if way is not None:
                        state = cset.policy_state
                        state.remove(way)
                        state.insert(0, way)
                        cset.dirty[way] = True
                        hit_w = True
                    else:
                        hit_w = False
                elif tags[i] == addr:
                    dirty[i] = True
                    hit_w = True
                else:
                    hit_w = False
                if hit_w:
                    dm_h += 1
                    n_wh += 1
                    hit_flag = 1
                else:
                    dm_m += 1
                    n_wm += 1
                    hit_flag = 0
                push(heap, (now, seq, _EV_WTRAFFIC, g, hit_flag))
                seq += 1
                anchor = completed = now + wic
            else:
                arrival = now + l3
                if victim:
                    vway = vimap.get(addr)
                    if vway is None:
                        v_m += 1
                    else:
                        # SRAM victim-buffer hit: fixed-latency service, no
                        # DRAM/predictor probe; the line swaps back into the
                        # TAD array and the displaced occupant is stashed.
                        vstate.remove(vway)
                        vstate.insert(0, vway)
                        v_h += 1
                        n_vhit += 1
                        s_cc += 1
                        done = arrival + vhc
                        lat = done - arrival
                        ha(lat)
                        qa(0.0)
                        pa(0.0)
                        ta(0.0)
                        da(vhcf)
                        mma(0.0)
                        if pk == 3:
                            row_m = mact[ci]
                            i2 = IDX[g]
                            m2 = row_m[i2]
                            row_m[i2] = m2 - 1 if m2 > 0 else 0
                        elif pk == 4:
                            m2 = mac_g[ci]
                            mac_g[ci] = m2 - 1 if m2 > 0 else 0
                        # _swap_back_functional: victims.invalidate, then
                        # DirectMappedCache.fill(addr, dirty=was_d).
                        was_d = vdirty[vway]
                        del vimap[addr]
                        vtags[vway] = -1
                        vdirty[vway] = False
                        old = tags[i]
                        if old == addr:
                            if was_d:
                                dirty[i] = True
                        else:
                            if old != -1:
                                disp_d = dirty[i]
                                n_evict += 1
                                if disp_d:
                                    n_devict += 1
                                tags[i] = addr
                                dirty[i] = was_d
                                dm_f += 1
                                stash(old, disp_d, now)
                            else:
                                tags[i] = addr
                                dirty[i] = was_d
                                dm_f += 1
                        push(heap, (arrival, seq, _EV_STACKWRITE, g, 0))
                        seq += 1
                        ra(lat)
                        gap = lat - vhcf
                        if gap < 0.0:
                            gap = -gap
                        ua(gap if gap > eps else 0.0)
                        completed = done if done >= arrival else arrival
                        if mlp:
                            outst[ci].append(completed)
                            anchor = now
                        else:
                            anchor = completed
                        if completed > last_read[ci]:
                            last_read[ci] = completed
                        if completed > finish[ci]:
                            finish[ci] = completed
                        g += 1
                        cur[ci] = g
                        if g < ends[ci]:
                            nxt = anchor + G[g]
                            push(
                                heap,
                                (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0),
                            )
                            seq += 1
                        continue
                if mw:
                    cset = sets[i]
                    way = cset.index_map.get(addr)
                    hit = way is not None
                    if hit:
                        state = cset.policy_state
                        state.remove(way)
                        state.insert(0, way)
                        dm_h += 1
                    else:
                        dm_m += 1
                elif tags[i] == addr:
                    hit = True
                    dm_h += 1
                else:
                    hit = False
                    dm_m += 1
                if pk == 3:
                    row_m = mact[ci]
                    i2 = IDX[g]
                    p = row_m[i2] >= 4
                    if p:
                        pm += 1
                    else:
                        pc_ += 1
                    pready = arrival + plat
                elif pk == 4:
                    p = mac_g[ci] >= 4
                    if p:
                        pm += 1
                    else:
                        pc_ += 1
                    pready = arrival + plat
                elif pk == 5:
                    p = False
                    pc_ += 1
                    pready = arrival + plat
                elif pk == 6:
                    p = True
                    pm += 1
                    pready = arrival + plat
                elif pk == 1:
                    p = not hit
                    pready = arrival + mml
                elif pk == 2:
                    p = not hit
                    if p:
                        pm += 1
                    else:
                        pc_ += 1
                    pready = arrival
                else:
                    p = False
                    pready = arrival
                if p:
                    if hit:
                        s_mc += 1
                    else:
                        s_mm += 1
                elif hit:
                    s_cc += 1
                else:
                    s_cm += 1
                pd = pready - arrival
                done_t, rh_t, q_t, serv_t = sdemand(
                    pready, sb[g], sc[g], sr[g], BU[g], False
                )
                if rh_t:
                    n_trh += 1
                if hit:
                    if p:
                        n_mr += 1
                        mdemand(pready, mb[g], mc[g], mr[g], mlb, False)
                        n_wasted += 1
                    done = done_t
                    lat = done - arrival
                    ha(lat)
                    qa(q_t)
                    pa(pd)
                    ta(0.0)
                    da(serv_t)
                    mma(0.0)
                    gap = lat - (q_t + pd + serv_t)
                    if pk == 3:
                        m2 = row_m[i2]
                        row_m[i2] = m2 - 1 if m2 > 0 else 0
                    elif pk == 4:
                        m2 = mac_g[ci]
                        mac_g[ci] = m2 - 1 if m2 > 0 else 0
                else:
                    n_mr += 1
                    if p:  # PAM: parallel memory access
                        done_m, _, q_m, serv_m = mdemand(
                            pready, mb[g], mc[g], mr[g], mlb, False
                        )
                        done = done_m if done_m >= done_t else done_t
                        lat = done - arrival
                        if done_t > done_m:
                            qa(q_t)
                            pa(pd)
                            ta(serv_t)
                            da(0.0)
                            mma(0.0)
                            gap = lat - (q_t + pd + serv_t)
                        else:
                            qa(q_m)
                            pa(pd)
                            ta(0.0)
                            da(0.0)
                            mma(serv_m)
                            gap = lat - (q_m + pd + serv_m)
                    else:  # SAM: serialized after the probe
                        done, _, q_m, serv_m = mdemand(
                            done_t, mb[g], mc[g], mr[g], mlb, False
                        )
                        lat = done - arrival
                        q = q_t + q_m
                        qa(q)
                        pa(pd)
                        ta(serv_t)
                        da(0.0)
                        mma(serv_m)
                        gap = lat - (q + pd + serv_t + serv_m)
                    ma(lat)
                    if pk == 3:
                        m2 = row_m[i2]
                        row_m[i2] = m2 + 1 if m2 < 7 else 7
                    elif pk == 4:
                        m2 = mac_g[ci]
                        mac_g[ci] = m2 + 1 if m2 < 7 else 7
                    push(heap, (done, seq, _EV_FILL, g, 0))
                    seq += 1
                ra(lat)
                if gap < 0.0:
                    gap = -gap
                ua(gap if gap > eps else 0.0)
                completed = done if done >= arrival else arrival
                if mlp:
                    # Compute overlaps the outstanding miss: the next record
                    # issues relative to now, not the read's completion.
                    outst[ci].append(completed)
                    anchor = now
                else:
                    anchor = completed
                if completed > last_read[ci]:
                    last_read[ci] = completed
            if completed > finish[ci]:
                finish[ci] = completed
            g += 1
            cur[ci] = g
            if g < ends[ci]:
                nxt = anchor + G[g]
                push(heap, (nxt if nxt >= now else now, seq, _EV_CORE, ci, 0))
                seq += 1
        elif kind == 1:  # _EV_MEMWRITE
            n_mw += 1
            chunk = a // m_lpr
            ch = chunk % m_ch
            per = chunk // m_ch
            mbg(now, ch * m_banks + per % m_banks, ch, per // m_banks, mlb, True)
        elif kind == 2:  # _EV_FILL (cache fill + replacement inlined)
            addr2 = A[a]
            i = SI[a]
            ev_valid = False
            ev_dirty = False
            old = -1
            if mw:
                # SetAssocCache.fill + LRU on_insert (both branches).
                cset = sets[i]
                ctags = cset.tags
                imap = cset.index_map
                way = imap.get(addr2)
                if way is None:
                    if -1 in ctags:
                        way = ctags.index(-1)
                    else:
                        way = cset.policy_state[-1]
                        old = ctags[way]
                        ev_valid = True
                        ev_dirty = cset.dirty[way]
                        del imap[old]
                        n_evict += 1
                        if ev_dirty:
                            n_devict += 1
                    ctags[way] = addr2
                    imap[addr2] = way
                    cset.dirty[way] = False
                    dm_f += 1
                state = cset.policy_state
                state.remove(way)
                state.insert(0, way)
            else:
                # DirectMappedCache.fill inlined.
                old = tags[i]
                if old != addr2:
                    if old != -1:
                        ev_valid = True
                        ev_dirty = dirty[i]
                        n_evict += 1
                        if ev_dirty:
                            n_devict += 1
                    tags[i] = addr2
                    dirty[i] = False
                    dm_f += 1
            if missmap is not None:
                missmap.insert(addr2)
                if ev_valid:
                    missmap.remove(old)
            if victim:
                # Displaced lines (clean or dirty) go to the victim buffer
                # instead of straight to memory.
                if ev_valid:
                    stash(old, ev_dirty, now)
            elif ev_dirty:
                push(heap, (now, seq, _EV_MEMWRITE, old, 0))
                seq += 1
            sbg(now, sb[a], sc[a], sr[a], BU[a], True)
            n_fills += 1
        elif kind == 3:  # _EV_STACKWRITE (victim swap-back TAD refill)
            sbg(now, sb[a], sc[a], sr[a], BU[a], True)
        else:  # _EV_WTRAFFIC: probe the TAD, then write it or go to memory
            probe_done = sbg(now, sb[a], sc[a], sr[a], BU[a], False)
            if b:
                sbg(probe_done, sb[a], sc[a], sr[a], BU[a], True)
            else:
                n_mw += 1
                mbg(probe_done, mb[a], mc[a], mr[a], mlb, True)
    stats = design.stats
    mflush()
    sflush()
    _flush(stats, _SCENARIO_KEYS[(True, True)], s_mm)
    _flush(stats, _SCENARIO_KEYS[(True, False)], s_mc)
    _flush(stats, _SCENARIO_KEYS[(False, True)], s_cm)
    _flush(stats, _SCENARIO_KEYS[(False, False)], s_cc)
    _flush(stats, "tad_row_hits", n_trh)
    _flush(stats, "wasted_memory_reads", n_wasted)
    _flush(stats, "write_hits", n_wh)
    _flush(stats, "write_misses", n_wm)
    _flush(stats, "memory_reads", n_mr)
    _flush(stats, "memory_writes", n_mw)
    _flush(stats, "fills", n_fills)
    _flush(store.stats, "hits", dm_h)
    _flush(store.stats, "misses", dm_m)
    _flush(store.stats, "fills", dm_f)
    _flush(store.stats, "evictions", n_evict)
    _flush(store.stats, "dirty_evictions", n_devict)
    if victim:
        _flush(stats, "victim_hits", n_vhit)
        vstats = design.victims.stats
        _flush(vstats, "hits", v_h)
        _flush(vstats, "misses", v_m)
        _flush(vstats, "fills", v_f)
        _flush(vstats, "evictions", v_evict)
        _flush(vstats, "dirty_evictions", v_devict)
    if pk >= 2:  # kinds with a _note()-tracking predictor
        predictor.predicted_memory += pm
        predictor.predicted_cache += pc_
    _writeback_reads(
        design, readlat, hitlat, misslat, (stq, stp, stt, std, stm), unat
    )
    _finish_cores(system, finish, last_read, nr, nw)
    system.events_processed += events
    system.now = now
