"""The multi-core system simulator: event loop tying cores to a design.

Discrete-event simulation over a single heap. Two event kinds share it:

* **core events** — a core issues its next trace record. Demand reads pass
  through the L3 (fixed 24-cycle lookup, by which point the request has
  missed) and block the core until the design reports data available;
  writebacks are posted.
* **scheduled callbacks** — background work the designs post (fills,
  replacement updates, dirty writebacks) so device reservations happen in
  approximate global time order rather than far in the past or future.

A functional warmup phase (default 25% of each trace) replays the leading
records through the designs' ``warm`` hooks — filling tag arrays and
training predictors without advancing time — so measured hit rates reflect
steady state rather than a cold cache.
"""

from __future__ import annotations

import heapq
import os
import sys
from itertools import count
from typing import Callable, List, Optional, Union

from repro.dram.device import DramDevice
from repro.dram.energy import system_energy
from repro.dramcache.base import DramCacheDesign
from repro.dramcache.factory import make_design
from repro.lifecycle import MemoryRequest
from repro.sim.config import SystemConfig
from repro.sim.core_model import Core, warmup_split
from repro.sim.results import SimResult
from repro.workloads.trace import Workload

_SCENARIO_KEYS = (
    "pred_mem_actual_mem",
    "pred_mem_actual_cache",
    "pred_cache_actual_mem",
    "pred_cache_actual_cache",
)

_ENGINES = ("interp", "batch", "auto")

#: Invalid REPRO_ENGINE values already warned about (once per process —
#: sweeps construct thousands of Systems).
_warned_engines: set = set()


class System:
    """One complete system instance: devices + design + cores."""

    def __init__(
        self,
        config: SystemConfig,
        design: Union[str, Callable],
        workload: Workload,
        warmup_fraction: float = 0.25,
        device_cls: Optional[type] = None,
    ) -> None:
        if workload.num_cores != config.num_cores:
            raise ValueError(
                f"workload has {workload.num_cores} cores, "
                f"config expects {config.num_cores}"
            )
        self.config = config
        self.workload = workload
        self.warmup_fraction = warmup_fraction

        # ``device_cls`` swaps the DRAM device implementation — used by the
        # differential fuzzer to run whole systems against the reference
        # OracleDramDevice (repro.verify) with everything else identical.
        device_cls = device_cls or DramDevice
        self.memory = device_cls(
            config.offchip, name="memory", page_policy=config.offchip_page_policy
        )
        self.stacked = device_cls(
            config.stacked, name="stacked", page_policy=config.stacked_page_policy
        )
        self._heap: List = []
        self._seq = count()
        self.now = 0.0
        #: Heap entries popped by :meth:`run` (sweep telemetry).
        self.events_processed = 0
        # Hot-path constants and a reusable scratch request: one
        # MemoryRequest is mutated per core event instead of allocated,
        # which is safe because designs never retain a request past
        # ``handle()`` (documented on MemoryRequest).
        self._mshrs = config.mshrs_per_core
        self._l3_latency = config.l3_latency
        self._write_issue_cycles = config.write_issue_cycles
        self._request = MemoryRequest(0, False, 0, 0, 0.0)
        if callable(design):
            # Custom builder: builder(config, stacked, memory, schedule).
            self.design: DramCacheDesign = design(
                config, self.stacked, self.memory, self.schedule
            )
        else:
            self.design = make_design(
                design, config, self.stacked, self.memory, self.schedule
            )
        self._cores: List[Core] = []
        # Invariant layer: installed only when explicitly enabled (config
        # flag or REPRO_VERIFY=1); None means the hot path is untouched.
        from repro.verify.invariants import maybe_install

        self.checker = maybe_install(self, config.verify)
        #: Which engine actually produced the result: "interp" until the
        #: batch engine accepts the configuration and completes a run.
        self.engine_used = "interp"

    def _resolve_engine(self) -> str:
        """Pick the simulation engine: explicit config wins, then env.

        An invalid explicit ``config.engine`` is a programming error and
        raises; an invalid ``REPRO_ENGINE`` value only warns (environment
        variables leak across process boundaries and must not break runs).
        """
        engine = self.config.engine
        if engine:
            if engine not in _ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}: "
                    "expected 'interp', 'batch' or 'auto'"
                )
            return engine
        env = os.environ.get("REPRO_ENGINE", "")
        if env and env not in _ENGINES:
            if env not in _warned_engines:
                _warned_engines.add(env)
                print(
                    f"repro: ignoring invalid REPRO_ENGINE={env!r} "
                    "(expected 'interp', 'batch' or 'auto')",
                    file=sys.stderr,
                )
            return "interp"
        return env or "interp"

    # ------------------------------------------------------------------
    # Scheduler used by designs for background work
    # ------------------------------------------------------------------
    def schedule(self, when: float, fn: Callable[[float], None]) -> None:
        """Run ``fn(when)`` when simulated time reaches ``when``."""
        now = self.now
        heapq.heappush(
            self._heap, (when if when >= now else now, next(self._seq), fn)
        )

    # ------------------------------------------------------------------
    # Warmup
    # ------------------------------------------------------------------
    def _warm(self) -> List[int]:
        """Functionally replay leading records; returns per-core start index."""
        starts = []
        for core_id, trace in enumerate(self.workload.cores):
            split = warmup_split(trace, self.warmup_fraction)
            starts.append(split)
            if not split:
                continue
            addresses = trace.addresses[:split]
            writes = trace.is_write[:split]
            pcs = trace.pcs[:split]
            for addr, is_write, pc in zip(
                addresses.tolist(), writes.tolist(), pcs.tolist()
            ):
                self.design.warm(int(addr), bool(is_write), int(pc), core_id)
        return starts

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        if self._resolve_engine() != "interp":
            # "batch" and "auto" both attempt the batch engine; any
            # configuration outside its envelope falls through to the
            # interpreter (batch.run declines before mutating state).
            from repro.sim import batch

            result = batch.run(self)
            if result is not None:
                return result

        starts = self._warm()
        self._cores = [
            Core(core_id, trace, start_index=starts[core_id])
            for core_id, trace in enumerate(self.workload.cores)
        ]
        for core in self._cores:
            if core.has_next():
                self.schedule(core.peek_gap(), self._make_core_event(core))

        # Hot loop: locals for the heap machinery; ``self.now`` must still
        # be stored per event (design callbacks read it via ``schedule``).
        heap = self._heap
        heappop = heapq.heappop
        events = 0
        while heap:
            when, _, fn = heappop(heap)
            self.now = when
            events += 1
            fn(when)
        self.events_processed += events

        return self._collect()

    def _make_core_event(self, core: Core) -> Callable[[float], None]:
        """One reusable event closure per core (rescheduled, not re-created)."""

        def fire(now: float) -> None:
            self._handle_core(core, now, fire)

        return fire

    def _handle_core(
        self, core: Core, now: float, fire: Callable[[float], None]
    ) -> None:
        mshrs = self._mshrs
        if mshrs > 1:
            # MLP core: stall when every MSHR is occupied, or when the next
            # read's address depends on an in-flight read (pointer chasing).
            core.retire_completed(now)
            if core.mshr_full(mshrs):
                self.schedule(core.earliest_completion(), fire)
                return
            if (
                core.has_next()
                and core.next_is_dependent()
                and core.last_read_done > now
            ):
                self.schedule(core.last_read_done, fire)
                return

        address, is_write, pc = core.next_record()
        request = self._request
        request.line_address = address
        request.is_write = is_write
        request.pc = pc
        request.core_id = core.core_id
        if is_write:
            # Posted writeback: the design handles it off the critical path.
            request.issue_cycle = now
            self.design.handle(request)
            completed = now + self._write_issue_cycles
        else:
            # Demand read: L3 lookup (a miss, by trace construction), then
            # the DRAM-cache design.
            arrival = now + self._l3_latency
            request.issue_cycle = arrival
            outcome = self.design.handle(request)
            done = outcome.done
            completed = done if done >= arrival else arrival
            if mshrs > 1:
                core.outstanding.append(completed)
            if completed > core.last_read_done:
                core.last_read_done = completed
        if completed > core.finish_time:
            core.finish_time = completed
        if core.has_next():
            if mshrs > 1 and not is_write:
                # Compute overlaps the outstanding miss; the next record
                # issues after the gap, subject to MSHR availability.
                next_at = now + core.peek_gap()
            else:
                next_at = completed + core.peek_gap()
            self.schedule(next_at, fire)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _collect(self) -> SimResult:
        per_core = [core.finish_time for core in self._cores]
        cycles = sum(per_core) / len(per_core) if per_core else 0.0
        design = self.design
        timed_fraction = 1.0 - self.warmup_fraction
        instructions = int(self.workload.total_instructions * timed_fraction)

        scenarios = {
            key: design.stats.counter(key).value
            for key in _SCENARIO_KEYS
            if key in design.stats.counters
        }
        elapsed = max(per_core) if per_core else 0.0
        energy = system_energy(self.memory, self.stacked)
        result = SimResult(
            workload=self.workload.name,
            design=design.name,
            cycles=cycles,
            per_core_cycles=per_core,
            instructions=instructions,
            read_hit_rate=design.read_hit_rate,
            overall_hit_rate=design.overall_hit_rate,
            avg_hit_latency=design.avg_hit_latency,
            avg_read_latency=design.avg_read_latency,
            memory_reads=design.stats.counter("memory_reads").value,
            memory_writes=design.stats.counter("memory_writes").value,
            wasted_memory_reads=design.stats.counter("wasted_memory_reads").value,
            stacked_row_hit_rate=self.stacked.row_hit_rate,
            stacked_bus_utilization=self.stacked.bus_utilization(elapsed),
            predictor_scenarios=scenarios,
            design_stats=design.stats.as_dict(),
            memory_energy_nj=energy["memory"].total_nj,
            stacked_energy_nj=energy["stacked"].total_nj,
            hit_latency_p50=design.hit_latency_hist.percentile(0.50),
            hit_latency_p95=design.hit_latency_hist.percentile(0.95),
            read_latency_p95=design.read_latency_hist.percentile(0.95),
            stage_latency_means=design.stage_means(),
            stage_latency_p95=design.stage_p95s(),
            unattributed_cycles=design.unattributed_cycles,
            heap_events=self.events_processed,
        )
        if self.checker is not None:
            self.checker.check_final(self, result)
        return result
