"""Functional L3 filter: turn an L2-miss stream into the post-L3 stream.

The simulator's workloads are L3-miss streams (what reaches the DRAM-cache
controller). When importing *raw* traces captured above the L3 — e.g. an
application's full load/store or L2-miss stream — this filter replays them
through a functional model of the paper's L3 (8 MB, 16-way, shared) and
emits exactly what the DRAM cache would see:

* demand reads that miss the L3 (gaps re-accumulated across filtered hits,
  each absorbed hit contributing the 24-cycle L3 latency of compute time),
* writebacks of dirty L3 victims at their eviction points.

The L3 capacity participates in the same ``capacity_scale`` scaling as the
DRAM cache so filtered reuse distances stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cache.replacement import LRUPolicy
from repro.cache.set_assoc import SetAssocCache
from repro.units import MB
from repro.workloads.trace import CoreTrace, Workload

#: Paper Table 2: 8 MB shared L3, 16 ways, 24-cycle lookup.
L3_CAPACITY_BYTES = 8 * MB
L3_WAYS = 16
L3_LATENCY = 24


@dataclass
class L3FilterStats:
    """Accounting for one filtering pass."""

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class L3Filter:
    """Shared functional L3 that filters multi-core traces."""

    def __init__(
        self,
        capacity_bytes: int = L3_CAPACITY_BYTES,
        ways: int = L3_WAYS,
        capacity_scale: int = 256,
    ) -> None:
        scaled = max(capacity_bytes // capacity_scale, 64 * ways)
        num_sets = max(scaled // 64 // ways, 1)
        self.cache = SetAssocCache(num_sets, ways, policy=LRUPolicy(), name="l3")
        self.stats = L3FilterStats()

    # ------------------------------------------------------------------
    def filter_workload(self, workload: Workload) -> Workload:
        """Replay all cores round-robin through the shared L3.

        Round-robin interleaving approximates concurrent execution well
        enough for a *functional* filter (no timing decisions are made
        here), and keeps the pass deterministic.
        """
        builders = [_CoreBuilder(trace.instructions) for trace in workload.cores]
        cursors = [0] * workload.num_cores
        longest = max(len(t) for t in workload.cores)

        for step in range(longest):
            for core_id, trace in enumerate(workload.cores):
                if cursors[core_id] >= len(trace):
                    continue
                i = cursors[core_id]
                cursors[core_id] += 1
                self._one_access(
                    builders[core_id],
                    float(trace.gaps[i]),
                    int(trace.addresses[i]),
                    bool(trace.is_write[i]),
                    int(trace.pcs[i]),
                )

        cores = [b.build() for b in builders]
        return Workload(name=f"{workload.name}+l3", cores=cores)

    # ------------------------------------------------------------------
    def _one_access(self, builder, gap, address, is_write, pc) -> None:
        self.stats.accesses += 1
        hit = self.cache.lookup(address, is_write=is_write)
        if hit:
            # Absorbed by the L3: its latency becomes compute time from the
            # DRAM cache's point of view.
            self.stats.hits += 1
            builder.absorb(gap + L3_LATENCY)
            return
        evicted = self.cache.fill(address, dirty=is_write)
        if evicted.valid and evicted.dirty:
            builder.emit_write(evicted.line_address)
            self.stats.writebacks += 1
        if is_write:
            # An upper-level writeback carries the whole line: it allocates
            # in the L3 without demanding anything from below.
            builder.absorb(gap)
            return
        self.stats.demand_misses += 1
        builder.emit_read(gap, address, pc)


class _CoreBuilder:
    """Accumulates one core's filtered records."""

    def __init__(self, instructions: int) -> None:
        self.instructions = instructions
        self._gap_credit = 0.0
        self._gaps: List[float] = []
        self._addresses: List[int] = []
        self._is_write: List[bool] = []
        self._pcs: List[int] = []

    def absorb(self, cycles: float) -> None:
        self._gap_credit += cycles

    def emit_read(self, gap: float, address: int, pc: int) -> None:
        self._gaps.append(gap + self._gap_credit)
        self._gap_credit = 0.0
        self._addresses.append(address)
        self._is_write.append(False)
        self._pcs.append(pc)

    def emit_write(self, address: int) -> None:
        self._gaps.append(0.0)
        self._addresses.append(address)
        self._is_write.append(True)
        self._pcs.append(0)

    def build(self) -> CoreTrace:
        return CoreTrace(
            gaps=np.array(self._gaps, dtype=float),
            addresses=np.array(self._addresses, dtype=np.int64),
            is_write=np.array(self._is_write),
            pcs=np.array(self._pcs, dtype=np.int64),
            instructions=self.instructions,
        )
