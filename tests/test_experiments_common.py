"""Tests for the shared experiment sweep helpers."""

import pytest

from repro.experiments.common import (
    FULL_READS,
    QUICK_READS,
    design_geomean,
    improvement_pct,
    primary_names,
    reads_for,
    secondary_names,
    sweep,
)
from repro.sim.config import SystemConfig
from repro.units import MB


class TestHelpers:
    def test_reads_for(self):
        assert reads_for(True) == QUICK_READS
        assert reads_for(False) == FULL_READS
        assert QUICK_READS < FULL_READS

    def test_primary_names(self):
        names = primary_names()
        assert len(names) == 10
        assert names[0] == "mcf_r"

    def test_secondary_names(self):
        assert len(secondary_names()) == 14

    def test_improvement_pct(self):
        assert improvement_pct(1.35) == pytest.approx(35.0)
        assert improvement_pct(1.0) == 0.0


class TestSweep:
    @pytest.fixture(scope="class")
    def tiny_sweep(self):
        config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=2048)
        return sweep(
            ("no-cache", "perfect-l3"),
            ("sphinx_r", "gcc_r"),
            quick=True,
            config=config,
        )

    def test_grid_complete(self, tiny_sweep):
        assert len(tiny_sweep) == 4
        assert ("no-cache", "sphinx_r") in tiny_sweep

    def test_baseline_speedup_is_one(self, tiny_sweep):
        for benchmark in ("sphinx_r", "gcc_r"):
            s, _ = tiny_sweep[("no-cache", benchmark)]
            assert s == pytest.approx(1.0)

    def test_design_geomean(self, tiny_sweep):
        gmean = design_geomean(tiny_sweep, "perfect-l3")
        assert gmean > 1.0

    def test_results_attached(self, tiny_sweep):
        _, result = tiny_sweep[("perfect-l3", "gcc_r")]
        assert result.design == "perfect-l3"
        assert result.workload == "gcc_r"
