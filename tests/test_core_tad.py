"""Tests for TAD geometry (paper Section 4.1, Figure 5)."""

import pytest

from repro.core.tad import AlloyGeometry
from repro.units import MB, ROW_BUFFER_SIZE, TAD_SIZE


@pytest.fixture
def geometry():
    return AlloyGeometry(capacity_bytes=1 * MB)


class TestConstruction:
    def test_rejects_partial_rows(self):
        with pytest.raises(ValueError):
            AlloyGeometry(ROW_BUFFER_SIZE + 1)

    def test_rejects_bad_ways(self):
        with pytest.raises(ValueError):
            AlloyGeometry(1 * MB, ways=3)

    def test_rows_and_sets(self, geometry):
        assert geometry.num_rows == 512
        assert geometry.sets_per_row == 28
        assert geometry.num_sets == 512 * 28

    def test_data_capacity_is_28_of_32(self, geometry):
        assert geometry.data_capacity_bytes == geometry.capacity_bytes * 28 * 64 // 2048

    def test_32_unused_bytes_per_row(self, geometry):
        assert geometry.unused_bytes_per_row == 32


class TestSetMapping:
    def test_modulo_indexing(self, geometry):
        assert geometry.set_index(0) == 0
        assert geometry.set_index(geometry.num_sets + 5) == 5

    def test_consecutive_sets_share_rows(self, geometry):
        # 28 consecutive sets per row: the de-optimization that restores
        # row-buffer locality (Table 1).
        assert geometry.row_of_set(0) == geometry.row_of_set(27)
        assert geometry.row_of_set(27) != geometry.row_of_set(28)

    def test_same_row_helper(self, geometry):
        assert geometry.same_row(0, 27)
        assert not geometry.same_row(27, 28)

    def test_slot_and_offset(self, geometry):
        assert geometry.slot_of_set(0) == 0
        assert geometry.slot_of_set(1) == 1
        assert geometry.byte_offset_of_set(1) == TAD_SIZE
        assert geometry.byte_offset_of_set(28) == 0  # next row, slot 0


class TestTransfers:
    def test_every_tad_is_five_beats(self, geometry):
        """Figure 5: one TAD = 80 bytes = 5 x 16 B beats, regardless of slot."""
        for set_index in range(28):
            transfer = geometry.transfer_for_set(set_index)
            assert transfer.bus_beats == 5
            assert transfer.bytes_on_bus == 80
            assert transfer.useful_bytes == 72

    def test_even_sets_ignore_trailing(self, geometry):
        t = geometry.transfer_for_set(0)
        assert t.ignored_leading_bytes == 0
        assert t.ignored_trailing_bytes == 8

    def test_odd_sets_ignore_leading(self, geometry):
        t = geometry.transfer_for_set(1)
        assert t.ignored_leading_bytes == 8
        assert t.ignored_trailing_bytes == 0

    def test_alignment_alternates_with_slot_parity(self, geometry):
        for set_index in range(28):
            t = geometry.transfer_for_set(set_index)
            if set_index % 2 == 0:
                assert t.ignored_leading_bytes == 0
            else:
                assert t.ignored_leading_bytes == 8

    def test_burst8_restriction(self, geometry):
        # Section 6.5: power-of-two bursts stream 128 bytes.
        t = geometry.transfer_for_set(0, burst_beats=8)
        assert t.bus_beats == 8
        assert t.bytes_on_bus == 128
        assert t.useful_bytes == 72

    def test_burst_too_short_rejected(self, geometry):
        with pytest.raises(ValueError):
            geometry.transfer_for_set(0, burst_beats=4)


class TestTwoWay:
    def test_sets_halve(self):
        g = AlloyGeometry(1 * MB, ways=2)
        assert g.sets_per_row == 14
        assert g.num_sets == 512 * 14

    def test_transfer_roughly_doubles(self):
        # Section 6.7: two TADs stream ~2x the burst (9-10 beats).
        g = AlloyGeometry(1 * MB, ways=2)
        for set_index in range(14):
            t = g.transfer_for_set(set_index)
            assert t.bus_beats in (9, 10)
            assert t.useful_bytes == 144

    def test_capacity_unchanged(self):
        one = AlloyGeometry(1 * MB, ways=1)
        two = AlloyGeometry(1 * MB, ways=2)
        assert one.data_capacity_bytes == two.data_capacity_bytes
