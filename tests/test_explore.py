"""Tests for the design-space exploration engine (repro.explore)."""

import json

import pytest

from repro.explore import (
    ConfigPoint,
    ExploreSpace,
    PointMetrics,
    dominates,
    explore,
    pareto_front,
    select_survivors,
)
from repro.jobs import list_jobs
from repro.sim.config import SystemConfig
from repro.sim.parallel import ResultCache
from repro.units import MB


def metric(label, latency, hit=0.5, bus=0.5, ed2=1.0):
    return PointMetrics(
        point=ConfigPoint(design=label),
        reads_per_core=100,
        round_index=0,
        latency=latency,
        hit_rate=hit,
        bandwidth=bus,
        ed2=ed2,
        cycles=1000.0,
    )


def tiny_space() -> ExploreSpace:
    return ExploreSpace(
        designs=("alloy-map-i", "lh-cache", "sram-tag"),
        benchmarks=("sphinx_r",),
        page_policies=("open",),
        line_bursts=(4,),
        cache_mbs=(128,),
        timings=("paper", "fast"),
        capacity_scales=(4096,),
    )


class TestSpace:
    def test_default_space_exceeds_200_cells(self):
        space = ExploreSpace()
        assert space.num_points == len(space.points())
        assert space.num_cells >= 200

    def test_point_config_applies_every_axis(self):
        point = ConfigPoint(
            design="alloy-map-i",
            page_policy="closed",
            line_burst=8,
            cache_mb=128,
            timing="fast",
            capacity_scale=512,
        )
        config = point.config(SystemConfig())
        assert config.stacked_page_policy == "closed"
        assert config.cache_size_bytes == 128 * MB
        assert config.capacity_scale == 512
        assert config.stacked.line_burst == 8
        assert config.stacked.t_act == 12

    def test_unknown_timing_rejected(self):
        with pytest.raises(ValueError, match="unknown timing"):
            ExploreSpace(timings=("warp",))

    def test_points_are_deterministic(self):
        assert tiny_space().points() == tiny_space().points()


class TestPareto:
    def test_dominates_requires_strictness(self):
        a, b = metric("a", 100.0), metric("b", 100.0)
        assert not dominates(a, b) and not dominates(b, a)
        assert dominates(metric("c", 90.0), b)

    def test_front_keeps_tradeoffs(self):
        fast_low_hit = metric("a", 90.0, hit=0.3)
        slow_high_hit = metric("b", 110.0, hit=0.9)
        dominated = metric("c", 120.0, hit=0.2)
        front = pareto_front([fast_low_hit, slow_high_hit, dominated])
        assert [m.point.design for m in front] == ["a", "b"]

    def test_front_of_identical_points_keeps_all(self):
        ms = [metric("a", 100.0), metric("b", 100.0)]
        assert len(pareto_front(ms)) == 2

    def test_survivors_prefer_frontier_then_rank(self):
        ms = [
            metric("worst", 130.0, hit=0.1),
            metric("best", 90.0, hit=0.9),
            metric("mid", 100.0, hit=0.5),
        ]
        picked = select_survivors(ms, 2)
        assert [m.point.design for m in picked] == ["best", "mid"]

    def test_survivors_deterministic_under_ties(self):
        ms = [metric("b", 100.0), metric("a", 100.0)]
        assert [
            m.point.design for m in select_survivors(ms, 1)
        ] == ["a"]  # label tie-break


class TestExploreStrategies:
    def test_halving_checkpoints_rounds_and_reports_frontier(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        report = explore(
            tiny_space(),
            "halving",
            name="t",
            reads_per_core=150,
            eta=2,
            keep=2,
            cache=ResultCache(tmp_path, persist=True),
        )
        assert len(report.rounds) >= 2
        assert report.rounds[0].points == 6
        assert report.rounds[-1].points <= 2
        # Fidelity grows by eta each round.
        assert report.rounds[1].reads_per_core == 300
        assert report.frontier and len(report.frontier) <= len(
            report.evaluated
        )
        assert report.killed  # dominated configs were culled
        # Every round landed as a checkpointed job on disk.
        names = {info.name for info in list_jobs(tmp_path)}
        assert {f"t-r{r.index}" for r in report.rounds} <= names

    def test_halving_resumes_from_journals(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        kwargs = dict(
            name="t",
            reads_per_core=150,
            eta=2,
            keep=2,
            cache=ResultCache(tmp_path, persist=True),
        )
        first = explore(tiny_space(), "halving", **kwargs)
        again = explore(tiny_space(), "halving", **kwargs)
        # Identical arguments -> identical jobs -> pure journal replay.
        assert all(r.cache_hits == r.cells for r in again.rounds)
        assert [m.point.label for m in again.frontier] == [
            m.point.label for m in first.frontier
        ]
        for a, b in zip(first.evaluated, again.evaluated):
            assert a.latency == b.latency and a.ed2 == b.ed2

    def test_grid_and_random_single_round(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(tmp_path, persist=True)
        grid = explore(
            tiny_space(), "grid", name="g", reads_per_core=150, cache=cache
        )
        assert len(grid.rounds) == 1
        assert len(grid.evaluated) == 6
        sampled = explore(
            tiny_space(),
            "random",
            name="s",
            reads_per_core=150,
            samples=3,
            cache=cache,
        )
        assert len(sampled.evaluated) == 3
        assert sampled.frontier

    def test_max_rounds_caps_halving(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        report = explore(
            tiny_space(),
            "halving",
            name="cap",
            reads_per_core=150,
            eta=2,
            keep=1,
            max_rounds=1,
            cache=ResultCache(tmp_path, persist=True),
        )
        assert len(report.rounds) == 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            explore(tiny_space(), "genetic")

    def test_payload_and_render(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        report = explore(
            tiny_space(),
            "grid",
            name="p",
            reads_per_core=150,
            cache=ResultCache(tmp_path, persist=True),
        )
        payload = report.to_payload()
        json.dumps(payload)  # JSON-safe
        assert payload["kind"] == "repro-explore"
        assert payload["frontier"]
        assert all(
            set(("point", "latency", "hit_rate", "bandwidth", "ed2"))
            <= set(m)
            for m in payload["frontier"]
        )
        text = report.render()
        assert "Pareto frontier" in text
        assert report.frontier[0].point.label in text
