"""Tests for DRAM timing presets (paper Table 2 / Section 2.4)."""

import pytest

from repro.dram.timings import DramTimings, OFFCHIP_DDR3, STACKED_DRAM


class TestOffchipPreset:
    def test_paper_latencies(self):
        assert OFFCHIP_DDR3.t_act == 36
        assert OFFCHIP_DDR3.t_cas == 36
        assert OFFCHIP_DDR3.line_burst == 16

    def test_geometry(self):
        assert OFFCHIP_DDR3.channels == 2
        assert OFFCHIP_DDR3.banks_per_channel == 8
        assert OFFCHIP_DDR3.row_bytes == 2048

    def test_isolated_access_latencies_match_fig3(self):
        # Type X (row-buffer hit): 52 cycles; type Y (activate): 88 cycles.
        assert OFFCHIP_DDR3.line_access_latency(row_hit=True) == 52
        assert OFFCHIP_DDR3.line_access_latency(row_hit=False) == 88


class TestStackedPreset:
    def test_paper_latencies(self):
        assert STACKED_DRAM.t_act == 18
        assert STACKED_DRAM.t_cas == 18
        assert STACKED_DRAM.line_burst == 4

    def test_geometry(self):
        assert STACKED_DRAM.channels == 4
        assert STACKED_DRAM.bus_bytes == 16

    def test_isolated_access_latencies_match_fig3(self):
        # IDEAL-LO hit: X = 22 cycles, Y = 40 cycles.
        assert STACKED_DRAM.line_access_latency(row_hit=True) == 22
        assert STACKED_DRAM.line_access_latency(row_hit=False) == 40


class TestBurstMath:
    def test_full_line(self):
        assert STACKED_DRAM.burst_cycles(64) == 4
        assert OFFCHIP_DDR3.burst_cycles(64) == 16

    def test_tad_is_five_beats(self):
        # 72 B TAD over a 16 B bus -> 80 B -> 5 beats (Section 4.1).
        assert STACKED_DRAM.burst_cycles(72) == 5
        assert STACKED_DRAM.burst_cycles(80) == 5

    def test_partial_beat_rounds_up(self):
        assert STACKED_DRAM.burst_cycles(1) == 1
        assert STACKED_DRAM.burst_cycles(17) == 2

    def test_row_latencies(self):
        assert STACKED_DRAM.row_hit_latency == 18
        assert STACKED_DRAM.row_miss_latency == 36


class TestScaled:
    def test_override(self):
        slow = STACKED_DRAM.scaled(t_cas=99)
        assert slow.t_cas == 99
        assert slow.t_act == STACKED_DRAM.t_act

    def test_original_unchanged(self):
        STACKED_DRAM.scaled(t_act=1)
        assert STACKED_DRAM.t_act == 18

    def test_frozen(self):
        with pytest.raises(Exception):
            STACKED_DRAM.t_cas = 5  # type: ignore[misc]

    def test_custom_timings(self):
        t = DramTimings(
            name="t", t_act=10, t_cas=5, t_rp=2, line_burst=8,
            bus_bytes=8, channels=1, banks_per_channel=2, row_bytes=1024,
        )
        assert t.line_access_latency(row_hit=False) == 23
