"""Tests: Figure 3 latency breakdowns must be cycle-exact vs the paper."""

import pytest

from repro.analysis.latency import (
    alloy_latency,
    baseline_latency,
    fig3_table,
    ideal_lo_latency,
    lh_cache_latency,
    measured_breakdown,
    sram_tag_latency,
)
from repro.lifecycle import STAGES


class TestPaperNumbers:
    """Every total asserted here is stated in the paper's Section 2.4."""

    def test_baseline(self):
        assert baseline_latency("X").total == 52
        assert baseline_latency("Y").total == 88

    def test_sram_tag_hit_is_64(self):
        assert sram_tag_latency("X", hit=True).total == 64
        assert sram_tag_latency("Y", hit=True).total == 64

    def test_sram_tag_miss_adds_tsl(self):
        assert sram_tag_latency("X", hit=False).total == 76
        assert sram_tag_latency("Y", hit=False).total == 112

    def test_lh_hit_is_96(self):
        assert lh_cache_latency("X", hit=True).total == 96
        assert lh_cache_latency("Y", hit=True).total == 96

    def test_lh_miss_adds_psl(self):
        assert lh_cache_latency("X", hit=False).total == 76
        assert lh_cache_latency("Y", hit=False).total == 112

    def test_ideal_lo_hits(self):
        assert ideal_lo_latency("X", hit=True).total == 22
        assert ideal_lo_latency("Y", hit=True).total == 40

    def test_ideal_lo_misses_are_free(self):
        assert ideal_lo_latency("X", hit=False).total == 52
        assert ideal_lo_latency("Y", hit=False).total == 88

    def test_alloy_hit_one_beat_over_ideal(self):
        assert alloy_latency("X", hit=True, row_hit=True).total == 23
        assert alloy_latency("Y", hit=True, row_hit=False).total == 41

    def test_alloy_miss_overlapped(self):
        assert alloy_latency("Y", hit=False, row_hit=False).total == 88


class TestStructure:
    def test_segments_sum_to_total(self):
        b = lh_cache_latency("Y", hit=True)
        assert sum(c for _, c in b.segments) == b.total

    def test_lh_hit_includes_missmap_and_tag_stream(self):
        names = [n for n, _ in lh_cache_latency("X", hit=True).segments]
        assert "missmap" in names
        assert "tag-stream" in names

    def test_sram_hit_leads_with_tag_lookup(self):
        segments = sram_tag_latency("X", hit=True).segments
        assert segments[0] == ("sram-tag-lookup", 24)

    def test_alloy_burst8(self):
        assert alloy_latency("Y", hit=True, row_hit=False, burst_beats=8).total == 44

    def test_table_complete(self):
        table = fig3_table()
        designs = {d for d, _, _ in table}
        assert designs == {"baseline", "sram-tag", "lh-cache", "ideal-lo", "alloy"}
        assert len(table) == 18

    def test_lh_hit_exceeds_memory_for_x(self):
        """The paper's central observation: an LH-Cache hit (96) is slower
        than just going to memory for a row-buffer-friendly access (52)."""
        assert lh_cache_latency("X", hit=True).total > baseline_latency("X").total

    def test_sram_hit_also_exceeds_memory_for_x(self):
        assert sram_tag_latency("X", hit=True).total > baseline_latency("X").total

    def test_alloy_hit_beats_memory_for_x(self):
        assert alloy_latency("X", hit=True, row_hit=True).total < baseline_latency("X").total


class TestMeasuredBreakdown:
    """Replaying Figure 3's isolated accesses through the *real* timing
    designs must land on the analytic totals cycle-for-cycle — the analytic
    model and the simulator are two derivations of the same machine."""

    @pytest.fixture(scope="class")
    def measured(self):
        return measured_breakdown()

    def test_same_rows_as_analytic_table(self, measured):
        assert set(measured) == set(fig3_table())

    def test_every_row_matches_analytic_total(self, measured):
        mismatches = {
            key: (row.total, row.analytic_total)
            for key, row in measured.items()
            if not row.matches_analytic
        }
        assert not mismatches

    def test_stages_sum_to_total(self, measured):
        for key, row in measured.items():
            assert sum(row.stages.values()) == pytest.approx(row.total), key

    def test_stages_use_lifecycle_taxonomy(self, measured):
        for row in measured.values():
            assert set(row.stages) <= set(STAGES)

    def test_isolated_accesses_never_queue(self, measured):
        for key, row in measured.items():
            assert row.stages.get("queue", 0.0) == 0.0, key

    def test_sram_tag_hit_decomposition(self, measured):
        row = measured[("sram-tag", "X", "hit")]
        assert row.stages == {"tag": 24.0, "data": 40.0}

    def test_lh_hit_is_mostly_serialization(self, measured):
        """Figure 3's point: of an LH-Cache hit's 96 cycles, only 22 move
        data; the rest is predictor and tag serialization."""
        row = measured[("lh-cache", "Y", "hit")]
        assert row.stages["data"] == 22.0
        assert row.stages["predictor"] + row.stages["tag"] == 74.0

    def test_alloy_hit_is_pure_data(self, measured):
        assert measured[("alloy", "X", "hit")].stages == {"data": 23.0}

    def test_alloy_miss_hides_tag_probe(self, measured):
        """A correctly-predicted Alloy miss overlaps the TAD probe with the
        memory access: the exposed latency is all memory."""
        row = measured[("alloy", "Y", "miss")]
        assert row.stages == {"memory": 88.0}
