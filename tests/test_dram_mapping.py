"""Tests for line-address -> (channel, bank, row) mapping."""

from repro.dram.mapping import AddressMapping, RowLocation

import pytest


@pytest.fixture
def mapping():
    # Off-chip shape: 2 channels, 8 banks, 2 KB rows (32 lines).
    return AddressMapping(channels=2, banks_per_channel=8, row_bytes=2048)


class TestLocate:
    def test_first_row(self, mapping):
        loc = mapping.locate(0)
        assert loc == RowLocation(channel=0, bank=0, row=0)

    def test_lines_within_row_share_location(self, mapping):
        locs = {mapping.locate(i) for i in range(32)}
        assert len(locs) == 1

    def test_next_row_changes_channel(self, mapping):
        assert mapping.locate(32).channel == 1

    def test_channels_then_banks(self, mapping):
        # Third row chunk wraps back to channel 0, bank 1.
        loc = mapping.locate(64)
        assert loc.channel == 0
        assert loc.bank == 1

    def test_row_increments_after_all_banks(self, mapping):
        lines_per_row = 32
        chunk = 2 * 8  # channels * banks chunks before the row id bumps
        loc = mapping.locate(chunk * lines_per_row)
        assert loc.row == 1
        assert loc.bank == 0
        assert loc.channel == 0


class TestSameRow:
    def test_adjacent_lines(self, mapping):
        assert mapping.same_row(0, 31)

    def test_row_boundary(self, mapping):
        assert not mapping.same_row(31, 32)

    def test_far_addresses(self, mapping):
        assert not mapping.same_row(0, 10_000)


class TestSequentialLocality:
    def test_stream_mostly_row_hits(self, mapping):
        """A sequential stream revisits each row for 32 consecutive lines —
        the paper's 'type X' behaviour."""
        transitions_same_row = 0
        total = 0
        for i in range(255):
            total += 1
            if mapping.locate(i) == mapping.locate(i + 1):
                transitions_same_row += 1
        assert transitions_same_row / total > 0.9


class TestValidation:
    def test_row_must_hold_whole_lines(self):
        with pytest.raises(ValueError):
            AddressMapping(1, 1, row_bytes=100)
