"""Tests for SystemConfig scaling rules and the public API surface."""

import pytest

import repro
from repro.sim.config import SystemConfig
from repro.sim.results import SimResult
from repro.units import GB, MB


class TestSystemConfig:
    def test_paper_defaults(self):
        config = SystemConfig()
        assert config.num_cores == 8
        assert config.l3_latency == 24
        assert config.sram_tag_latency == 24
        assert config.missmap_latency == 24
        assert config.predictor_latency == 1
        assert config.cache_size_bytes == 256 * MB

    def test_scaled_cache_bytes(self):
        config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=256)
        assert config.scaled_cache_bytes == 1 * MB

    def test_scaled_cache_is_whole_rows(self):
        config = SystemConfig(cache_size_bytes=100 * 2048 * 256 + 999, capacity_scale=256)
        assert config.scaled_cache_bytes % 2048 == 0

    def test_scaled_cache_never_below_one_row(self):
        config = SystemConfig(cache_size_bytes=1024, capacity_scale=4096)
        assert config.scaled_cache_bytes == 2048

    def test_with_cache_size(self):
        config = SystemConfig().with_cache_size(1 * GB)
        assert config.cache_size_bytes == 1 * GB
        assert SystemConfig().cache_size_bytes == 256 * MB  # original frozen

    def test_with_scale(self):
        assert SystemConfig().with_scale(64).capacity_scale == 64

    def test_frozen(self):
        with pytest.raises(Exception):
            SystemConfig().num_cores = 4  # type: ignore[misc]


class TestSimResult:
    def make(self, cycles=1000.0, instructions=4000):
        return SimResult(
            workload="w", design="d", cycles=cycles, instructions=instructions
        )

    def test_ipc(self):
        assert self.make().ipc == pytest.approx(4.0)

    def test_ipc_zero_cycles(self):
        assert self.make(cycles=0.0).ipc == 0.0

    def test_speedup_vs_zero_cycles_is_zero(self):
        # Degenerate runs yield 0.0 (aggregators then name the bad value)
        # instead of raising mid-sweep.
        assert self.make(cycles=0.0).speedup_vs(self.make()) == 0.0
        assert self.make().speedup_vs(self.make(cycles=0.0)) == 0.0

    def test_scenario_fractions_empty(self):
        assert self.make().scenario_fractions() == {}


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_design_names_cover_paper(self):
        for required in (
            "no-cache",
            "sram-tag",
            "lh-cache",
            "alloy-map-i",
            "ideal-lo",
        ):
            assert required in repro.DESIGN_NAMES

    def test_benchmark_catalogs(self):
        assert len(repro.PRIMARY_BENCHMARKS) == 10
        assert len(repro.SECONDARY_BENCHMARKS) == 14
        assert set(repro.PRIMARY_BENCHMARKS) <= set(repro.ALL_BENCHMARKS)

    def test_version(self):
        assert repro.__version__

    def test_make_predictor_reexported(self):
        predictor = repro.make_predictor("map-g", 4)
        assert predictor.num_cores == 4

    def test_alloy_cache_reexported(self):
        cache = repro.AlloyCache(1 * MB)
        assert cache.num_sets == 512 * 28
