"""Tests for the Section 5.6 energy model and Section 6.1 overhead analysis."""

import pytest

from repro.analysis.overheads import (
    MAP_I_BYTES_PER_CORE,
    map_overhead,
    missmap_overhead_dense,
    missmap_overhead_sparse,
    overhead_table,
    sram_tag_overhead,
)
from repro.dram.device import DramDevice
from repro.dram.energy import (
    OFFCHIP_ENERGY,
    STACKED_ENERGY,
    EnergyParams,
    device_energy,
    system_energy,
)
from repro.dram.mapping import RowLocation
from repro.dram.timings import OFFCHIP_DDR3, STACKED_DRAM
from repro.units import GB, MB


class TestEnergyParams:
    def test_access_energy_components(self):
        params = EnergyParams(activate_nj=10.0, transfer_pj_per_bit=5.0)
        # 2 activations + 64 bytes: 20 nJ + 64*8*5/1000 = 22.56 nJ.
        assert params.access_energy_nj(2, 64) == pytest.approx(22.56)

    def test_stacked_io_much_cheaper_per_bit(self):
        assert STACKED_ENERGY.transfer_pj_per_bit < OFFCHIP_ENERGY.transfer_pj_per_bit / 3


class TestDeviceEnergy:
    def test_counts_track_accesses(self):
        device = DramDevice(OFFCHIP_DDR3)
        loc = RowLocation(0, 0, 0)
        device.access(0.0, loc)          # activation + 64 B
        device.access(1000.0, loc)       # row hit + 64 B
        breakdown = device_energy(device, OFFCHIP_ENERGY)
        assert breakdown.activations == 1
        assert breakdown.bytes_on_bus == 128
        assert breakdown.activation_nj == pytest.approx(22.0)
        assert breakdown.total_nj > breakdown.activation_nj

    def test_tad_burst_bytes(self):
        device = DramDevice(STACKED_DRAM)
        device.access(0.0, RowLocation(0, 0, 0), burst_cycles=5)  # 80 B TAD
        breakdown = device_energy(device, STACKED_ENERGY)
        assert breakdown.bytes_on_bus == 80

    def test_idle_device_zero_energy(self):
        device = DramDevice(STACKED_DRAM)
        assert device_energy(device, STACKED_ENERGY).total_nj == 0.0

    def test_system_energy_keys(self):
        memory = DramDevice(OFFCHIP_DDR3, name="memory")
        stacked = DramDevice(STACKED_DRAM, name="stacked")
        memory.access(0.0, RowLocation(0, 0, 0))
        out = system_energy(memory, stacked)
        assert out["memory"].total_nj > 0
        assert out["stacked"].total_nj == 0


class TestEnergyInResults:
    def test_simulation_reports_energy(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_benchmark

        config = SystemConfig(capacity_scale=2048)
        result = run_benchmark("alloy-map-i", "sphinx_r", config, reads_per_core=300)
        assert result.memory_energy_nj > 0
        assert result.stacked_energy_nj > 0
        assert result.total_dram_energy_nj == pytest.approx(
            result.memory_energy_nj + result.stacked_energy_nj
        )
        assert result.energy_per_instruction_nj() > 0

    def test_pam_uses_more_memory_energy_than_perfect(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_benchmark

        config = SystemConfig(capacity_scale=2048)
        pam = run_benchmark("alloy-pam", "sphinx_r", config, reads_per_core=600)
        perfect = run_benchmark(
            "alloy-perfect", "sphinx_r", config, reads_per_core=600
        )
        assert pam.memory_energy_nj > 1.3 * perfect.memory_energy_nj


class TestOverheads:
    def test_sram_matches_paper_progression(self):
        """Section 6.1: 6/12/24/48/96 MB for 64 MB..1 GB."""
        assert sram_tag_overhead(64 * MB) == 6 * MB
        assert sram_tag_overhead(128 * MB) == 12 * MB
        assert sram_tag_overhead(256 * MB) == 24 * MB
        assert sram_tag_overhead(512 * MB) == 48 * MB
        assert sram_tag_overhead(1 * GB) == 96 * MB

    def test_map_overhead_under_1kb(self):
        assert MAP_I_BYTES_PER_CORE == 96
        assert map_overhead(8) == 768

    def test_missmap_bounds_ordering(self):
        for size in (64 * MB, 256 * MB, 1 * GB):
            dense = missmap_overhead_dense(size)
            sparse = missmap_overhead_sparse(size)
            assert 0 < dense < sparse

    def test_missmap_megabyte_regime(self):
        # Section 2.2: "multi-megabyte storage overhead".
        assert missmap_overhead_sparse(256 * MB) > 10 * MB
        assert missmap_overhead_dense(1 * GB) > 3 * MB

    def test_table_scales_linearly(self):
        rows = overhead_table()
        assert len(rows) == 5
        assert rows[-1].sram_tag_bytes == 16 * rows[0].sram_tag_bytes
        # MAP-I does not grow with cache size.
        assert rows[0].map_i_bytes == rows[-1].map_i_bytes

    def test_overheads_experiment(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("overheads")
        row = result.row_by_key("256MB")
        assert row[1] == "24MB"
        assert row[-1] == "768B"
