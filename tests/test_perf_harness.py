"""Tests for the ``repro bench`` perf harness and the golden scorecard.

The harness itself must be trustworthy before its numbers gate CI: grid
cell ids are the cross-run join keys, payloads are schema-versioned, and
the comparison must normalize away host speed rather than code speed.
"""

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    DEFAULT_BENCHMARKS,
    DEFAULT_DESIGNS,
    QUICK_BENCHMARKS,
    QUICK_DESIGNS,
    BenchCell,
    BenchRun,
    compare,
    latest_bench_file,
    load_bench,
    make_bench_grid,
    time_cell,
    write_bench,
)
from repro.perf.golden import (
    canonical_dumps,
    diff_payloads,
    golden_grid,
)


class TestGridConstruction:
    def test_cross_product(self):
        cells = make_bench_grid(["a", "b"], ["x", "y", "z"], reads_per_core=100)
        assert len(cells) == 6
        assert {(c.design, c.benchmark) for c in cells} == {
            (d, b) for d in ("a", "b") for b in ("x", "y", "z")
        }
        assert all(c.reads_per_core == 100 for c in cells)

    def test_cell_id_pins_every_parameter(self):
        cell = BenchCell("alloy-map-i", "mcf_r", 2000, 0.25, 1)
        assert cell.cell_id == "alloy-map-i/mcf_r/r2000/w0.25/s1"

    def test_quick_grid_is_subset_of_full_grid(self):
        # CI compares a --quick run against the committed full baseline,
        # so every quick cell id must also appear in the full grid.
        full = {c.cell_id for c in make_bench_grid(DEFAULT_DESIGNS, DEFAULT_BENCHMARKS)}
        quick = {c.cell_id for c in make_bench_grid(QUICK_DESIGNS, QUICK_BENCHMARKS)}
        assert quick <= full
        assert quick  # non-empty

    def test_golden_grid_has_unique_cell_ids(self):
        cells = golden_grid()
        ids = [c.cell_id for c in cells]
        assert len(ids) == len(set(ids))
        assert any(c.design == "lh-cache" for c in cells)
        assert any(c.design == "alloy-map-i" for c in cells)


class TestTimeCell:
    def test_determinism_and_telemetry(self):
        cell = BenchCell("no-cache", "mcf_r", reads_per_core=200)
        timing = time_cell(cell, repeats=2, discard=1)
        # time_cell raises BenchDeterminismError internally if any repeat's
        # SimResult differs, so reaching here proves 3 identical runs.
        assert len(timing.wall_seconds) == 2
        assert len(timing.discarded_seconds) == 1
        assert timing.heap_events > 0
        assert timing.events_per_sec > 0
        assert min(timing.wall_seconds) <= timing.wall_median <= max(timing.wall_seconds)

    def test_rejects_bad_repeat_counts(self):
        cell = BenchCell("no-cache", "mcf_r", reads_per_core=50)
        with pytest.raises(ValueError):
            time_cell(cell, repeats=0)
        with pytest.raises(ValueError):
            time_cell(cell, repeats=1, discard=-1)


class TestPayloadRoundTrip:
    def _run(self):
        cell = BenchCell("no-cache", "mcf_r", reads_per_core=200)
        timing = time_cell(cell, repeats=1, discard=0)
        return BenchRun(
            timings=[timing],
            repeats=1,
            discard=0,
            calibration_ops_per_sec=1e6,
            elapsed_seconds=timing.wall_seconds[0],
        )

    def test_schema_round_trip(self, tmp_path):
        payload = self._run().to_payload(label="unit-test")
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["kind"] == "repro-bench"
        assert payload["label"] == "unit-test"
        path = tmp_path / "BENCH_test.json"
        write_bench(payload, path)
        loaded = load_bench(path)
        assert loaded == payload
        (cell_id,) = loaded["cells"]
        cell = loaded["cells"][cell_id]
        assert cell["design"] == "no-cache"
        assert cell["heap_events"] > 0
        assert cell["events_per_sec"] > 0

    def test_load_rejects_foreign_payloads(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_load_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"kind": "repro-bench", "schema": BENCH_SCHEMA + 1})
        )
        with pytest.raises(ValueError):
            load_bench(path)


def _payload(cells, calibration=1000.0):
    return {
        "kind": "repro-bench",
        "schema": BENCH_SCHEMA,
        "calibration_ops_per_sec": calibration,
        "cells": {
            cell_id: {"events_per_sec": eps} for cell_id, eps in cells.items()
        },
    }


class TestCompare:
    def test_pass_within_band(self):
        summary = compare(
            _payload({"a": 95.0}), _payload({"a": 100.0}), tolerance=0.30
        )
        assert summary["verdict"] == "pass"
        assert summary["regressions"] == []

    def test_regression_beyond_band_fails(self):
        summary = compare(
            _payload({"a": 60.0}), _payload({"a": 100.0}), tolerance=0.30
        )
        assert summary["verdict"] == "fail"
        assert summary["regressions"] == ["a"]

    def test_improvement_flagged_but_passes(self):
        summary = compare(
            _payload({"a": 200.0}), _payload({"a": 100.0}), tolerance=0.30
        )
        assert summary["verdict"] == "pass"
        assert summary["improvements"] == ["a"]

    def test_host_calibration_normalizes_machine_speed(self):
        # Current host is 2x faster than the baseline host; 2x raw ev/s is
        # therefore *flat*, not an improvement — and 1x raw is a regression.
        flat = compare(
            _payload({"a": 200.0}, calibration=2000.0),
            _payload({"a": 100.0}, calibration=1000.0),
            tolerance=0.30,
        )
        assert flat["cells"]["a"]["speedup"] == pytest.approx(1.0)
        assert flat["verdict"] == "pass"
        slow = compare(
            _payload({"a": 100.0}, calibration=2000.0),
            _payload({"a": 100.0}, calibration=1000.0),
            tolerance=0.30,
        )
        assert slow["verdict"] == "fail"

    def test_disjoint_cells_is_empty_verdict(self):
        summary = compare(_payload({"a": 1.0}), _payload({"b": 1.0}))
        assert summary["verdict"] == "empty"
        assert summary["shared_cells"] == 0


class TestGoldenHelpers:
    def test_canonical_dumps_is_byte_stable(self):
        a = canonical_dumps({"b": 1, "a": [1.5, {"z": 2, "y": 3}]})
        b = canonical_dumps({"a": [1.5, {"y": 3, "z": 2}], "b": 1})
        assert a == b
        assert a.endswith("\n")

    def test_diff_payloads_pinpoints_field(self):
        golden = {"grid": {"cell": {"cycles": 100, "hits": 5}}}
        current = {"grid": {"cell": {"cycles": 101, "hits": 5}}}
        diffs = diff_payloads(current, golden)
        assert len(diffs) == 1
        assert "cycles" in diffs[0]
        assert diff_payloads(golden, golden) == []

    def test_diff_payloads_reports_missing_keys(self):
        diffs = diff_payloads({"a": 1}, {"a": 1, "b": 2})
        assert diffs == ["$.b: missing from current run"]
        diffs = diff_payloads({"a": 1, "c": 3}, {"a": 1})
        assert diffs == ["$.c: not in golden file"]


class TestLatestBenchFile:
    def test_none_when_empty(self, tmp_path):
        assert latest_bench_file(tmp_path) is None

    def test_picks_newest_by_parsed_date(self, tmp_path):
        (tmp_path / "BENCH_2025-12-31.json").write_text("{}")
        (tmp_path / "BENCH_2026-01-02.json").write_text("{}")
        (tmp_path / "BENCH_2026-01-02T18-00.json").write_text("{}")
        # Datetime-stamped payloads are accepted alongside plain dates.
        assert (
            latest_bench_file(tmp_path).name
            == "BENCH_2026-01-02T18-00.json"
        )

    def test_unparseable_name_lists_candidates(self, tmp_path):
        (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
        (tmp_path / "BENCH_oops.json").write_text("{}")
        with pytest.raises(ValueError) as err:
            latest_bench_file(tmp_path)
        message = str(err.value)
        assert "BENCH_oops.json" in message
        assert "BENCH_2026-01-01.json" in message
        assert "--baseline" in message

    def test_tie_for_newest_is_an_error(self, tmp_path):
        # A date and the same date's midnight parse to the same instant.
        (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
        (tmp_path / "BENCH_2026-01-01T00-00.json").write_text("{}")
        with pytest.raises(ValueError, match="tie for newest"):
            latest_bench_file(tmp_path)
