"""Tests for the experiment registry and the analytic experiments.

Simulation-backed experiments are exercised end-to-end by the integration
suite and the benchmarks; here we verify the registry plumbing and run the
cheap analytic experiments completely.
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "fig1", "fig3", "fig4", "fig6", "fig8", "fig9", "fig10", "fig11",
            "table1", "table3", "table4", "table5", "table6", "table7",
            "burst8", "twoway", "psl-sweep", "mact-sweep", "lh-replacement",
            "mlp-sweep", "victim-cache", "page-policy", "energy",
            "overheads", "scorecard",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG1") is EXPERIMENTS["fig1"]

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig4"):
            get_experiment("fig99")


class TestAnalyticExperiments:
    def test_fig1(self):
        result = run_experiment("fig1")
        assert result.experiment_id == "fig1"
        fast = result.row_by_key("fast")
        slow = result.row_by_key("slow")
        assert fast[-1] == "True"  # A helps the fast cache
        assert slow[-1] == "False"  # A hurts the slow cache

    def test_fig3_matches_paper_column(self):
        result = run_experiment("fig3")
        for row in result.rows:
            design, access, event, cycles, paper = row
            if paper != "-":
                assert cycles == paper, (design, access, event)

    def test_table4(self):
        result = run_experiment("table4")
        alloy = result.row_by_key("alloy-cache")
        assert alloy[3] == pytest.approx(6.4)

    def test_quick_flag_accepted(self):
        assert run_experiment("fig1", quick=True).rows


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table7" in out

    def test_unknown_experiment_exit_code(self, capsys):
        from repro.cli import main

        assert main(["figZZ"]) == 2

    def test_run_analytic(self, capsys):
        from repro.cli import main

        assert main(["fig1"]) == 0
        assert "fig1" in capsys.readouterr().out
