"""Tests for the break-even hit-rate model (Figure 1)."""

import pytest

from repro.analysis.behr import (
    average_latency,
    behr_curve,
    break_even_hit_rate,
    fig1_example,
)


class TestAverageLatency:
    def test_zero_hit_rate_is_memory(self):
        assert average_latency(0.0, 0.1) == 1.0

    def test_full_hit_rate_is_cache(self):
        assert average_latency(1.0, 0.1) == pytest.approx(0.1)

    def test_linear_between(self):
        assert average_latency(0.5, 0.1) == pytest.approx(0.55)

    def test_rejects_invalid_hit_rate(self):
        with pytest.raises(ValueError):
            average_latency(1.5, 0.1)


class TestBreakEven:
    def test_paper_fast_cache(self):
        """50% base hit rate, 0.1 -> 0.14 hit latency: BEHR ~52%."""
        assert break_even_hit_rate(0.5, 0.1, 0.14) == pytest.approx(0.523, abs=0.001)

    def test_paper_slow_cache(self):
        """Same optimization on a 0.5-latency cache: BEHR ~83%."""
        assert break_even_hit_rate(0.5, 0.5, 0.7) == pytest.approx(0.833, abs=0.001)

    def test_paper_60pct_base_needs_100pct(self):
        assert break_even_hit_rate(0.6, 0.5, 0.7) == pytest.approx(1.0)

    def test_can_exceed_one(self):
        # A high-enough base hit rate makes the optimization impossible.
        assert break_even_hit_rate(0.8, 0.5, 0.7) > 1.0

    def test_rejects_hit_slower_than_memory(self):
        with pytest.raises(ValueError):
            break_even_hit_rate(0.5, 0.5, 1.0)


class TestCurve:
    def test_monotone_increasing(self):
        curve = behr_curve(0.5, 0.7)
        behrs = [b for _, b in curve]
        assert behrs == sorted(behrs)

    def test_endpoints(self):
        curve = behr_curve(0.5, 0.7, points=11)
        assert curve[0][0] == 0.0
        assert curve[-1][0] == 1.0

    def test_slow_cache_curve_above_fast(self):
        fast = dict(behr_curve(0.1, 0.14, points=11))
        slow = dict(behr_curve(0.5, 0.7, points=11))
        for h in (0.3, 0.5, 0.7):
            assert slow[h] > fast[h]


class TestFig1Example:
    def test_paper_numbers(self):
        ex = fig1_example()
        assert ex["fast_base_avg"] == pytest.approx(0.55)
        assert ex["fast_with_A_avg"] == pytest.approx(0.398, abs=0.002)
        assert ex["slow_base_avg"] == pytest.approx(0.75)
        assert ex["slow_with_A_avg"] == pytest.approx(0.79)
        assert ex["slow_behr_at_60pct_base"] == pytest.approx(1.0)

    def test_conclusion_flips_with_latency(self):
        ex = fig1_example()
        assert ex["fast_with_A_avg"] < ex["fast_base_avg"]  # A wins on fast
        assert ex["slow_with_A_avg"] > ex["slow_base_avg"]  # A loses on slow
