"""Tests for the extension experiments (quick mode)."""

import pytest

from repro.experiments.extensions import (
    run_lh_replacement,
    run_mact_sweep,
    run_psl_sweep,
)


class TestPslSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_psl_sweep(quick=True)

    def test_has_zero_and_paper_points(self, result):
        psls = result.column("psl_cycles")
        assert 0 in psls and 24 in psls

    def test_latency_grows_with_psl(self, result):
        latencies = result.column("hit_latency")
        assert latencies == sorted(latencies)

    def test_performance_shrinks_with_psl(self, result):
        improvements = result.column("improvement_pct")
        assert improvements[0] > improvements[-1]


class TestMactSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mact_sweep(quick=True)

    def test_storage_column(self, result):
        by_entries = {row[0]: row[1] for row in result.rows}
        assert by_entries[256] == 96.0  # the paper's 96 bytes per core

    def test_bigger_tables_never_less_accurate(self, result):
        accuracy = result.column("accuracy_pct")
        assert accuracy[-1] >= accuracy[0] - 0.5


class TestLhReplacement:
    @pytest.fixture(scope="class")
    def result(self):
        return run_lh_replacement(quick=True)

    def test_all_policies_present(self, result):
        assert result.column("policy") == ["dip", "lru", "nru", "random"]

    def test_random_has_lowest_hit_latency(self, result):
        latencies = {row[0]: row[3] for row in result.rows}
        assert latencies["random"] == min(latencies.values())
