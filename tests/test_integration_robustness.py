"""Robustness checks: conclusions must not hinge on one RNG seed."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import run_design
from repro.workloads.spec import build_workload

BENCHMARKS = ("mcf_r", "sphinx_r")
SEEDS = (1, 7)
READS = 2000


@pytest.fixture(scope="module")
def per_seed():
    config = SystemConfig()
    out = {}
    for seed in SEEDS:
        for benchmark in BENCHMARKS:
            workload = build_workload(
                benchmark,
                num_cores=config.num_cores,
                reads_per_core=READS,
                capacity_scale=config.capacity_scale,
                seed=seed,
            )
            base = run_design("no-cache", workload, config)
            for design in ("sram-tag", "alloy-map-i", "lh-cache"):
                result = run_design(design, workload, config)
                out[(seed, benchmark, design)] = (
                    result.speedup_vs(base),
                    result,
                )
    return out


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_alloy_beats_lh_every_seed(self, per_seed, seed):
        for benchmark in BENCHMARKS:
            alloy = per_seed[(seed, benchmark, "alloy-map-i")][0]
            lh = per_seed[(seed, benchmark, "lh-cache")][0]
            assert alloy > lh, (seed, benchmark)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_latency_ordering_every_seed(self, per_seed, seed):
        for benchmark in BENCHMARKS:
            alloy = per_seed[(seed, benchmark, "alloy-map-i")][1].avg_hit_latency
            sram = per_seed[(seed, benchmark, "sram-tag")][1].avg_hit_latency
            lh = per_seed[(seed, benchmark, "lh-cache")][1].avg_hit_latency
            assert alloy < sram < lh, (seed, benchmark)

    def test_speedups_stable_across_seeds(self, per_seed):
        """Same benchmark, different seed: speedups agree within ~15%."""
        for benchmark in BENCHMARKS:
            for design in ("sram-tag", "alloy-map-i"):
                a = per_seed[(SEEDS[0], benchmark, design)][0]
                b = per_seed[(SEEDS[1], benchmark, design)][0]
                assert abs(a - b) / a < 0.15, (benchmark, design, a, b)

    def test_hit_rates_stable_across_seeds(self, per_seed):
        for benchmark in BENCHMARKS:
            a = per_seed[(SEEDS[0], benchmark, "alloy-map-i")][1].read_hit_rate
            b = per_seed[(SEEDS[1], benchmark, "alloy-map-i")][1].read_hit_rate
            assert abs(a - b) < 0.08, (benchmark, a, b)
