"""Property-based tests for trace generation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import MB
from repro.workloads.patterns import Component, PatternConfig, generate_core_trace

kinds = st.sampled_from(["sequential", "hot", "zipf", "pointer"])


@st.composite
def pattern_configs(draw):
    n_components = draw(st.integers(1, 4))
    components = tuple(
        Component(
            kind=draw(kinds),
            weight=draw(st.floats(0.1, 1.0)),
            region_bytes=draw(st.integers(1, 64)) * MB,
            run_length=draw(st.integers(1, 64)),
            zipf_alpha=draw(st.floats(1.05, 1.8)),
            pc_pool=draw(st.integers(1, 16)),
        )
        for _ in range(n_components)
    )
    return PatternConfig(
        name="prop",
        mpki=draw(st.floats(1.0, 60.0)),
        components=components,
        write_fraction=draw(st.floats(0.0, 0.4)),
        gap_mean_cycles=draw(st.floats(1.0, 200.0)),
    )


class TestGeneratorProperties:
    @given(cfg=pattern_configs(), n=st.integers(1, 400), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants(self, cfg, n, seed):
        trace = generate_core_trace(cfg, n, seed=seed)
        assert trace.num_reads == n
        assert len(trace) >= n
        assert (trace.gaps >= 0).all()
        assert (trace.addresses >= 0).all()
        assert trace.instructions > 0

    @given(cfg=pattern_configs(), n=st.integers(1, 300), seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_addresses_within_total_region(self, cfg, n, seed):
        trace = generate_core_trace(cfg, n, seed=seed, capacity_scale=256)
        total_lines = sum(
            max(c.region_bytes // 256 // 64, 1) for c in cfg.components
        )
        assert int(trace.addresses.max()) < total_lines

    @given(cfg=pattern_configs(), n=st.integers(10, 300), seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_base_line_pure_shift(self, cfg, n, seed):
        import numpy as np

        a = generate_core_trace(cfg, n, seed=seed, base_line=0)
        b = generate_core_trace(cfg, n, seed=seed, base_line=12345)
        assert np.array_equal(a.addresses + 12345, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)

    @given(cfg=pattern_configs(), n=st.integers(50, 300), seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_writes_follow_reads(self, cfg, n, seed):
        trace = generate_core_trace(cfg, n, seed=seed)
        reads = set(trace.addresses[~trace.is_write].tolist())
        writes = set(trace.addresses[trace.is_write].tolist())
        assert writes <= reads
