"""Tests for repro.units: constants and size helpers."""

import pytest

from repro import units


class TestConstants:
    def test_line_size(self):
        assert units.LINE_SIZE == 64

    def test_row_holds_32_lines(self):
        assert units.LINES_PER_ROW == 32

    def test_tad_is_72_bytes(self):
        assert units.TAD_SIZE == 72
        assert units.TAD_SIZE == units.LINE_SIZE + units.TAG_ENTRY_SIZE

    def test_row_holds_28_tads(self):
        # Section 4.1: 2 KB row = 28 x 72 B TADs with 32 bytes unused.
        assert units.TADS_PER_ROW == 28
        assert units.ROW_BUFFER_SIZE - units.TADS_PER_ROW * units.TAD_SIZE == 32

    def test_lh_geometry(self):
        # Section 2.2: 3 tag lines + 29 data lines fill a 32-line row.
        assert units.LH_WAYS + units.LH_TAG_LINES == units.LINES_PER_ROW

    def test_size_multipliers(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB


class TestHelpers:
    def test_lines(self):
        assert units.lines(units.MB) == 16384

    def test_line_addr(self):
        assert units.line_addr(0) == 0
        assert units.line_addr(63) == 0
        assert units.line_addr(64) == 1
        assert units.line_addr(130) == 2

    @pytest.mark.parametrize(
        "value,expected",
        [
            (256 * units.MB, "256MB"),
            (units.GB, "1GB"),
            (64 * units.KB, "64KB"),
            (100, "100B"),
        ],
    )
    def test_pretty_size(self, value, expected):
        assert units.pretty_size(value) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("256MB", 256 * units.MB),
            ("1GB", units.GB),
            ("64kb", 64 * units.KB),
            (" 2gb ", 2 * units.GB),
            ("1024", 1024),
            ("512B", 512),
        ],
    )
    def test_parse_size(self, text, expected):
        assert units.parse_size(text) == expected

    def test_parse_pretty_roundtrip(self):
        for value in (units.KB, units.MB, 256 * units.MB, units.GB):
            assert units.parse_size(units.pretty_size(value)) == value
