"""Tests for the reproduction scorecard (criterion logic, cheap paths)."""

from repro.experiments.report import ExperimentResult
from repro.experiments.scorecard import (
    CRITERIA,
    _fig4_ordering,
    _gap_shrinks_with_size,
    _hit_latency_ordering,
    _improvement_ladder,
    _twoway_not_worth_it,
)


def fake(experiment_id, headers, rows):
    return ExperimentResult(experiment_id, "t", headers=headers, rows=rows)


class TestCriterionLogic:
    def test_fig4_ordering(self):
        good = {"fig4": fake("fig4", ["w", "lh", "sram", "ideal"],
                             [["gmean", 1.0, 1.2, 1.3]])}
        bad = {"fig4": fake("fig4", ["w", "lh", "sram", "ideal"],
                            [["gmean", 1.4, 1.2, 1.3]])}
        assert _fig4_ordering(good)
        assert not _fig4_ordering(bad)

    def test_hit_latency_window(self):
        headers = ["w", "lh", "sram", "alloy"]
        good = {"fig10": fake("fig10", headers, [["average", 110.0, 62.0, 34.0]])}
        too_fast_lh = {"fig10": fake("fig10", headers, [["average", 70.0, 62.0, 34.0]])}
        assert _hit_latency_ordering(good)
        assert not _hit_latency_ordering(too_fast_lh)

    def test_gap_shrinks(self):
        headers = ["size", "lh", "alloy", "delta_pct"]
        good = {"table6": fake("table6", headers,
                               [["256MB", 0, 0, 8.0], ["1GB", 0, 0, 2.0]])}
        bad = {"table6": fake("table6", headers,
                              [["256MB", 0, 0, 2.0], ["1GB", 0, 0, 8.0]])}
        assert _gap_shrinks_with_size(good)
        assert not _gap_shrinks_with_size(bad)

    def test_improvement_ladder(self):
        headers = ["design", "improvement_pct", "paper"]
        good = {"table7": fake("table7", headers,
                               [["a", 23.0, 0], ["b", 28.0, 0], ["c", 31.0, 0]])}
        bad = {"table7": fake("table7", headers,
                              [["a", 31.0, 0], ["b", 23.0, 0]])}
        assert _improvement_ladder(good)
        assert not _improvement_ladder(bad)

    def test_twoway(self):
        headers = ["design", "improvement_pct", "hit", "hit_latency"]
        tie = {"twoway": fake("twoway", headers,
                              [["alloy-map-i", 27.0, 48.0, 34.0],
                               ["alloy-2way", 27.5, 56.0, 41.0]])}
        big_win = {"twoway": fake("twoway", headers,
                                  [["alloy-map-i", 20.0, 48.0, 34.0],
                                   ["alloy-2way", 30.0, 56.0, 41.0]])}
        assert _twoway_not_worth_it(tie)
        assert not _twoway_not_worth_it(big_win)


class TestCriteriaCatalog:
    def test_names_unique(self):
        names = [c.name for c in CRITERIA]
        assert len(names) == len(set(names))

    def test_every_criterion_names_experiments(self):
        from repro.experiments.registry import EXPERIMENTS

        for criterion in CRITERIA:
            assert criterion.experiments
            for experiment_id in criterion.experiments:
                assert experiment_id in EXPERIMENTS

    def test_twelve_claims(self):
        assert len(CRITERIA) == 12

    def test_title_claim_present(self):
        assert any(c.name == "alloy-beats-sram" for c in CRITERIA)
