"""Tests for ``repro serve``: concurrency, streaming, backpressure, drain."""

import http.client
import json
import os
import subprocess
import sys
import threading
from dataclasses import asdict

import pytest

from repro.jobs import create_job, submit_job
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    report_from_dict,
)
from repro.sim.config import SystemConfig
from repro.sim.parallel import ResultCache, make_cells, run_sweep
from repro.workloads.arena import owned_segment_names, segment_pool_stats

CONFIG = SystemConfig(capacity_scale=4096)
DESIGNS = ("no-cache", "alloy-map-i")


def grid(benchmarks, reads=250, seed=1):
    return make_cells(
        DESIGNS, benchmarks, config=CONFIG, reads_per_core=reads, seed=seed
    )


def results_by_grid(report):
    """(design, benchmark) -> asdict(result): the bit-exactness currency."""
    return {
        (c.cell.design, c.cell.benchmark): asdict(c.result)
        for c in report.cells
    }


def serve_config(tmp_path, **overrides):
    defaults = dict(
        workers=2,
        job_slots=2,
        idle_segments=4,
        cache_dir=tmp_path / "cache",
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestProtocolBasics:
    def test_hello_ping_stats(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                hello = client.hello()
                assert hello["protocol"] == 1
                assert hello["workers"] == 2
                client.ping()
                stats = client.stats()
                assert stats["clients_connected"] == 1
                assert stats["cells_served"] == 0

    def test_unknown_op_and_garbage_are_reported(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                client.send({"op": "frobnicate"})
                event = client.recv()
                assert event["event"] == "error"
                assert event["code"] == "bad-request"
                client._fh.write(b"not json\n")
                client._fh.flush()
                event = client.recv()
                assert event["code"] == "bad-request"

    def test_submit_rejects_empty_cells(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeError, match="cells"):
                    client.submit([])


class TestSubmit:
    def test_streams_every_cell_then_done_bit_identical(self, tmp_path):
        cells = grid(("sphinx_r",))
        streamed = []
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                report = report_from_dict(
                    client.submit(cells, on_cell=streamed.append)
                )
        assert len(streamed) == len(cells) == len(report.cells)
        serial = run_sweep(
            cells,
            cache=ResultCache(tmp_path / "serial", persist=False),
            use_cache=False,
        )
        assert results_by_grid(report) == results_by_grid(serial)

    def test_repeat_submit_is_all_cache_hits(self, tmp_path):
        cells = grid(("sphinx_r",))
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                first = report_from_dict(client.submit(cells))
                second = report_from_dict(client.submit(cells))
                stats = client.stats()
        assert first.cache_hits == 0
        assert second.cache_hits == len(cells)
        assert results_by_grid(first) == results_by_grid(second)
        assert stats["cells_from_cache"] == len(cells)
        assert stats["jobs_completed"] == 2


class TestConcurrentClients:
    def test_overlapping_sweeps_compute_each_cell_once(self, tmp_path):
        """The soak: two clients, overlapping 2x4 grids, exactly-once."""
        # seed 41: fresh workload keys, so workloads_built counts *this*
        # test's generator runs (earlier tests memoize seed-1 workloads).
        grid_a = grid(("sphinx_r", "gcc_r", "mcf_r", "lbm_r"), seed=41)
        grid_b = grid(("mcf_r", "lbm_r", "soplex_r", "milc_r"), seed=41)
        unique = {c.key() for c in grid_a + grid_b}
        overlap = {c.key() for c in grid_a} & {c.key() for c in grid_b}
        assert len(overlap) == 4
        reports = {}

        def run_client(name, cells, port):
            with ServeClient(port=port) as client:
                reports[name] = report_from_dict(client.submit(cells))

        with ServerThread(serve_config(tmp_path)) as server:
            threads = [
                threading.Thread(
                    target=run_client, args=("a", grid_a, server.port)
                ),
                threading.Thread(
                    target=run_client, args=("b", grid_b, server.port)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServeClient(port=server.port) as client:
                stats = client.stats()

        executed = [
            c
            for report in reports.values()
            for c in report.cells
            if not c.from_cache
        ]
        # Every unique cell simulated exactly once, across both clients.
        assert len(executed) == len(unique)
        assert len({c.cell.key() for c in executed}) == len(unique)
        # Every duplicate cell was served from the shared cache.
        duplicates = [
            c
            for report in reports.values()
            for c in report.cells
            if c.cell.key() in overlap
        ]
        assert sum(1 for c in duplicates if c.from_cache) == len(overlap)
        # Generators ran once per unique workload, never twice.
        built = sum(r.workloads_built for r in reports.values())
        unique_workloads = {
            c.workload_params().key() for c in grid_a + grid_b
        }
        assert built == len(unique_workloads)
        assert stats["cells_served"] == len(grid_a) + len(grid_b)
        assert stats["cells_from_cache"] == len(overlap)

        # Bit-identical to an in-process serial sweep of the union grid.
        union = {c.key(): c for c in grid_a + grid_b}
        serial = run_sweep(
            list(union.values()),
            cache=ResultCache(tmp_path / "serial", persist=False),
            use_cache=False,
        )
        serial_results = results_by_grid(serial)
        for report in reports.values():
            for key, value in results_by_grid(report).items():
                assert value == serial_results[key], key

    def test_no_segments_leak_after_drain(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                client.submit(grid(("sphinx_r",)))
                # While serving, idle segments may stay pooled for reuse.
                assert segment_pool_stats()["active"] == 0
        # Drained server: nothing pooled, nothing owned, cap restored to 0.
        assert segment_pool_stats() == {"pooled": 0, "active": 0, "idle": 0}
        assert owned_segment_names() == ()


class TestKillResume:
    def test_mid_job_kill_resumes_bit_identically(self, tmp_path, monkeypatch):
        """SIGKILLed worker -> job-failed -> reconnect + resume, same bits."""
        cells = grid(("sphinx_r", "gcc_r"))
        with ServerThread(
            serve_config(tmp_path, job_slots=1, use_cache=False)
        ) as server:
            monkeypatch.setenv("REPRO_TEST_KILL_CELL", "alloy-map-i/gcc_r")
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeError) as err:
                    client.submit(cells, name="killable", use_cache=False)
                assert err.value.code == "job-failed"
            monkeypatch.delenv("REPRO_TEST_KILL_CELL")
            with ServeClient(port=server.port) as client:
                resumed = report_from_dict(
                    client.resume("killable", use_cache=False)
                )
                stats = client.stats()
        assert len(resumed.cells) == len(cells)
        assert stats["jobs_failed"] == 1
        assert stats["jobs_completed"] == 1
        # asdict-identical to a journal-less serial run of the same job.
        job = create_job("serial-twin", cells, cache_dir=tmp_path / "twin")
        serial = submit_job(
            job,
            cache=ResultCache(tmp_path / "twin", persist=False),
            use_cache=False,
        )
        assert results_by_grid(resumed) == results_by_grid(serial)


class TestBackpressure:
    def test_rate_limit_rejects_burst_overflow(self, tmp_path):
        config = serve_config(tmp_path, rate=0.001, burst=2)
        with ServerThread(config) as server:
            with ServeClient(port=server.port) as client:
                client.ping()
                client.ping()
                client.send({"op": "ping"})
                event = client.recv()
                assert event["event"] == "error"
                assert event["code"] == "rate-limited"

    def test_per_connection_job_cap(self, tmp_path):
        config = serve_config(tmp_path, max_client_jobs=1, job_slots=1)
        cells = grid(("sphinx_r",))
        from repro.jobs.manager import cell_to_dict

        with ServerThread(config) as server:
            with ServeClient(port=server.port) as client:
                payload = [cell_to_dict(c) for c in cells]
                client.send({"op": "submit", "cells": payload, "id": 1})
                client.send({"op": "submit", "cells": payload, "id": 2})
                events = {"too-many-jobs": 0, "done": 0}
                while events["done"] == 0 or events["too-many-jobs"] == 0:
                    message = client.recv()
                    if message.get("event") == "error":
                        assert message["code"] == "too-many-jobs"
                        assert message["id"] == 2
                        events["too-many-jobs"] += 1
                    elif message.get("event") == "done":
                        assert message["id"] == 1
                        events["done"] += 1

    def test_queue_full_rejects_when_slots_and_queue_busy(self, tmp_path):
        config = serve_config(
            tmp_path, job_slots=1, max_queue=1, max_client_jobs=4
        )
        # Fresh seeds so the blocking job really simulates (no cache hits).
        slow = make_cells(
            DESIGNS,
            ("sphinx_r", "gcc_r"),
            config=CONFIG,
            reads_per_core=2000,
            seed=917,
        )
        fast = make_cells(
            DESIGNS, ("mcf_r",), config=CONFIG, reads_per_core=250, seed=917
        )
        from repro.jobs.manager import cell_to_dict

        with ServerThread(config) as server:
            blocker = ServeClient(port=server.port)
            acked = threading.Event()
            blocker_report = {}

            def run_blocker():
                blocker_report["report"] = blocker.submit(
                    slow, on_ack=lambda _m: acked.set()
                )

            thread = threading.Thread(target=run_blocker)
            thread.start()
            assert acked.wait(timeout=120)  # the slot is now occupied
            with ServeClient(port=server.port) as client:
                payload = [cell_to_dict(c) for c in fast]
                client.send({"op": "submit", "cells": payload, "id": "q1"})
                client.send({"op": "submit", "cells": payload, "id": "q2"})
                rejected = None
                finished = 0
                while rejected is None or finished == 0:
                    message = client.recv()
                    if message.get("event") == "error":
                        assert message["code"] == "queue-full"
                        assert message["id"] == "q2"
                        rejected = message
                    elif message.get("event") == "done":
                        finished += 1
            thread.join(timeout=300)
            assert "report" in blocker_report
            blocker.close()


class TestDrain:
    def test_drain_finishes_running_jobs_then_refuses(self, tmp_path):
        config = serve_config(tmp_path, job_slots=1)
        cells = grid(("sphinx_r",))
        server = ServerThread(config).start()
        try:
            done = {}
            acked = threading.Event()

            def client_run():
                with ServeClient(port=server.port) as client:
                    done["report"] = client.submit(
                        cells, on_ack=lambda _m: acked.set()
                    )

            thread = threading.Thread(target=client_run)
            thread.start()
            assert acked.wait(timeout=120)
            server.request_drain()  # SIGTERM equivalent, mid-job
            thread.join(timeout=300)
            # The in-flight job finished and streamed its report.
            assert len(done["report"]["cells"]) == len(cells)
        finally:
            server.stop()
        with pytest.raises(OSError):
            ServeClient(port=server.port, timeout=5.0)

    def test_submit_during_drain_is_rejected(self, tmp_path):
        server = ServerThread(serve_config(tmp_path)).start()
        client = ServeClient(port=server.port)
        client.hello()
        server.server._draining = True  # drain flag, listener still up
        try:
            with pytest.raises(ServeError) as err:
                client.submit(grid(("sphinx_r",)))
            assert err.value.code == "draining"
        finally:
            client.close()
            server.server._draining = False
            server.stop()


class TestMetricsEndpoint:
    def test_http_get_metrics_on_same_port(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            with ServeClient(port=server.port) as client:
                client.submit(grid(("sphinx_r",)))
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode()
            conn.close()
        assert response.status == 200
        metrics = {
            line.split()[0]: float(line.split()[1])
            for line in body.strip().splitlines()
        }
        assert metrics["repro_serve_cells_served"] == 2.0
        assert metrics["repro_serve_jobs_completed"] == 1.0
        assert "repro_serve_cache_hit_rate" in metrics
        assert "repro_serve_events_per_sec" in metrics
        assert "repro_serve_segments_idle" in metrics

    def test_http_unknown_path_is_404(self, tmp_path):
        with ServerThread(serve_config(tmp_path)) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            conn.request("GET", "/nope")
            response = conn.getresponse()
            response.read()
            conn.close()
            assert response.status == 404


class TestStdio:
    def test_cli_stdio_session_round_trip(self, tmp_path):
        """repro serve --stdio answers a scripted NDJSON session."""
        script = (
            json.dumps({"op": "hello"})
            + "\n"
            + json.dumps({"op": "stats"})
            + "\n"
            + json.dumps({"op": "bye"})
            + "\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(['serve', '--stdio']))",
            ],
            input=script,
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        events = [json.loads(line) for line in proc.stdout.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["hello", "stats", "bye"]
        assert events[0]["protocol"] == 1
