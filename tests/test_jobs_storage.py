"""Tests for the cache store admin (repro.jobs.storage) and its CLI verbs."""

import json

import pytest

from repro.cli import main
from repro.jobs import (
    JobRunLock,
    cache_stats,
    clear_cache,
    create_job,
    format_size,
    job_in_use,
    parse_size,
    prune_cache,
    submit_job,
)
from repro.sim.config import SystemConfig
from repro.sim.parallel import ResultCache, make_cells


def tiny_cells(reads=200):
    return make_cells(
        ("no-cache", "alloy-map-i"),
        ("sphinx_r",),
        config=SystemConfig(capacity_scale=4096),
        reads_per_core=reads,
    )


def populated(tmp_path):
    cache = ResultCache(tmp_path, persist=True)
    job = create_job("store", tiny_cells(), cache_dir=tmp_path)
    submit_job(job, cache=cache)
    # The shared trace arena writes under the session-wide cache dir, not
    # this test's; plant one arena file so the traces kind is exercised.
    traces = tmp_path / "traces"
    traces.mkdir(exist_ok=True)
    (traces / ("0" * 8 + ".npz")).write_bytes(b"x" * 512)
    return job


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("2k", 2048),
            ("2K", 2048),
            ("3MB", 3 * 1024**2),
            ("1g", 1024**3),
            (" 5 m ", 5 * 1024**2),
        ],
    )
    def test_accepts_common_forms(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "1.5G", "-3M", "Gb"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_size(text)

    def test_format_size_round_readable(self):
        assert format_size(0) == "0 B"
        assert format_size(2048) == "2.0 KiB"
        assert "MiB" in format_size(5 * 1024**2)


class TestStats:
    def test_counts_every_kind(self, tmp_path):
        populated(tmp_path)
        stats = cache_stats(tmp_path)
        assert stats.results.count == 2
        assert stats.traces.count == 1
        assert stats.jobs.count == 1
        assert stats.total_bytes > 0
        text = stats.render()
        assert "results" in text and "jobs" in text and "total" in text

    def test_empty_directory(self, tmp_path):
        stats = cache_stats(tmp_path / "nothing")
        assert stats.total_bytes == 0


class TestPrune:
    def test_prunes_oldest_until_under_budget(self, tmp_path):
        populated(tmp_path)
        before = cache_stats(tmp_path).total_bytes
        report = prune_cache(before // 2, tmp_path)
        assert report.freed_bytes > 0
        assert report.removed
        assert cache_stats(tmp_path).total_bytes <= before // 2

    def test_zero_budget_clears_everything(self, tmp_path):
        populated(tmp_path)
        prune_cache(0, tmp_path)
        stats = cache_stats(tmp_path)
        assert stats.total_bytes == 0

    def test_noop_when_under_budget(self, tmp_path):
        populated(tmp_path)
        report = prune_cache(10 * 1024**3, tmp_path)
        assert report.removed == []
        assert report.freed_bytes == 0


class TestConcurrencyGuards:
    """Races and in-use guards: the shared store under concurrent clients."""

    def test_stats_tolerate_files_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        """A file deleted between enumeration and stat() is a skip."""
        populated(tmp_path)
        import repro.jobs.storage as storage

        real = storage._result_files

        def ghostly(directory):
            paths = real(directory)
            ghost = directory / "feedfacedeadbeef.json"
            return [ghost, *paths]  # enumerated, but never existed by stat

        monkeypatch.setattr(storage, "_result_files", ghostly)
        stats = cache_stats(tmp_path)
        assert stats.results.count == 2  # the ghost is not counted
        report = prune_cache(0, tmp_path)
        assert "feedfacedeadbeef.json" not in report.removed
        assert cache_stats(tmp_path).total_bytes == 0

    def test_prune_skips_job_whose_run_lock_is_held(self, tmp_path):
        job = populated(tmp_path)
        assert not job_in_use(job.directory)
        with JobRunLock(job.directory):
            assert job_in_use(job.directory)
            report = prune_cache(0, tmp_path)
            name = f"jobs/{job.job_id}"
            assert name in report.skipped
            assert report.skip_reasons[name] == "in use"
            assert "(in use)" in report.render()
            assert job.directory.exists()
            assert (job.directory / "journal.jsonl").exists()
        # Lock released: the same prune now evicts the job.
        report = prune_cache(0, tmp_path)
        assert f"jobs/{job.job_id}" in report.removed
        assert not job.directory.exists()

    def test_submit_job_holds_run_lock_while_executing(self, tmp_path):
        """prune racing a live submit_job must not delete the journal."""
        cache = ResultCache(tmp_path, persist=True)
        job = create_job("locked", tiny_cells(), cache_dir=tmp_path)
        seen = {}

        def probe(_cell_result):
            seen["in_use"] = job_in_use(job.directory)

        submit_job(job, cache=cache, on_cell=probe)
        assert seen["in_use"] is True
        assert not job_in_use(job.directory)

    def test_freed_bytes_honest_on_partial_rmtree(
        self, tmp_path, monkeypatch
    ):
        """A writer racing rmtree leaves files behind; freed_bytes must
        count only what is really gone and the dir lands in skipped."""
        job = populated(tmp_path)
        import repro.jobs.storage as storage

        journal = job.directory / "journal.jsonl"
        journal_size = journal.stat().st_size

        def partial_rmtree(path, ignore_errors=False):
            for p in path.iterdir():  # everything except the journal
                if p.name != "journal.jsonl":
                    p.unlink()

        monkeypatch.setattr(storage.shutil, "rmtree", partial_rmtree)
        total_before = cache_stats(tmp_path).total_bytes
        report = prune_cache(0, tmp_path)
        name = f"jobs/{job.job_id}"
        assert name in report.skipped
        assert report.skip_reasons[name] == "partially removed"
        assert name not in report.removed
        assert journal.exists()
        # Exactly the surviving journal's bytes are *not* freed.
        assert report.freed_bytes == total_before - journal_size
        assert report.remaining_bytes == journal_size

    def test_min_age_floor_protects_fresh_entries(self, tmp_path):
        populated(tmp_path)
        report = prune_cache(0, tmp_path, min_age_seconds=3600.0)
        assert report.removed == []
        assert report.freed_bytes == 0
        assert report.skipped  # everything was a candidate, all too young
        assert set(report.skip_reasons.values()) == {"too recent"}
        assert cache_stats(tmp_path).total_bytes > 0

    def test_prune_min_age_cli_flag(self, tmp_path, capsys):
        populated(tmp_path)
        code = main(
            [
                "cache",
                "--cache-dir",
                str(tmp_path),
                "prune",
                "--max-bytes",
                "0",
                "--min-age",
                "3600",
            ]
        )
        assert code == 0
        assert "skipped" in capsys.readouterr().out
        assert cache_stats(tmp_path).total_bytes > 0


class TestClear:
    def test_clear_single_kind(self, tmp_path):
        populated(tmp_path)
        removed = clear_cache(tmp_path, results=False, traces=False)
        assert removed.jobs.count == 1
        stats = cache_stats(tmp_path)
        assert stats.jobs.count == 0
        assert stats.results.count == 2  # untouched

    def test_clear_everything(self, tmp_path):
        populated(tmp_path)
        clear_cache(tmp_path)
        assert cache_stats(tmp_path).total_bytes == 0


class TestCliVerbs:
    def test_cache_stats_and_prune_and_clear(self, tmp_path, capsys):
        populated(tmp_path)
        assert main(["cache", "--cache-dir", str(tmp_path), "stats"]) == 0
        assert "results" in capsys.readouterr().out
        assert (
            main(
                [
                    "cache",
                    "--cache-dir",
                    str(tmp_path),
                    "prune",
                    "--max-bytes",
                    "0",
                ]
            )
            == 0
        )
        assert "pruned" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path), "clear"]) == 0

    def test_cache_prune_rejects_garbage_size(self, tmp_path, capsys):
        code = main(
            [
                "cache",
                "--cache-dir",
                str(tmp_path),
                "prune",
                "--max-bytes",
                "lots",
            ]
        )
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_jobs_list_show_rm(self, tmp_path, capsys):
        job = populated(tmp_path)
        assert main(["jobs", "--cache-dir", str(tmp_path), "list"]) == 0
        assert job.job_id in capsys.readouterr().out
        assert (
            main(["jobs", "--cache-dir", str(tmp_path), "show", job.job_id])
            == 0
        )
        out = capsys.readouterr().out
        assert "done" in out and "no-cache" in out
        assert (
            main(["jobs", "--cache-dir", str(tmp_path), "rm", job.job_id])
            == 0
        )
        capsys.readouterr()
        assert main(["jobs", "--cache-dir", str(tmp_path), "list"]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_jobs_show_unknown_ref(self, tmp_path, capsys):
        code = main(["jobs", "--cache-dir", str(tmp_path), "show", "ghost"])
        assert code == 2
        assert "no job" in capsys.readouterr().err

    def test_sweep_job_then_resume(self, tmp_path, capsys):
        common = [
            "sweep",
            "--designs",
            "alloy",
            "--benchmarks",
            "sphinx",
            "--reads",
            "200",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main([*common, "--job", "cli-job"]) == 0
        first = capsys.readouterr().out
        assert "job cli-job-" in first
        assert main([*common, "--resume", "cli-job"]) == 0
        resumed = capsys.readouterr().out
        assert "resuming job cli-job-" in resumed
        assert "2/2 cells journaled" in resumed
        assert "cache 2 hit / 0 miss" in resumed

    def test_sweep_job_and_resume_conflict(self, capsys):
        code = main(["sweep", "--job", "a", "--resume", "b"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_explore_writes_payload(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out_path = tmp_path / "explore.json"
        code = main(
            [
                "explore",
                "--strategy",
                "halving",
                "--designs",
                "alloy,sram-tag",
                "--benchmarks",
                "sphinx",
                "--page-policies",
                "open",
                "--line-bursts",
                "4",
                "--cache-mbs",
                "128",
                "--timings",
                "paper,fast",
                "--capacity-scales",
                "4096",
                "--reads",
                "150",
                "--eta",
                "2",
                "--keep",
                "2",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "Pareto frontier" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "repro-explore"
        assert payload["frontier"]
