"""Design-level timing tests, cycle-anchored to the paper's Figure 3.

Each design is driven directly (no system loop) against idle devices, so
isolated access paths must reproduce the paper's analytic latencies exactly:
SRAM-Tag hit 64, LH-Cache hit 96, IDEAL-LO hit 40 (type Y), misses at
lookup-latency + memory, etc. Background work is collected by a fake
scheduler and drained manually.
"""

import pytest

from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.factory import DESIGN_NAMES, make_design
from repro.dramcache.ideal_lo import IdealLODesign
from repro.dramcache.lh_cache import LHCacheDesign
from repro.dramcache.no_cache import NoCacheDesign, PerfectL3Design
from repro.dramcache.sram_tag import SramTagDesign
from repro.core.predictors import make_predictor
from repro.sim.config import SystemConfig
from repro.units import MB


class FakeScheduler:
    """Collects background callbacks; drained explicitly by tests."""

    def __init__(self):
        self.pending = []

    def __call__(self, when, fn):
        self.pending.append((when, fn))

    def drain(self):
        while self.pending:
            self.pending.sort(key=lambda item: item[0])
            when, fn = self.pending.pop(0)
            fn(when)


@pytest.fixture
def env():
    config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=4096)
    stacked = DramDevice(config.stacked, name="stacked")
    memory = DramDevice(config.offchip, name="memory")
    sched = FakeScheduler()
    return config, stacked, memory, sched


def read(design, line, t=0.0, pc=0x400, core=0):
    return design.access(t, line, False, pc, core)


class TestNoCache:
    def test_read_is_type_y_memory_access(self, env):
        config, stacked, memory, sched = env
        design = NoCacheDesign(config, stacked, memory, sched)
        assert read(design, 0).done == 88  # ACT+CAS+bus

    def test_row_hit_read_is_52(self, env):
        config, stacked, memory, sched = env
        design = NoCacheDesign(config, stacked, memory, sched)
        read(design, 0)
        outcome = read(design, 1, t=1000.0)
        assert outcome.done - 1000.0 == 52

    def test_write_is_posted(self, env):
        config, stacked, memory, sched = env
        design = NoCacheDesign(config, stacked, memory, sched)
        outcome = design.access(0.0, 0, True, 0, 0)
        assert outcome.done == 0.0
        sched.drain()
        assert design.stats.counter("memory_writes").value == 1


class TestPerfectL3:
    def test_zero_added_latency(self, env):
        config, stacked, memory, sched = env
        design = PerfectL3Design(config, stacked, memory, sched)
        assert read(design, 0, t=7.0).done == 7.0


class TestSramTag:
    def test_hit_latency_is_64(self, env):
        """Figure 3(b): TSL 24 + ACT 18 + CAS 18 + burst 4 = 64."""
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        design.warm(0, False, 0, 0)
        outcome = read(design, 0)
        assert outcome.cache_hit
        assert outcome.done == 64

    def test_miss_latency_is_112(self, env):
        """Figure 3(b): TSL 24 + memory Y 88 = 112."""
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        outcome = read(design, 0)
        assert not outcome.cache_hit
        assert outcome.done == 112

    def test_miss_fills_cache(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        read(design, 0)
        sched.drain()
        assert read(design, 0, t=10_000.0).cache_hit

    def test_one_way_variant_gets_row_hits(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=1)
        design.warm(0, False, 0, 0)
        design.warm(1, False, 0, 0)
        read(design, 0)
        second = read(design, 1, t=10_000.0)
        # Consecutive sets share a row: 24 + CAS 18 + burst 4 = 46.
        assert second.done - 10_000.0 == 46

    def test_sram_overhead_is_24mb_for_256mb(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        assert design.sram_overhead_bytes() == 24 * MB

    def test_dirty_victim_written_back(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        design.warm(0, False, 0, 0)
        design.access(0.0, 0, True, 0, 0)  # dirty it
        sched.drain()
        # Evict line 0 through the timed path: fills of conflicting lines.
        span = design.tags.num_sets
        t = 1000.0
        while design.tags.probe(0):
            design.access(t, int(t) * span, False, 0, 0)
            sched.drain()
            t += 1000.0
        assert design.stats.counter("victim_reads").value >= 1
        assert design.stats.counter("memory_writes").value >= 1


class TestLHCache:
    def test_hit_latency_is_96(self, env):
        """Section 2.4: 24 (MissMap) + 36 (ACT+CAS) + 12 (tags) + 2 (check)
        + 18 (CAS) + 4 (burst) = 96."""
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        outcome = read(design, 0)
        assert outcome.cache_hit
        assert outcome.done == 96

    def test_miss_latency_is_112(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        outcome = read(design, 0)
        assert outcome.done == 112  # 24 PSL + 88 memory

    def test_compound_access_row_hit(self, env):
        """The data access must reuse the row opened by the tag access."""
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        read(design, 0)
        assert design.stats.counter("compound_row_reopens").value == 0

    def test_missmap_tracks_fills(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        read(design, 0)
        sched.drain()
        assert 0 in design.missmap
        assert read(design, 0, t=10_000.0).cache_hit

    def test_replacement_update_traffic_counted(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        read(design, 0)
        assert design.stats.counter("replacement_updates").value == 1

    def test_random_replacement_skips_update(self, env):
        from repro.cache.replacement import make_policy

        config, stacked, memory, sched = env
        design = LHCacheDesign(
            config, stacked, memory, sched, policy=make_policy("random")
        )
        design.warm(0, False, 0, 0)
        read(design, 0)
        assert design.stats.counter("replacement_updates").value == 0

    def test_one_way_streams_single_tag_line(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched, ways=1)
        assert design.tag_lines_read == 1
        design.warm(0, False, 0, 0)
        outcome = read(design, 0)
        # 24 + (18+18+4) + 2 + (18+4) = 88 (vs 96 for three tag lines).
        assert outcome.done == 88

    def test_rejects_other_associativity(self, env):
        config, stacked, memory, sched = env
        with pytest.raises(ValueError):
            LHCacheDesign(config, stacked, memory, sched, ways=8)


class TestAlloy:
    def test_nopred_hit_is_41(self, env):
        """TAD probe on a closed row: ACT 18 + CAS 18 + 5 beats = 41."""
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        design.warm(0, False, 0, 0)
        assert read(design, 0).done == 41

    def test_row_hit_tad_is_23(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        design.warm(0, False, 0, 0)
        design.warm(1, False, 0, 0)
        read(design, 0)
        second = read(design, 1, t=10_000.0)
        assert second.done - 10_000.0 == 23  # CAS 18 + 5 beats

    def test_map_predictor_adds_one_cycle(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("map-i", 8)
        )
        design.warm(0, False, 0, 0)
        # MAP-I initializes to predict-memory; train it toward cache first.
        for _ in range(4):
            design.predictor.update(0, 0x400, went_to_memory=False)
        assert read(design, 0).done == 42

    def test_sam_miss_serializes(self, env):
        """Predicted hit but actual miss: probe (41) then memory (88)."""
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("sam", 8)
        )
        outcome = read(design, 0)
        assert outcome.done == 41 + 88

    def test_pam_miss_overlaps(self, env):
        """Predicted miss and actual miss: max(memory, probe) = 88."""
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("pam", 8)
        )
        assert read(design, 0).done == 88

    def test_pam_hit_wastes_memory_read(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("pam", 8)
        )
        design.warm(0, False, 0, 0)
        outcome = read(design, 0)
        assert outcome.cache_hit and outcome.done == 41
        assert design.stats.counter("wasted_memory_reads").value == 1

    def test_perfect_predictor_oracle(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("perfect", 8)
        )
        assert read(design, 0).done == 88  # miss goes straight to memory
        sched.drain()
        assert read(design, 0, t=10_000.0).done - 10_000.0 in (23, 41)
        assert design.stats.counter("wasted_memory_reads").value == 0

    def test_missmap_predictor_adds_psl(self, env):
        from repro.cache.missmap import MissMap

        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=MissMap()
        )
        design.warm(0, False, 0, 0)
        assert read(design, 0).done == 24 + 41

    def test_burst8_costs_three_more_beats(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=None, burst_beats=8
        )
        design.warm(0, False, 0, 0)
        assert read(design, 0).done == 44  # 18+18+8

    def test_fill_after_miss(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        read(design, 0)
        sched.drain()
        assert read(design, 0, t=10_000.0).cache_hit

    def test_table5_scenarios_accumulate(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(
            config, stacked, memory, sched, predictor=make_predictor("pam", 8)
        )
        design.warm(0, False, 0, 0)
        read(design, 0)  # hit, predicted memory
        read(design, 123456)  # miss, predicted memory
        assert design.stats.counter("pred_mem_actual_cache").value == 1
        assert design.stats.counter("pred_mem_actual_mem").value == 1


class TestIdealLO:
    def test_hit_y_is_40(self, env):
        config, stacked, memory, sched = env
        design = IdealLODesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        assert read(design, 0).done == 40

    def test_hit_x_is_22(self, env):
        config, stacked, memory, sched = env
        design = IdealLODesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        design.warm(1, False, 0, 0)
        read(design, 0)
        assert read(design, 1, t=10_000.0).done - 10_000.0 == 22

    def test_miss_is_raw_memory(self, env):
        config, stacked, memory, sched = env
        design = IdealLODesign(config, stacked, memory, sched)
        assert read(design, 0).done == 88

    def test_notag_variant_has_more_sets(self, env):
        config, stacked, memory, sched = env
        with_tags = IdealLODesign(config, stacked, memory, sched, tag_overhead=True)
        no_tags = IdealLODesign(config, stacked, memory, sched, tag_overhead=False)
        assert no_tags.cache.num_sets > with_tags.cache.num_sets
        assert no_tags.cache.num_sets * 28 == with_tags.cache.num_sets * 32


class TestFactoryIntegration:
    @pytest.mark.parametrize("name", DESIGN_NAMES)
    def test_every_design_constructs_and_serves(self, name, env):
        config, stacked, memory, sched = env
        design = make_design(name, config, stacked, memory, sched)
        outcome = read(design, 0)
        assert outcome.done >= 0
        design.access(1000.0, 1, True, 0, 0)
        sched.drain()

    def test_unknown_design(self, env):
        config, stacked, memory, sched = env
        with pytest.raises(ValueError, match="unknown design"):
            make_design("l4-cache", config, stacked, memory, sched)

    def test_design_names_stable(self):
        assert "alloy-map-i" in DESIGN_NAMES
        assert "lh-cache" in DESIGN_NAMES
        assert "alloy-victim16" in DESIGN_NAMES
        assert "alloy-4way" in DESIGN_NAMES
        assert len(DESIGN_NAMES) == 21
