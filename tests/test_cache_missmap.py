"""Tests for the idealized MissMap."""

import pytest

from repro.cache.missmap import LINES_PER_SEGMENT, MissMap


@pytest.fixture
def missmap():
    return MissMap()


class TestPresence:
    def test_empty(self, missmap):
        assert not missmap.contains(0)
        assert 0 not in missmap

    def test_insert_then_contains(self, missmap):
        missmap.insert(42)
        assert missmap.contains(42)
        assert 42 in missmap

    def test_remove(self, missmap):
        missmap.insert(42)
        missmap.remove(42)
        assert not missmap.contains(42)

    def test_remove_absent_is_noop(self, missmap):
        missmap.remove(42)
        assert missmap.tracked_lines == 0

    def test_double_insert_idempotent(self, missmap):
        missmap.insert(1)
        missmap.insert(1)
        assert missmap.tracked_lines == 1


class TestSegments:
    def test_segment_size_is_a_page(self):
        assert LINES_PER_SEGMENT == 64  # 4 KB / 64 B

    def test_lines_share_segment(self, missmap):
        missmap.insert(0)
        missmap.insert(63)
        assert missmap.active_segments == 1

    def test_lines_in_distinct_segments(self, missmap):
        missmap.insert(0)
        missmap.insert(64)
        assert missmap.active_segments == 2

    def test_segment_freed_when_empty(self, missmap):
        missmap.insert(0)
        missmap.insert(1)
        missmap.remove(0)
        assert missmap.active_segments == 1
        missmap.remove(1)
        assert missmap.active_segments == 0


class TestStorageEstimate:
    def test_empty_is_zero(self, missmap):
        assert missmap.storage_bytes() == 0

    def test_grows_with_segments(self, missmap):
        missmap.insert(0)
        one = missmap.storage_bytes()
        missmap.insert(LINES_PER_SEGMENT * 5)
        assert missmap.storage_bytes() == 2 * one

    def test_megabyte_scale_for_large_caches(self, missmap):
        """Tracking a 256 MB cache's worth of scattered pages needs
        megabytes — the paper's motivation for burying it in the L3."""
        lines = 256 * 1024 * 1024 // 64
        for segment in range(lines // LINES_PER_SEGMENT):
            missmap.insert(segment * LINES_PER_SEGMENT)
        assert missmap.storage_bytes() > 700_000


class TestStats:
    def test_lookup_counters(self, missmap):
        missmap.insert(1)
        missmap.contains(1)
        missmap.contains(2)
        assert missmap.stats.counter("lookups").value == 2
        assert missmap.stats.counter("predicted_hits").value == 1
        assert missmap.stats.counter("predicted_misses").value == 1
