"""Tests for the Table 4 effective-bandwidth model."""

import pytest

from repro.analysis.bandwidth import BandwidthEntry, table4


class TestTable4:
    def test_row_set(self):
        names = [e.structure for e in table4()]
        assert names == [
            "offchip-memory",
            "sram-tag",
            "lh-cache",
            "ideal-lo",
            "alloy-cache",
        ]

    def test_offchip_reference(self):
        entry = table4()[0]
        assert entry.effective_bandwidth == 1.0

    def test_sram_and_ideal_keep_8x(self):
        entries = {e.structure: e for e in table4()}
        assert entries["sram-tag"].effective_bandwidth == 8.0
        assert entries["ideal-lo"].effective_bandwidth == 8.0

    def test_lh_under_2x(self):
        entries = {e.structure: e for e in table4()}
        lh = entries["lh-cache"]
        assert lh.bytes_per_hit == 3 * 64 + 64 + 16  # tags + data + update
        assert lh.effective_bandwidth < 2.0

    def test_alloy_is_6_4x(self):
        entries = {e.structure: e for e in table4()}
        assert entries["alloy-cache"].effective_bandwidth == pytest.approx(6.4)

    def test_burst8_variant_is_4x(self):
        entries = {e.structure: e for e in table4(alloy_tad_bytes=128)}
        assert entries["alloy-cache"].effective_bandwidth == pytest.approx(4.0)

    def test_entry_math(self):
        entry = BandwidthEntry("x", 4.0, 128)
        assert entry.effective_bandwidth == pytest.approx(2.0)
