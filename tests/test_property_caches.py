"""Property-based tests (hypothesis) for cache-structure invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.replacement import (
    DIPPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
)
from repro.cache.set_assoc import SetAssocCache


ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=200), st.booleans()),
    min_size=1,
    max_size=300,
)

policies = st.sampled_from(["lru", "random", "nru", "dip"])


def make_policy_instance(name):
    return {
        "lru": LRUPolicy,
        "random": lambda: RandomPolicy(seed=1),
        "nru": NRUPolicy,
        "dip": lambda: DIPPolicy(seed=1),
    }[name]()


def drive(cache, operations, allocate_on_write=False):
    """Replay (line, is_write) ops with fill-on-read-miss semantics."""
    for line, is_write in operations:
        hit = cache.lookup(line, is_write=is_write)
        if not hit and (not is_write or allocate_on_write):
            cache.fill(line, dirty=is_write and allocate_on_write)


class TestSetAssocInvariants:
    @given(ops=ops, ways=st.integers(1, 8), num_sets=st.integers(1, 13), name=policies)
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_tags(self, ops, ways, num_sets, name):
        cache = SetAssocCache(num_sets, ways, policy=make_policy_instance(name))
        drive(cache, ops)
        for index in range(num_sets):
            tags, _ = cache.set_contents(index)
            valid = [t for t in tags if t != -1]
            assert len(valid) == len(set(valid))

    @given(ops=ops, ways=st.integers(1, 8), num_sets=st.integers(1, 13), name=policies)
    @settings(max_examples=60, deadline=None)
    def test_lines_live_in_their_set(self, ops, ways, num_sets, name):
        cache = SetAssocCache(num_sets, ways, policy=make_policy_instance(name))
        drive(cache, ops)
        for index in range(num_sets):
            tags, _ = cache.set_contents(index)
            for tag in tags:
                if tag != -1:
                    assert tag % num_sets == index

    @given(ops=ops, num_sets=st.integers(1, 13))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded(self, ops, num_sets):
        cache = SetAssocCache(num_sets, 4)
        drive(cache, ops)
        assert 0.0 <= cache.occupancy() <= 1.0

    @given(ops=ops)
    @settings(max_examples=60, deadline=None)
    def test_fill_then_probe(self, ops):
        cache = SetAssocCache(7, 2)
        for line, _ in ops:
            cache.fill(line)
            assert cache.probe(line)

    @given(ops=ops, name=policies)
    @settings(max_examples=40, deadline=None)
    def test_resident_count_never_exceeds_capacity(self, ops, name):
        cache = SetAssocCache(5, 3, policy=make_policy_instance(name))
        drive(cache, ops)
        assert len(cache.resident_lines()) <= cache.capacity_lines

    @given(ops=ops)
    @settings(max_examples=40, deadline=None)
    def test_eviction_returns_previously_resident_line(self, ops):
        cache = SetAssocCache(3, 2)
        resident = set()
        for line, is_write in ops:
            hit = cache.lookup(line, is_write=is_write)
            if not hit and not is_write:
                evicted = cache.fill(line)
                resident.add(line)
                if evicted.valid:
                    assert evicted.line_address in resident
                    resident.discard(evicted.line_address)


class TestDirectMappedEquivalence:
    @given(ops=ops, num_sets=st.integers(1, 31))
    @settings(max_examples=60, deadline=None)
    def test_matches_one_way_set_assoc(self, ops, num_sets):
        """DirectMappedCache and SetAssocCache(ways=1) are the same machine."""
        dm = DirectMappedCache(num_sets)
        sa = SetAssocCache(num_sets, 1)
        for line, is_write in ops:
            assert dm.lookup(line, is_write) == sa.lookup(line, is_write)
            if not dm.probe(line) and not is_write:
                ev_dm = dm.fill(line)
                ev_sa = sa.fill(line)
                assert (ev_dm.valid, ev_dm.dirty) == (ev_sa.valid, ev_sa.dirty)
                if ev_dm.valid:
                    assert ev_dm.line_address == ev_sa.line_address
        assert sorted(dm.resident_lines()) == sorted(sa.resident_lines())


class TestLruIsStackAlgorithm:
    @given(
        stream=st.lists(st.integers(0, 40), min_size=5, max_size=200),
        small=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_inclusion_property(self, stream, small):
        """A fully-associative LRU cache of W ways contains a subset of
        what a 2W-way cache contains (stack inclusion)."""
        a = SetAssocCache(1, small, policy=LRUPolicy())
        b = SetAssocCache(1, small * 2, policy=LRUPolicy())
        for line in stream:
            for cache in (a, b):
                if not cache.lookup(line):
                    cache.fill(line)
        assert set(a.resident_lines()) <= set(b.resident_lines())

    @given(stream=st.lists(st.integers(0, 30), min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_lru(self, stream):
        """Cache behaviour equals a simple ordered-list reference model."""
        cache = SetAssocCache(1, 4, policy=LRUPolicy())
        reference = []  # MRU first
        for line in stream:
            hit = cache.lookup(line)
            assert hit == (line in reference)
            if hit:
                reference.remove(line)
                reference.insert(0, line)
            else:
                cache.fill(line)
                reference.insert(0, line)
                if len(reference) > 4:
                    reference.pop()
        assert set(cache.resident_lines()) == set(reference)


class TestMissMapMirrorsCache:
    @given(ops=ops)
    @settings(max_examples=40, deadline=None)
    def test_exact_mirror(self, ops):
        from repro.cache.missmap import MissMap

        cache = SetAssocCache(5, 2)
        missmap = MissMap()
        for line, is_write in ops:
            hit = cache.lookup(line, is_write=is_write)
            assert (line in missmap) == hit
            if not hit and not is_write:
                evicted = cache.fill(line)
                missmap.insert(line)
                if evicted.valid:
                    missmap.remove(evicted.line_address)
        assert missmap.tracked_lines == len(cache.resident_lines())
