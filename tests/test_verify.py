"""Tests for the correctness subsystem: oracle, fuzzer, invariant layer.

The mirror contract in ``repro.dram.device`` says the inlined hot path must
stay bit-identical to ``PriorityTimeline.reserve`` + ``Accumulator.sample``.
These tests pin (a) that the oracle and the production device agree, (b)
that the fuzzer *detects* a device whose mirror is broken, and (c) that the
invariant layer is installed only when asked for and actually rejects
corrupted results.
"""

import dataclasses

import pytest

from repro.cli import main as cli_main
from repro.dram.device import AccessResult, DramDevice
from repro.dram.mapping import RowLocation
from repro.dram.timings import OFFCHIP_DDR3, STACKED_DRAM
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.verify import (
    InvariantChecker,
    InvariantViolation,
    OracleDramDevice,
    run_check,
)
from repro.verify.fuzzer import fuzz_device_pair, fuzz_system_pair
from repro.workloads.spec import build_workload

LOC = RowLocation(channel=0, bank=0, row=0)
OTHER_BANK = RowLocation(channel=0, bank=1, row=2)


def _small_workload(num_cores=1, reads=150, seed=3):
    return build_workload(
        "mcf_r", num_cores=num_cores, reads_per_core=reads, seed=seed
    )


class TestOracleDevice:
    """The oracle is a drop-in DramDevice built from reference calls."""

    def test_scripted_stream_bit_identical(self):
        dut = DramDevice(STACKED_DRAM)
        oracle = OracleDramDevice(STACKED_DRAM)
        script = [
            (0.0, LOC, None, False, False),
            (0.0, LOC, None, False, True),
            (0.0, OTHER_BANK, 5, True, True),
            (10.5, LOC, None, False, False),
            (10.5, OTHER_BANK, 1, False, False),
            (500.0, LOC, None, True, False),
        ]
        for now, loc, burst, w, b in script:
            got = dut.access(now, loc, burst, is_write=w, background=b)
            want = oracle.access(now, loc, burst, is_write=w, background=b)
            assert got == want
        assert dut.stats.as_dict() == oracle.stats.as_dict()

    def test_access_line_dispatches_through_oracle_access(self):
        dut = DramDevice(OFFCHIP_DDR3)
        oracle = OracleDramDevice(OFFCHIP_DDR3)
        for line in (0, 1, 4096, 1):
            assert dut.access_line(0.0, line) == oracle.access_line(0.0, line)

    def test_oracle_watermarks_match_production_policy(self):
        dut = DramDevice(STACKED_DRAM)
        oracle = OracleDramDevice(STACKED_DRAM)
        assert oracle._watermark() == dut._watermark()
        assert oracle._bus_watermark() == dut._bus_watermark()
        assert oracle._block_cap() == dut._block_cap()
        assert oracle._bus_block_cap() == dut._bus_block_cap()


class TestDeviceFuzzer:
    @pytest.mark.parametrize("page_policy", ["open", "closed"])
    @pytest.mark.parametrize("timings", [STACKED_DRAM, OFFCHIP_DDR3])
    def test_healthy_device_has_no_divergences(self, timings, page_policy):
        for seed in range(3):
            assert (
                fuzz_device_pair(timings, page_policy, seed, accesses=250)
                == []
            )

    def test_streams_are_deterministic_per_seed(self):
        # Same seed twice: identical outcome (no PYTHONHASHSEED leakage).
        a = fuzz_device_pair(STACKED_DRAM, "open", 7, accesses=100)
        b = fuzz_device_pair(STACKED_DRAM, "open", 7, accesses=100)
        assert a == b

    def test_detects_broken_bus_watermark_mirror(self):
        """The fuzzer must flag the exact bug this PR adjudicated: a bus
        drain threshold sized in bank-service units."""

        class OldBugDevice(DramDevice):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                hot = list(self._hot)
                hot[7] = self._watermark_value  # bus watermark slot
                self._hot = tuple(hot)

        found = sum(
            len(
                fuzz_device_pair(
                    STACKED_DRAM,
                    "open",
                    seed,
                    accesses=400,
                    dut_factory=OldBugDevice,
                )
            )
            for seed in range(5)
        )
        assert found > 0

    def test_detects_broken_timing_mirror(self):
        class SkewedDevice(DramDevice):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                hot = list(self._hot)
                hot[5] = hot[5] + 1  # bank block_cap off by one
                self._hot = tuple(hot)

        found = sum(
            len(
                fuzz_device_pair(
                    STACKED_DRAM,
                    "open",
                    seed,
                    accesses=400,
                    dut_factory=SkewedDevice,
                )
            )
            for seed in range(5)
        )
        assert found > 0


class TestSystemFuzzer:
    def test_paired_system_runs_identical(self):
        assert fuzz_system_pair(0, reads_per_core=150) == []

    def test_run_check_small_matrix(self):
        report = run_check(
            seeds=2, accesses=120, system_seeds=1, reads_per_core=150
        )
        assert report.ok
        assert report.device_streams == 2 * 4  # seeds x DEVICE_MATRIX
        assert report.device_accesses == 2 * 4 * 120
        assert report.system_runs == 1
        assert "OK" in report.render()


class TestInvariantChecker:
    def _result(self, **overrides):
        base = dict(
            start=5.0,
            data_ready=23.0,
            done=27.0,
            row_hit=True,
            queue_delay=5.0,
            bus_queue_delay=0.0,
            act_cycles=0.0,
            cas_cycles=18.0,
            burst_cycles=4.0,
        )
        base.update(overrides)
        return AccessResult(**base)

    def test_clean_access_passes(self):
        checker = InvariantChecker()
        checker.check_access("dev", 0.0, self._result())
        assert checker.accesses_checked == 1

    def test_time_order_violation(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="out of order"):
            checker.check_access("dev", 0.0, self._result(done=20.0))

    def test_queue_delay_mismatch(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="queue_delay"):
            checker.check_access("dev", 0.0, self._result(queue_delay=4.0))

    def test_decomposition_gap(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="stage fields"):
            checker.check_access("dev", 0.0, self._result(cas_cycles=17.0))

    def test_counter_conservation_violation(self):
        device = DramDevice(STACKED_DRAM)
        device.access(0.0, LOC)
        device.stats.counter("row_hits").add(5)  # corrupt the books
        with pytest.raises(InvariantViolation, match="activations"):
            InvariantChecker().check_device_totals(device)

    def test_outcome_breakdown_must_cover_latency(self):
        from repro.dramcache.base import AccessOutcome
        from repro.lifecycle import LatencyBreakdown

        checker = InvariantChecker()
        bad = AccessOutcome(
            done=100.0,
            cache_hit=True,
            served_by_memory=False,
            breakdown=LatencyBreakdown({"data": 40.0}),
        )
        with pytest.raises(InvariantViolation, match="breakdown total"):
            checker.check_outcome("design", 0.0, False, bad)

    def test_outcome_missing_breakdown(self):
        from repro.dramcache.base import AccessOutcome

        checker = InvariantChecker()
        bad = AccessOutcome(done=1.0, cache_hit=True, served_by_memory=False)
        with pytest.raises(InvariantViolation, match="no latency breakdown"):
            checker.check_outcome("design", 0.0, False, bad)

    def test_writes_are_not_audited(self):
        from repro.dramcache.base import AccessOutcome

        checker = InvariantChecker()
        posted = AccessOutcome(done=0.0, cache_hit=False, served_by_memory=True)
        checker.check_outcome("design", 0.0, True, posted)
        assert checker.reads_checked == 0


class TestSystemWiring:
    def test_default_config_installs_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        system = System(
            SystemConfig(num_cores=1), "alloy-map-i", _small_workload()
        )
        assert system.checker is None
        # No instance-level wrappers shadowing the class methods.
        assert "access" not in vars(system.stacked)
        assert "handle" not in vars(system.design)

    def test_config_flag_installs_and_run_passes(self):
        system = System(
            SystemConfig(num_cores=1, verify=True),
            "alloy-map-i",
            _small_workload(),
        )
        assert system.checker is not None
        assert "access" in vars(system.stacked)
        result = system.run()
        assert system.checker.accesses_checked > 0
        assert system.checker.reads_checked > 0
        assert result.unattributed_cycles == 0.0

    def test_env_flag_installs(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        system = System(
            SystemConfig(num_cores=1), "sram-tag", _small_workload()
        )
        assert system.checker is not None

    def test_env_flag_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        system = System(
            SystemConfig(num_cores=1), "sram-tag", _small_workload()
        )
        assert system.checker is None

    def test_verified_run_matches_unverified_run(self):
        workload = _small_workload()
        plain = System(
            SystemConfig(num_cores=1), "lh-cache", workload
        ).run()
        checked = System(
            SystemConfig(num_cores=1, verify=True), "lh-cache", workload
        ).run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(checked)


class TestCheckCli:
    def test_check_verb_passes(self, capsys):
        code = cli_main(
            [
                "check",
                "--seeds",
                "1",
                "--accesses",
                "120",
                "--system-seeds",
                "1",
                "--reads",
                "150",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK: zero inlined-vs-oracle divergences" in out

    def test_check_rejects_bad_seeds(self, capsys):
        assert cli_main(["check", "--seeds", "0"]) == 2

    def test_check_listed_as_verb(self, capsys):
        cli_main(["--list"])
        assert "check" in capsys.readouterr().out
