"""Tests for the synthetic access-pattern generators."""

import numpy as np
import pytest

from repro.units import MB
from repro.workloads.patterns import (
    Component,
    PatternConfig,
    generate_core_trace,
)


def one_component_config(kind, region=1 * MB, **kwargs):
    return PatternConfig(
        name=f"test-{kind}",
        mpki=20.0,
        components=(Component(kind, 1.0, region, **kwargs),),
        write_fraction=0.0,
        gap_mean_cycles=50.0,
    )


class TestGeneration:
    def test_read_count(self):
        trace = generate_core_trace(one_component_config("hot"), 500, seed=1)
        assert trace.num_reads == 500

    def test_deterministic(self):
        cfg = one_component_config("zipf")
        a = generate_core_trace(cfg, 300, seed=9)
        b = generate_core_trace(cfg, 300, seed=9)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.pcs, b.pcs)

    def test_seed_changes_trace(self):
        cfg = one_component_config("hot")
        a = generate_core_trace(cfg, 300, seed=1)
        b = generate_core_trace(cfg, 300, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_base_line_offsets_everything(self):
        cfg = one_component_config("hot", region=1 * MB)
        trace = generate_core_trace(cfg, 200, seed=1, base_line=10_000_000)
        assert int(trace.addresses.min()) >= 10_000_000

    def test_footprint_scaling(self):
        cfg = one_component_config("sequential", region=64 * MB, run_length=16)
        small = generate_core_trace(cfg, 2000, seed=1, capacity_scale=1024)
        large = generate_core_trace(cfg, 2000, seed=1, capacity_scale=64)
        # A smaller scaled region is covered repeatedly -> fewer uniques.
        assert small.unique_lines() < large.unique_lines()

    def test_addresses_stay_in_region(self):
        cfg = one_component_config("pointer", region=1 * MB)
        trace = generate_core_trace(cfg, 500, seed=3, capacity_scale=256)
        region_lines = 1 * MB // 256 // 64
        assert int(trace.addresses.max()) < region_lines


class TestComponentKinds:
    def test_sequential_is_mostly_consecutive(self):
        cfg = one_component_config("sequential", region=16 * MB, run_length=32)
        trace = generate_core_trace(cfg, 1000, seed=1)
        diffs = np.diff(trace.addresses)
        assert float(np.mean(diffs == 1)) > 0.9

    def test_hot_reuses_lines(self):
        cfg = one_component_config("hot", region=64 * 1024)  # 4 scaled lines
        trace = generate_core_trace(cfg, 1000, seed=1)
        assert trace.unique_lines() <= 4

    def test_zipf_is_skewed(self):
        cfg = one_component_config("zipf", region=16 * MB, zipf_alpha=1.3)
        trace = generate_core_trace(cfg, 5000, seed=1)
        values, counts = np.unique(trace.addresses, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The hottest line takes a disproportionate share.
        assert counts[0] > 5 * counts[len(counts) // 2]

    def test_pointer_rarely_reuses(self):
        cfg = one_component_config("pointer", region=64 * MB)
        trace = generate_core_trace(cfg, 1000, seed=1)
        # ~4096-line region, 1000 draws: birthday collisions only.
        assert trace.unique_lines() > 800

    def test_unknown_kind_raises(self):
        cfg = one_component_config("markov")
        with pytest.raises(ValueError, match="unknown component kind"):
            generate_core_trace(cfg, 10, seed=1)


class TestMixtures:
    def test_per_access_weights_respected(self):
        """Long sequential runs must not inflate their access share."""
        cfg = PatternConfig(
            name="mix",
            mpki=20.0,
            components=(
                Component("sequential", 0.5, 64 * MB, run_length=64),
                Component("hot", 0.5, 1 * MB),
            ),
            write_fraction=0.0,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 20_000, seed=1)
        seq_lines = 64 * MB // 256 // 64
        hot_fraction = float(np.mean(trace.addresses >= seq_lines))
        assert 0.35 < hot_fraction < 0.65

    def test_components_laid_out_disjoint(self):
        cfg = PatternConfig(
            name="mix",
            mpki=20.0,
            components=(
                Component("hot", 0.5, 1 * MB),
                Component("hot", 0.5, 1 * MB),
            ),
            write_fraction=0.0,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 2000, seed=1)
        region = 1 * MB // 256 // 64
        # Both regions get touched.
        assert bool((trace.addresses < region).any())
        assert bool((trace.addresses >= region).any())


class TestGapsAndWrites:
    def test_gap_mean_calibrated(self):
        cfg = one_component_config("hot")
        trace = generate_core_trace(cfg, 20_000, seed=1)
        read_gaps = trace.gaps[~trace.is_write]
        assert float(read_gaps.mean()) == pytest.approx(50.0, rel=0.1)

    def test_gap_fallback_from_mpki(self):
        cfg = PatternConfig(
            name="nogap",
            mpki=10.0,
            components=(Component("hot", 1.0, 1 * MB),),
            write_fraction=0.0,
        )
        trace = generate_core_trace(cfg, 10_000, seed=1)
        # 1000/10 instructions * 0.25 CPI = 25 cycles.
        assert float(trace.gaps.mean()) == pytest.approx(25.0, rel=0.15)

    def test_write_fraction(self):
        cfg = PatternConfig(
            name="writes",
            mpki=20.0,
            components=(Component("hot", 1.0, 1 * MB),),
            write_fraction=0.25,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 3000, seed=1)
        fraction = trace.num_writes / len(trace)
        assert fraction == pytest.approx(0.25, abs=0.02)

    def test_writes_have_zero_gap(self):
        cfg = PatternConfig(
            name="writes",
            mpki=20.0,
            components=(Component("hot", 1.0, 1 * MB),),
            write_fraction=0.3,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 1000, seed=1)
        assert float(trace.gaps[trace.is_write].sum()) == 0.0

    def test_writebacks_revisit_read_addresses(self):
        cfg = PatternConfig(
            name="writes",
            mpki=20.0,
            components=(Component("hot", 1.0, 4 * MB),),
            write_fraction=0.3,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 1000, seed=1)
        reads = set(trace.addresses[~trace.is_write].tolist())
        writes = set(trace.addresses[trace.is_write].tolist())
        assert writes <= reads

    def test_instruction_count_from_mpki(self):
        cfg = one_component_config("hot")
        trace = generate_core_trace(cfg, 1000, seed=1)
        assert trace.instructions == int(1000 * 1000 / 20.0)
