"""Tests for the multi-core system simulator and runner."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import (
    baseline_result,
    compare_designs,
    geometric_mean,
    run_benchmark,
    run_design,
    speedup,
)
from repro.sim.system import System
from repro.units import MB
from repro.workloads.trace import CoreTrace, Workload


def tiny_config(num_cores=2):
    return SystemConfig(
        num_cores=num_cores, cache_size_bytes=256 * MB, capacity_scale=4096
    )


def single_read_workload(num_cores=2, address=0):
    cores = []
    for core_id in range(num_cores):
        cores.append(
            CoreTrace(
                gaps=np.array([10.0]),
                addresses=np.array([address + core_id * 100_000], dtype=np.int64),
                is_write=np.array([False]),
                pcs=np.array([0x400], dtype=np.int64),
                instructions=100,
            )
        )
    return Workload("single", cores)


def looping_workload(num_cores=2, n=50, span=8):
    cores = []
    for core_id in range(num_cores):
        addrs = [(core_id * 100_000) + (i % span) for i in range(n)]
        cores.append(
            CoreTrace(
                gaps=np.full(n, 5.0),
                addresses=np.array(addrs, dtype=np.int64),
                is_write=np.zeros(n, dtype=bool),
                pcs=np.full(n, 0x400, dtype=np.int64),
                instructions=n * 50,
            )
        )
    return Workload("loop", cores)


class TestSystemBasics:
    def test_core_count_must_match(self):
        with pytest.raises(ValueError):
            System(tiny_config(num_cores=4), "no-cache", single_read_workload(2))

    def test_single_read_latency_no_cache(self):
        """gap 10 + L3 lookup 24 + memory type-Y 88 = 122."""
        system = System(
            tiny_config(), "no-cache", single_read_workload(), warmup_fraction=0.0
        )
        result = system.run()
        assert result.cycles == pytest.approx(122.0)

    def test_perfect_l3_single_read(self):
        system = System(
            tiny_config(), "perfect-l3", single_read_workload(), warmup_fraction=0.0
        )
        assert system.run().cycles == pytest.approx(34.0)  # gap 10 + L3 24

    def test_result_metadata(self):
        system = System(tiny_config(), "no-cache", single_read_workload())
        result = system.run()
        assert result.design == "no-cache"
        assert result.workload == "single"
        assert len(result.per_core_cycles) == 2

    def test_warmup_shortens_timed_phase(self):
        wl = looping_workload()
        cold = System(tiny_config(), "alloy-nopred", wl, warmup_fraction=0.0).run()
        warm = System(tiny_config(), "alloy-nopred", wl, warmup_fraction=0.5).run()
        assert warm.cycles < cold.cycles
        assert warm.read_hit_rate >= cold.read_hit_rate

    def test_warm_cache_turns_loop_into_hits(self):
        result = System(
            tiny_config(), "alloy-nopred", looping_workload(), warmup_fraction=0.25
        ).run()
        assert result.read_hit_rate > 0.9

    def test_deterministic(self):
        a = System(tiny_config(), "lh-cache", looping_workload()).run()
        b = System(tiny_config(), "lh-cache", looping_workload()).run()
        assert a.cycles == b.cycles
        assert a.read_hit_rate == b.read_hit_rate

    def test_background_work_drains(self):
        system = System(tiny_config(), "sram-tag", looping_workload())
        system.run()
        assert not system._heap

    def test_memory_reads_counted_on_misses(self):
        result = System(
            tiny_config(), "no-cache", looping_workload(), warmup_fraction=0.0
        ).run()
        assert result.memory_reads > 0


class TestRunner:
    def test_run_design_on_workload(self):
        result = run_design("no-cache", looping_workload(), tiny_config())
        assert result.cycles > 0

    def test_run_benchmark(self):
        result = run_benchmark(
            "alloy-map-i", "sphinx_r", tiny_config(num_cores=8), reads_per_core=300
        )
        assert result.design == "alloy-map-i"
        assert result.instructions > 0

    def test_speedup_cache_beats_baseline_on_friendly_workload(self):
        config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=256)
        s, result = speedup("alloy-map-i", "sphinx_r", config, reads_per_core=1500)
        assert s > 1.1
        assert result.read_hit_rate > 0.5

    def test_baseline_cached(self):
        config = tiny_config(num_cores=8)
        a = baseline_result("gcc_r", config, reads_per_core=300)
        b = baseline_result("gcc_r", config, reads_per_core=300)
        assert a is b

    def test_compare_designs(self):
        config = tiny_config(num_cores=8)
        out = compare_designs(
            ("no-cache", "perfect-l3"), "gcc_r", config, reads_per_core=300
        )
        assert out["no-cache"][0] == pytest.approx(1.0)
        assert out["perfect-l3"][0] > 1.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSimResultDerived:
    def test_speedup_vs(self):
        base = run_design("no-cache", looping_workload(), tiny_config())
        fast = run_design("perfect-l3", looping_workload(), tiny_config())
        assert fast.speedup_vs(base) > 1.0

    def test_predictor_accuracy_none_without_scenarios(self):
        result = run_design("no-cache", looping_workload(), tiny_config())
        assert result.predictor_accuracy() is None

    def test_scenario_fractions_sum_to_one(self):
        result = run_design("alloy-map-i", looping_workload(), tiny_config())
        fractions = result.scenario_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestLifecycleStages:
    """Full-system per-stage attribution: no cycle ever goes missing."""

    DESIGNS = ("no-cache", "sram-tag", "lh-cache", "ideal-lo", "alloy-map-i")

    @pytest.mark.parametrize("design", DESIGNS)
    def test_stage_means_sum_to_read_latency(self, design):
        result = System(
            tiny_config(), design, looping_workload(n=120, span=40)
        ).run()
        assert result.stage_latency_means  # populated for every design
        assert sum(result.stage_latency_means.values()) == pytest.approx(
            result.avg_read_latency
        )

    @pytest.mark.parametrize("design", DESIGNS)
    def test_no_unattributed_cycles(self, design):
        result = System(
            tiny_config(), design, looping_workload(n=120, span=40)
        ).run()
        assert result.unattributed_cycles == 0.0

    def test_canonical_stage_keys(self):
        from repro.lifecycle import STAGES

        result = System(tiny_config(), "alloy-map-i", looping_workload()).run()
        assert set(result.stage_latency_means) == set(STAGES)
        assert set(result.stage_latency_p95) == set(STAGES)

    def test_sram_tag_pays_tag_serialization_on_every_read(self):
        result = System(tiny_config(), "sram-tag", looping_workload()).run()
        assert result.stage_latency_means["tag"] == pytest.approx(24.0)

    def test_no_cache_is_all_memory_and_queue(self):
        result = System(
            tiny_config(), "no-cache", looping_workload(), warmup_fraction=0.0
        ).run()
        means = result.stage_latency_means
        assert means["predictor"] == 0.0
        assert means["tag"] == 0.0
        assert means["data"] == 0.0
        assert means["memory"] > 0.0
