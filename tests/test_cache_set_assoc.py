"""Tests for the functional set-associative cache."""

import pytest

from repro.cache.replacement import LRUPolicy, RandomPolicy
from repro.cache.set_assoc import SetAssocCache


@pytest.fixture
def cache():
    return SetAssocCache(num_sets=4, ways=2, policy=LRUPolicy())


class TestBasics:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 2)
        with pytest.raises(ValueError):
            SetAssocCache(4, 0)

    def test_capacity(self, cache):
        assert cache.capacity_lines == 8

    def test_set_index_is_modulo(self, cache):
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_non_power_of_two_sets(self):
        c = SetAssocCache(num_sets=29, ways=1)
        assert c.set_index(30) == 1


class TestLookupAndFill:
    def test_miss_on_empty(self, cache):
        assert not cache.lookup(0)

    def test_fill_then_hit(self, cache):
        cache.fill(0)
        assert cache.lookup(0)

    def test_probe_does_not_count(self, cache):
        cache.fill(0)
        cache.probe(0)
        assert cache.stats.counter("hits").value == 0

    def test_same_set_different_tags(self, cache):
        cache.fill(0)
        cache.fill(4)  # same set (mod 4), second way
        assert cache.lookup(0) and cache.lookup(4)

    def test_eviction_on_full_set(self, cache):
        cache.fill(0)
        cache.fill(4)
        evicted = cache.fill(8)  # set 0 full -> evict LRU (line 0)
        assert evicted.valid
        assert evicted.line_address == 0
        assert not cache.probe(0)

    def test_lru_protects_recent(self, cache):
        cache.fill(0)
        cache.fill(4)
        cache.lookup(0)  # promote 0
        evicted = cache.fill(8)
        assert evicted.line_address == 4

    def test_fill_existing_refreshes(self, cache):
        cache.fill(0)
        cache.fill(4)
        evicted = cache.fill(0)  # re-fill resident line
        assert not evicted.valid
        assert cache.probe(0) and cache.probe(4)

    def test_fill_empty_way_no_eviction(self, cache):
        assert not cache.fill(0).valid


class TestDirty:
    def test_write_hit_sets_dirty(self, cache):
        cache.fill(0)
        cache.lookup(0, is_write=True)
        assert cache.is_dirty(0)

    def test_read_does_not_dirty(self, cache):
        cache.fill(0)
        cache.lookup(0)
        assert not cache.is_dirty(0)

    def test_fill_dirty(self, cache):
        cache.fill(0, dirty=True)
        assert cache.is_dirty(0)

    def test_dirty_eviction_flagged(self, cache):
        cache.fill(0, dirty=True)
        cache.fill(4)
        evicted = cache.fill(8)
        assert evicted.dirty and evicted.line_address == 0

    def test_refill_preserves_dirty(self, cache):
        cache.fill(0, dirty=True)
        cache.fill(0, dirty=False)
        assert cache.is_dirty(0)

    def test_is_dirty_absent_line(self, cache):
        assert not cache.is_dirty(99)


class TestInvalidate:
    def test_invalidate_removes(self, cache):
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)

    def test_invalidate_absent(self, cache):
        assert not cache.invalidate(0)

    def test_invalidate_clears_dirty(self, cache):
        cache.fill(0, dirty=True)
        cache.invalidate(0)
        cache.fill(0)
        assert not cache.is_dirty(0)


class TestStatsAndIntrospection:
    def test_hit_rate(self, cache):
        cache.fill(0)
        cache.lookup(0)
        cache.lookup(1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self, cache):
        assert cache.hit_rate == 0.0

    def test_occupancy(self, cache):
        assert cache.occupancy() == 0.0
        cache.fill(0)
        cache.fill(1)
        assert cache.occupancy() == pytest.approx(0.25)

    def test_resident_lines(self, cache):
        cache.fill(0)
        cache.fill(5)
        assert sorted(cache.resident_lines()) == [0, 5]

    def test_set_contents(self, cache):
        cache.fill(0, dirty=True)
        tags, dirty = cache.set_contents(0)
        assert 0 in tags
        assert dirty[tags.index(0)]

    def test_dirty_eviction_counter(self, cache):
        cache.fill(0, dirty=True)
        cache.fill(4)
        cache.fill(8)
        assert cache.stats.counter("dirty_evictions").value == 1

    def test_no_duplicate_tags_after_churn(self):
        cache = SetAssocCache(3, 4, policy=RandomPolicy(seed=1))
        for i in range(300):
            line = i % 30
            if not cache.lookup(line):
                cache.fill(line)
        for s in range(3):
            tags, _ = cache.set_contents(s)
            real = [t for t in tags if t != -1]
            assert len(real) == len(set(real))
