"""Tests for the shared-workload fabric: arena caching + shm fan-out."""

import dataclasses
import hashlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.sim.parallel import ResultCache, make_cells, run_sweep
from repro.workloads.arena import (
    GENERATOR_VERSION,
    WorkloadArena,
    WorkloadParams,
    acquire_shared_workload,
    attach_workload,
    load_arena,
    owned_segment_names,
    release_all_segments,
    release_idle_segments,
    release_segment,
    release_shared_workload,
    save_arena,
    segment_pool_stats,
    set_idle_segment_cap,
    share_workload,
)
from repro.workloads.spec import build_workload, generate_workload

PARAMS = WorkloadParams(benchmark="gcc_r", reads_per_core=400)


def workload_digest(workload) -> str:
    """Content hash over every array and the instruction counts."""
    h = hashlib.sha256()
    for trace in workload.cores:
        for arr in (
            trace.gaps,
            trace.addresses,
            trace.is_write,
            trace.pcs,
            trace.dependent_flags(),
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        h.update(str(trace.instructions).encode())
    return h.hexdigest()


def assert_workloads_identical(a, b) -> None:
    assert a.name == b.name
    assert a.num_cores == b.num_cores
    for ta, tb in zip(a.cores, b.cores):
        assert np.array_equal(ta.gaps, tb.gaps)
        assert np.array_equal(ta.addresses, tb.addresses)
        assert np.array_equal(ta.is_write, tb.is_write)
        assert np.array_equal(ta.pcs, tb.pcs)
        assert np.array_equal(ta.dependent_flags(), tb.dependent_flags())
        assert ta.instructions == tb.instructions


# -- pool workers need a module-level function (must pickle) -----------
def _build_digest_in_worker(benchmark: str, reads: int) -> str:
    return workload_digest(
        generate_workload(benchmark, reads_per_core=reads)
    )


def _attach_digest_in_worker(handle) -> str:
    workload, shm = attach_workload(handle)
    digest = workload_digest(workload)
    del workload
    shm.close()
    return digest


class TestDeterminism:
    def test_same_params_bit_identical_in_process(self):
        a = generate_workload("gcc_r", reads_per_core=400)
        b = generate_workload("gcc_r", reads_per_core=400)
        assert_workloads_identical(a, b)

    def test_arena_fetch_matches_direct_generation(self, tmp_path):
        arena = WorkloadArena(directory=tmp_path)
        fetched, telemetry = arena.fetch(PARAMS)
        assert telemetry["trace_source"] == "built"
        assert telemetry["trace_build_seconds"] > 0
        assert_workloads_identical(
            fetched, generate_workload("gcc_r", reads_per_core=400)
        )

    def test_bit_identical_inside_pool_worker(self):
        """A forked worker's generators produce the parent's exact bytes."""
        parent = workload_digest(
            generate_workload("gcc_r", reads_per_core=400)
        )
        with ProcessPoolExecutor(max_workers=1) as pool:
            child = pool.submit(
                _build_digest_in_worker, "gcc_r", 400
            ).result()
        assert child == parent


class TestArenaTiers:
    def test_memo_then_npz_tiers(self, tmp_path):
        arena = WorkloadArena(directory=tmp_path)
        built, t1 = arena.fetch(PARAMS)
        assert t1["trace_source"] == "built"
        again, t2 = arena.fetch(PARAMS)
        assert t2["trace_source"] == "memo"
        assert again is built
        # A fresh arena over the same directory (a new process) loads the
        # persisted .npz instead of rebuilding — bit-identically.
        fresh = WorkloadArena(directory=tmp_path)
        loaded, t3 = fresh.fetch(PARAMS)
        assert t3["trace_source"] == "npz"
        assert_workloads_identical(loaded, built)

    def test_npz_round_trip_bit_identical(self, tmp_path):
        workload = generate_workload("mcf_r", reads_per_core=300)
        params = WorkloadParams(benchmark="mcf_r", reads_per_core=300)
        path = tmp_path / "arena.npz"
        save_arena(path, workload, params)
        loaded = load_arena(path, params)
        assert_workloads_identical(loaded, workload)

    def test_persist_disabled_writes_nothing(self, tmp_path):
        arena = WorkloadArena(directory=tmp_path, persist=False)
        arena.fetch(PARAMS)
        assert not list(tmp_path.glob("*.npz"))

    def test_trace_cache_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        arena = WorkloadArena(directory=tmp_path)
        arena.fetch(PARAMS)
        assert not list(tmp_path.glob("*.npz"))

    def test_corrupt_arena_is_a_miss(self, tmp_path):
        arena = WorkloadArena(directory=tmp_path)
        built, _ = arena.fetch(PARAMS)
        path = arena._path(PARAMS.key())
        path.write_bytes(b"not an npz")
        fresh = WorkloadArena(directory=tmp_path)
        rebuilt, telemetry = fresh.fetch(PARAMS)
        assert telemetry["trace_source"] == "built"
        assert_workloads_identical(rebuilt, built)

    def test_stale_generator_version_rejected(self, tmp_path, monkeypatch):
        workload = generate_workload("gcc_r", reads_per_core=400)
        path = tmp_path / "arena.npz"
        save_arena(path, workload, PARAMS)
        import repro.workloads.arena as arena_mod

        monkeypatch.setattr(
            arena_mod, "GENERATOR_VERSION", GENERATOR_VERSION + 1
        )
        assert load_arena(path, PARAMS) is None

    def test_every_param_changes_key(self):
        reference = PARAMS.key()
        for change in (
            {"benchmark": "mcf_r"},
            {"num_cores": 4},
            {"reads_per_core": 401},
            {"capacity_scale": 512},
            {"seed": 2},
        ):
            assert (
                dataclasses.replace(PARAMS, **change).key() != reference
            ), change

    def test_generator_version_participates_in_key(self, monkeypatch):
        import repro.workloads.arena as arena_mod

        reference = PARAMS.key()
        monkeypatch.setattr(
            arena_mod, "GENERATOR_VERSION", GENERATOR_VERSION + 1
        )
        assert PARAMS.key() != reference

    def test_build_workload_canonicalizes_names(self):
        assert build_workload("gcc", reads_per_core=400) is build_workload(
            "gcc_r", reads_per_core=400
        )


class TestSharedMemory:
    def test_share_attach_round_trip(self):
        workload = generate_workload("gcc_r", reads_per_core=400)
        handle = share_workload(PARAMS.key(), workload)
        try:
            assert handle.shm_name in owned_segment_names()
            attached, shm = attach_workload(handle)
            assert_workloads_identical(attached, workload)
            del attached
            shm.close()
        finally:
            release_segment(handle.shm_name)
        assert handle.shm_name not in owned_segment_names()

    def test_attach_bit_identical_inside_pool_worker(self):
        workload = generate_workload("gcc_r", reads_per_core=400)
        handle = share_workload(PARAMS.key(), workload)
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                child = pool.submit(
                    _attach_digest_in_worker, handle
                ).result()
            assert child == workload_digest(workload)
        finally:
            release_segment(handle.shm_name)

    def test_release_is_idempotent(self):
        workload = generate_workload("gcc_r", reads_per_core=400)
        handle = share_workload(PARAMS.key(), workload)
        release_segment(handle.shm_name)
        release_segment(handle.shm_name)
        release_all_segments()


class TestSegmentPool:
    """Refcounted segment pool: sharing, idle LRU, eager default."""

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        previous = set_idle_segment_cap(0)
        yield
        set_idle_segment_cap(0)
        release_all_segments()
        set_idle_segment_cap(previous)

    def _workload(self, benchmark="gcc_r"):
        return generate_workload(benchmark, reads_per_core=400)

    def test_concurrent_acquires_share_one_segment(self):
        key = PARAMS.key()
        workload = self._workload()
        first = acquire_shared_workload(key, workload)
        second = acquire_shared_workload(key, workload)
        assert second.shm_name == first.shm_name
        assert segment_pool_stats() == {"pooled": 1, "active": 1, "idle": 0}
        release_shared_workload(key)
        # One holder remains: the segment must survive.
        assert first.shm_name in owned_segment_names()
        release_shared_workload(key)
        # Cap 0 (the run_sweep contract): last release unlinks eagerly.
        assert first.shm_name not in owned_segment_names()
        assert segment_pool_stats()["pooled"] == 0

    def test_idle_cap_keeps_segment_for_reuse(self):
        set_idle_segment_cap(1)
        key = PARAMS.key()
        first = acquire_shared_workload(key, self._workload())
        release_shared_workload(key)
        assert segment_pool_stats() == {"pooled": 1, "active": 0, "idle": 1}
        assert first.shm_name in owned_segment_names()
        again = acquire_shared_workload(key, self._workload())
        assert again.shm_name == first.shm_name  # no re-pack
        release_shared_workload(key)

    def test_idle_eviction_is_lru(self):
        set_idle_segment_cap(1)
        old_key = PARAMS.key()
        new_key = dataclasses.replace(PARAMS, benchmark="mcf_r").key()
        old = acquire_shared_workload(old_key, self._workload())
        new = acquire_shared_workload(new_key, self._workload("mcf_r"))
        release_shared_workload(old_key)
        release_shared_workload(new_key)
        # Only the most recently released segment fits under the cap.
        assert old.shm_name not in owned_segment_names()
        assert new.shm_name in owned_segment_names()

    def test_release_idle_segments_drains_now(self):
        set_idle_segment_cap(4)
        key = PARAMS.key()
        handle = acquire_shared_workload(key, self._workload())
        release_shared_workload(key)
        assert release_idle_segments() == 1
        assert handle.shm_name not in owned_segment_names()
        assert segment_pool_stats()["pooled"] == 0

    def test_lowering_cap_evicts_existing_idle(self):
        set_idle_segment_cap(2)
        key = PARAMS.key()
        handle = acquire_shared_workload(key, self._workload())
        release_shared_workload(key)
        set_idle_segment_cap(0)
        assert handle.shm_name not in owned_segment_names()

    def test_release_all_segments_forgets_pool_entries(self):
        set_idle_segment_cap(2)
        key = PARAMS.key()
        acquire_shared_workload(key, self._workload())
        release_all_segments()
        assert segment_pool_stats()["pooled"] == 0
        assert owned_segment_names() == ()


class TestSweepCleanup:
    """No shared-memory segment may outlive run_sweep."""

    def _cells(self, designs=("no-cache", "alloy-map-i")):
        return make_cells(
            designs,
            ("sphinx_r",),
            config=SystemConfig(capacity_scale=4096),
            reads_per_core=300,
        )

    def test_no_segments_after_parallel_sweep(self, tmp_path):
        report = run_sweep(
            self._cells(),
            max_workers=2,
            cache=ResultCache(tmp_path / "cache", persist=True),
        )
        assert report.cache_misses == 2
        assert owned_segment_names() == ()

    def test_no_segments_after_worker_exception(self, tmp_path):
        """A design that explodes in the worker must not leak segments."""
        cells = self._cells(designs=("no-cache", "no-such-design"))
        with pytest.raises(Exception):
            run_sweep(
                cells,
                max_workers=2,
                cache=ResultCache(tmp_path / "cache", persist=True),
                use_cache=False,
            )
        assert owned_segment_names() == ()
