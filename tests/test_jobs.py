"""Tests for the resumable job layer (repro.jobs).

The load-bearing property: a job killed mid-run — by an exception in the
parent, by a simulated pool collapse, or by a hard SIGKILL of a worker —
must, on resume, produce a SweepReport whose per-cell SimResults are
``dataclasses.asdict``-identical to an uninterrupted run, replaying only
the missing cells.
"""

import dataclasses
import json
import os

import pytest

from repro.jobs import (
    JOURNAL_NAME,
    JobJournal,
    create_job,
    ephemeral_job,
    job_id_for,
    jobs_root,
    list_jobs,
    open_job,
    remove_job,
    resume_job,
    submit_job,
)
from repro.sim import parallel as _par
from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ResultCache,
    make_cells,
    run_sweep,
    shutdown_worker_pool,
)

DESIGNS = ("no-cache", "alloy-map-i")
BENCHMARKS = ("sphinx_r", "gcc_r")


def tiny_config() -> SystemConfig:
    return SystemConfig(capacity_scale=4096)


def tiny_cells(reads=250):
    return make_cells(
        DESIGNS, BENCHMARKS, config=tiny_config(), reads_per_core=reads
    )


def results_by_grid(report):
    return {
        (c.cell.design, c.cell.benchmark): dataclasses.asdict(c.result)
        for c in report.cells
    }


def _dying_worker(*args, **kwargs):  # pragma: no cover - runs in a child
    os._exit(1)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache", persist=True)


class TestJournal:
    def test_record_and_load_round_trip(self, tmp_path, cache):
        job = create_job("rt", tiny_cells(), cache_dir=tmp_path)
        submit_job(job, cache=cache)
        journal = job.journal()
        entries = journal.load()
        assert set(entries) == {c.key() for c in job.cells}
        for cell in job.cells:
            result, telemetry = entries[cell.key()]
            assert result.cycles > 0
            assert "wall_seconds" in telemetry

    def test_header_line_written_once(self, tmp_path, cache):
        job = create_job("hdr", tiny_cells(), cache_dir=tmp_path)
        submit_job(job, cache=cache)
        submit_job(job, cache=cache)
        lines = job.journal_path.read_text().splitlines()
        headers = [
            json.loads(line)
            for line in lines
            if json.loads(line).get("kind") == "header"
        ]
        assert len(headers) == 1
        assert headers[0]["job_id"] == job.job_id

    def test_truncated_last_line_dropped_not_fatal(self, tmp_path, cache):
        job = create_job("trunc", tiny_cells(), cache_dir=tmp_path)
        submit_job(job, cache=cache)
        raw = job.journal_path.read_bytes()
        # Chop the file mid-way through its final record, as a crash
        # during an append would.
        job.journal_path.write_bytes(raw[: len(raw) - 40])
        journal = job.journal()
        entries = journal.load()
        assert journal.dropped == 1
        assert len(entries) == len(job.cells) - 1

    def test_corrupt_interior_line_dropped(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text('{"kind":"header","schema":1}\nnot json at all\n')
        journal = JobJournal(path)
        assert journal.load() == {}
        assert journal.dropped == 1

    def test_resume_after_truncation_refills_missing_cell(
        self, tmp_path, cache
    ):
        job = create_job("refill", tiny_cells(), cache_dir=tmp_path)
        submit_job(job, cache=cache, use_cache=False)
        raw = job.journal_path.read_bytes()
        job.journal_path.write_bytes(raw[: len(raw) - 40])
        report = submit_job(job, cache=cache, use_cache=False)
        assert len(report.cells) == len(job.cells)
        assert job.journal().completed_count() == len(job.cells)


class TestManager:
    def test_job_id_is_content_keyed_and_order_independent(self):
        cells = tiny_cells()
        assert job_id_for("x", cells) == job_id_for("x", cells[::-1])
        assert job_id_for("x", cells) != job_id_for("y", cells)
        assert job_id_for("x", cells) != job_id_for("x", cells[:2])

    def test_create_is_idempotent(self, tmp_path):
        first = create_job("idem", tiny_cells(), cache_dir=tmp_path)
        again = create_job("idem", tiny_cells(), cache_dir=tmp_path)
        assert first.directory == again.directory
        assert len(list(jobs_root(tmp_path).iterdir())) == 1

    def test_manifest_round_trips_full_config(self, tmp_path):
        config = SystemConfig(
            capacity_scale=4096, stacked_page_policy="closed", mshrs_per_core=7
        )
        cells = make_cells(
            DESIGNS, BENCHMARKS, config=config, reads_per_core=123, seed=9
        )
        job = create_job("cfg", cells, cache_dir=tmp_path)
        reopened = open_job(job.job_id, cache_dir=tmp_path)
        assert [c.key() for c in reopened.cells] == [c.key() for c in cells]
        assert reopened.cells[0].config == config

    def test_from_dict_ignores_unknown_keys(self):
        data = dataclasses.asdict(tiny_config())
        data["some_future_field"] = 42
        assert SystemConfig.from_dict(data) == tiny_config()

    def test_open_by_name_and_ambiguity(self, tmp_path):
        create_job("dup", tiny_cells(), cache_dir=tmp_path)
        assert open_job("dup", cache_dir=tmp_path).name == "dup"
        create_job("dup", tiny_cells(reads=111), cache_dir=tmp_path)
        with pytest.raises(KeyError, match="ambiguous"):
            open_job("dup", cache_dir=tmp_path)

    def test_open_unknown_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no job"):
            open_job("nope", cache_dir=tmp_path)

    def test_list_and_remove(self, tmp_path, cache):
        job = create_job("lr", tiny_cells(), cache_dir=tmp_path)
        infos = list_jobs(tmp_path)
        assert [i.job_id for i in infos] == [job.job_id]
        assert infos[0].completed_cells == 0
        assert infos[0].total_cells == len(job.cells)
        submit_job(job, cache=cache)
        assert list_jobs(tmp_path)[0].completed_cells == len(job.cells)
        remove_job(job.job_id, cache_dir=tmp_path)
        assert list_jobs(tmp_path) == []

    def test_ephemeral_job_has_no_journal(self):
        job = ephemeral_job(tiny_cells())
        assert job.journal() is None
        assert job.journal_path is None


class TestRunSweepDelegation:
    def test_run_sweep_matches_submitted_job(self, tmp_path, cache):
        """run_sweep (ephemeral job) and a journaled job must agree."""
        via_sweep = run_sweep(tiny_cells(), cache=cache, use_cache=False)
        job = create_job("delegate", tiny_cells(), cache_dir=tmp_path)
        via_job = submit_job(job, cache=cache, use_cache=False)
        assert results_by_grid(via_sweep) == results_by_grid(via_job)


class TestResumeEquivalence:
    def _reference(self, tmp_path):
        """Uninterrupted run in a fully separate store."""
        ref_cache = ResultCache(tmp_path / "ref-cache", persist=True)
        job = create_job(
            "interrupt", tiny_cells(), cache_dir=tmp_path / "ref-jobs"
        )
        return results_by_grid(
            submit_job(job, cache=ref_cache, use_cache=False)
        )

    def test_serial_interrupt_then_resume_is_identical(self, tmp_path):
        reference = self._reference(tmp_path)
        cache = ResultCache(tmp_path / "cache", persist=True)
        job = create_job("interrupt", tiny_cells(), cache_dir=tmp_path)

        executed = []

        def boom(cell_result):
            executed.append(cell_result)
            if len(executed) == 2:
                raise RuntimeError("interrupted")

        with pytest.raises(RuntimeError, match="interrupted"):
            submit_job(job, cache=cache, use_cache=False, progress=boom)
        # The two finished cells were journaled before the crash.
        assert job.journal().completed_count() == 2

        resumed = resume_job(
            job.job_id, cache=cache, use_cache=False, cache_dir=tmp_path
        )
        assert results_by_grid(resumed) == reference
        # Only the missing cells were simulated on resume.
        assert resumed.cache_misses == len(job.cells) - 2

    def test_simulated_pool_collapse_then_resume(self, tmp_path, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        reference = self._reference(tmp_path)
        cache = ResultCache(tmp_path / "cache", persist=True)
        job = create_job("interrupt", tiny_cells(), cache_dir=tmp_path)

        shutdown_worker_pool()
        monkeypatch.setattr(_par, "_worker", _dying_worker)
        with pytest.raises(BrokenProcessPool):
            submit_job(job, max_workers=2, cache=cache, use_cache=False)
        monkeypatch.undo()
        shutdown_worker_pool()

        resumed = resume_job(
            job.job_id,
            max_workers=2,
            cache=cache,
            use_cache=False,
            cache_dir=tmp_path,
        )
        assert results_by_grid(resumed) == reference

    def test_sigkilled_worker_then_resume(self, tmp_path, monkeypatch):
        """The real crash: a worker SIGKILLs itself mid-job (via the
        REPRO_TEST_KILL_CELL hook), poisoning the shared pool."""
        from concurrent.futures.process import BrokenProcessPool

        reference = self._reference(tmp_path)
        cache = ResultCache(tmp_path / "cache", persist=True)
        job = create_job("interrupt", tiny_cells(), cache_dir=tmp_path)

        # The pool forks lazily; recycle it so workers inherit the env var.
        shutdown_worker_pool()
        monkeypatch.setenv("REPRO_TEST_KILL_CELL", "alloy-map-i/gcc_r")
        with pytest.raises(BrokenProcessPool):
            submit_job(job, max_workers=2, cache=cache, use_cache=False)
        monkeypatch.delenv("REPRO_TEST_KILL_CELL")

        resumed = resume_job(
            job.job_id,
            max_workers=2,
            cache=cache,
            use_cache=False,
            cache_dir=tmp_path,
        )
        assert results_by_grid(resumed) == reference
        # Across crash + resume the journal converged to the full job.
        assert job.journal().completed_count() == len(job.cells)

    def test_resume_with_cache_backfills_journal(self, tmp_path):
        """Cells already in the result cache are journaled on first touch,
        so the journal converges even when nothing is simulated."""
        cache = ResultCache(tmp_path / "cache", persist=True)
        run_sweep(tiny_cells(), cache=cache)  # warm the result cache
        job = create_job("backfill", tiny_cells(), cache_dir=tmp_path)
        report = submit_job(job, cache=cache)
        assert report.cache_hits == len(job.cells)
        assert job.journal().completed_count() == len(job.cells)


class TestExperimentJobs:
    def test_experiment_sweeps_land_as_named_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.common import (
            current_experiment_job,
            experiment_job,
            sweep,
        )

        assert current_experiment_job() is None
        with experiment_job("unit-exp"):
            assert current_experiment_job() == "unit-exp"
            sweep(
                ["alloy-map-i"],
                ["sphinx_r"],
                quick=True,
                config=tiny_config(),
                max_workers=1,
            )
        assert current_experiment_job() is None
        names = [info.name for info in list_jobs(tmp_path)]
        assert names == ["unit-exp"]
        assert list_jobs(tmp_path)[0].completed_cells == 2
