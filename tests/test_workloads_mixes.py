"""Tests for heterogeneous mixes: catalog integrity, determinism, and
first-class behavior through arena / sweep / jobs layers."""

import dataclasses

import numpy as np
import pytest

from repro.workloads.arena import WorkloadParams, get_workload_arena
from repro.workloads.mixes import (
    MIXES,
    generate_mix_workload,
    get_mix,
    is_mix,
)
from repro.workloads.spec import (
    ALL_BENCHMARKS,
    generate_workload,
    resolve_workload,
)


class TestMixCatalog:
    def test_seven_mixes(self):
        assert sorted(MIXES) == [f"mix{i}" for i in range(1, 8)]

    def test_members_are_distinct_catalog_benchmarks(self):
        for name, spec in MIXES.items():
            assert len(spec.benchmarks) == 8, name
            assert len(set(spec.benchmarks)) == 8, name
            for member in spec.benchmarks:
                assert member in ALL_BENCHMARKS, (name, member)

    def test_nominal_mpki_strictly_increasing(self):
        mpkis = [MIXES[f"mix{i}"].nominal_mpki for i in range(1, 8)]
        assert all(a < b for a, b in zip(mpkis, mpkis[1:])), mpkis

    def test_lookup(self):
        assert is_mix("mix4")
        assert not is_mix("mcf_r")
        assert get_mix("mix4").name == "mix4"
        with pytest.raises(KeyError, match="unknown mix"):
            get_mix("mix99")

    def test_benchmark_for_core_cycles(self):
        spec = get_mix("mix1")
        assert spec.benchmark_for_core(0) == spec.benchmarks[0]
        assert spec.benchmark_for_core(9) == spec.benchmarks[1]

    def test_resolve_workload_accepts_mixes(self):
        assert resolve_workload("mix2") == "mix2"
        with pytest.raises(KeyError, match="mixes"):
            resolve_workload("mix99")


class TestMixGeneration:
    def test_cores_run_different_benchmarks(self):
        # Each core's trace must equal the rate-mode trace of its assigned
        # benchmark at the same seed/stride — and those differ per core.
        mix = generate_mix_workload("mix7", num_cores=3, reads_per_core=400)
        spec = get_mix("mix7")
        for core_id in range(3):
            rate = generate_workload(
                spec.benchmark_for_core(core_id),
                num_cores=core_id + 1,
                reads_per_core=400,
            )
            assert np.array_equal(
                mix.cores[core_id].addresses, rate.cores[core_id].addresses
            ), core_id
        assert not np.array_equal(
            mix.cores[0].addresses[:100], mix.cores[1].addresses[:100]
        )

    def test_deterministic(self):
        a = generate_mix_workload("mix3", num_cores=2, reads_per_core=300)
        b = generate_mix_workload("mix3", num_cores=2, reads_per_core=300)
        for x, y in zip(a.cores, b.cores):
            assert np.array_equal(x.addresses, y.addresses)
            assert np.array_equal(x.gaps, y.gaps)
            assert np.array_equal(x.is_write, y.is_write)

    def test_seed_changes_content(self):
        a = generate_mix_workload("mix3", num_cores=2, reads_per_core=300, seed=1)
        b = generate_mix_workload("mix3", num_cores=2, reads_per_core=300, seed=2)
        assert not np.array_equal(a.cores[0].addresses, b.cores[0].addresses)


class TestMixArena:
    def test_arena_builds_and_persists_mixes(self, tmp_path):
        arena = get_workload_arena(tmp_path)
        params = WorkloadParams(
            benchmark="mix2", num_cores=2, reads_per_core=250
        )
        built, tele = arena.fetch(params)
        assert tele["trace_source"] == "built"
        again, tele = arena.fetch(params)
        assert tele["trace_source"] == "memo"
        assert again is built
        # A fresh arena over the same directory loads the persisted npz.
        from repro.workloads.arena import WorkloadArena

        cold = WorkloadArena(directory=tmp_path)
        loaded, tele = cold.fetch(params)
        assert tele["trace_source"] == "npz"
        for a, b in zip(loaded.cores, built.cores):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.gaps, b.gaps)

    def test_mix_key_distinct_from_benchmark_key(self):
        mix = WorkloadParams(benchmark="mix1", num_cores=2, reads_per_core=100)
        bench = WorkloadParams(
            benchmark="mcf_r", num_cores=2, reads_per_core=100
        )
        assert mix.key() != bench.key()

    def test_mix_revision_in_key(self, monkeypatch):
        params = WorkloadParams(benchmark="mix1", num_cores=2, reads_per_core=100)
        before = params.key()
        import repro.workloads.mixes as mixes

        monkeypatch.setattr(mixes, "MIX_REVISION", mixes.MIX_REVISION + 1)
        assert params.key() != before


class TestMixSweeps:
    def _cells(self):
        from repro.sim.parallel import make_cells

        return make_cells(
            ("no-cache", "alloy-map-i"), ("mix1",), reads_per_core=400
        )

    def test_serial_vs_parallel_bit_identical(self):
        from repro.sim.parallel import run_sweep

        serial = run_sweep(self._cells(), max_workers=1, use_cache=False)
        parallel = run_sweep(self._cells(), max_workers=2, use_cache=False)
        for a, b in zip(serial.cells, parallel.cells):
            assert dataclasses.asdict(a.result) == dataclasses.asdict(
                b.result
            ), (a.cell.design, a.cell.benchmark)
        assert parallel.workloads_unique == 1

    def test_second_sweep_all_cache_hits(self, tmp_path):
        from repro.sim.parallel import ResultCache, run_sweep

        cache = ResultCache(tmp_path, persist=True)
        first = run_sweep(self._cells(), cache=cache, use_cache=True)
        assert first.cache_hits == 0
        second = run_sweep(self._cells(), cache=cache, use_cache=True)
        assert second.cache_hits == len(self._cells())

    def test_mix_cells_journal_through_jobs(self, tmp_path):
        from repro.jobs import create_job, open_job, submit_job

        cells = self._cells()
        job = create_job("mix-job", cells, cache_dir=tmp_path)
        report = submit_job(job, use_cache=False)
        assert len(report.cells) == len(cells)
        reopened = open_job("mix-job", cache_dir=tmp_path)
        assert reopened.completed_cells() == len(cells)
        replay = submit_job(reopened, use_cache=False)
        for a, b in zip(report.cells, replay.cells):
            assert dataclasses.asdict(a.result) == dataclasses.asdict(b.result)

    def test_explore_space_accepts_mix_axis(self):
        from repro.explore.space import ExploreSpace

        space = ExploreSpace(
            designs=("alloy-map-i",),
            benchmarks=("mix1", "sphinx"),
            page_policies=("open",),
            line_bursts=(4,),
            cache_mbs=(128,),
            timings=("paper",),
        )
        # Canonicalized: suffix-less names resolve, mixes pass through.
        assert space.benchmarks == ("mix1", "sphinx_r")
        with pytest.raises(KeyError):
            ExploreSpace(benchmarks=("mix99",))
