"""Tests for memory access predictors (paper Section 5)."""

import pytest

from repro.core.predictors import (
    MAC_MAX,
    MAC_MSB_THRESHOLD,
    MapGPredictor,
    MapIPredictor,
    PamPredictor,
    PerfectPredictor,
    SamPredictor,
    folded_xor,
    make_predictor,
)


class TestFoldedXor:
    def test_small_value_passthrough(self):
        assert folded_xor(0x3, 8) == 0x3

    def test_folds_high_bits(self):
        assert folded_xor(0x100, 8) == 0x1
        assert folded_xor(0x101, 8) == 0x0  # high byte xors low byte

    def test_range(self):
        for value in (0, 1, 0xDEADBEEF, 2**63):
            assert 0 <= folded_xor(value, 8) < 256

    def test_zero(self):
        assert folded_xor(0, 8) == 0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            folded_xor(1, 0)

    def test_distributes_pcs(self):
        indices = {folded_xor(0x400000 + i * 4, 8) for i in range(64)}
        assert len(indices) == 64


class TestStaticPredictors:
    def test_sam_always_predicts_cache(self):
        p = SamPredictor(num_cores=2)
        assert not p.predict(0, 0x400)
        p.update(0, 0x400, went_to_memory=True)
        assert not p.predict(0, 0x400)

    def test_pam_always_predicts_memory(self):
        p = PamPredictor(num_cores=2)
        assert p.predict(1, 0x400)
        p.update(1, 0x400, went_to_memory=False)
        assert p.predict(1, 0x400)

    def test_static_predictors_are_free(self):
        assert SamPredictor(1).latency_cycles == 0
        assert PamPredictor(1).latency_cycles == 0
        assert SamPredictor(1).storage_bits_per_core() == 0


class TestMapG:
    def test_initial_state_is_midpoint(self):
        p = MapGPredictor(num_cores=1)
        assert p.counter(0) == MAC_MSB_THRESHOLD

    def test_trains_toward_memory(self):
        p = MapGPredictor(num_cores=1)
        for _ in range(4):
            p.update(0, 0, went_to_memory=True)
        assert p.counter(0) == MAC_MAX
        assert p.predict(0, 0)

    def test_trains_toward_cache(self):
        p = MapGPredictor(num_cores=1)
        for _ in range(4):
            p.update(0, 0, went_to_memory=False)
        assert p.counter(0) == 0
        assert not p.predict(0, 0)

    def test_saturates(self):
        p = MapGPredictor(num_cores=1)
        for _ in range(100):
            p.update(0, 0, went_to_memory=True)
        assert p.counter(0) == MAC_MAX

    def test_per_core_isolation(self):
        p = MapGPredictor(num_cores=2)
        for _ in range(4):
            p.update(0, 0, went_to_memory=True)
            p.update(1, 0, went_to_memory=False)
        assert p.predict(0, 0)
        assert not p.predict(1, 0)

    def test_storage_is_3_bits(self):
        assert MapGPredictor(8).storage_bits_per_core() == 3

    def test_history_beats_hit_rate(self):
        """The paper's MMMMHHHH example: a history predictor adapts within
        each phase rather than tracking the 50% aggregate hit rate."""
        p = MapGPredictor(num_cores=1)
        correct = 0
        # Phases of 16: a 3-bit MAC needs 4 outcomes to cross its MSB, so
        # it is right for 12 of every 16 — far above the 50% that raw
        # hit-rate prediction would achieve on this stream.
        outcomes = [True] * 16 + [False] * 16
        for went_to_memory in outcomes * 8:
            if p.predict(0, 0) == went_to_memory:
                correct += 1
            p.update(0, 0, went_to_memory)
        assert correct / (len(outcomes) * 8) > 0.6

    def test_one_cycle_latency(self):
        assert MapGPredictor(1).latency_cycles == 1


class TestMapI:
    def test_storage_is_96_bytes_per_core(self):
        """Section 5.3.2: 256 x 3-bit MACT = 96 bytes per core."""
        p = MapIPredictor(num_cores=8)
        assert p.storage_bits_per_core() == 256 * 3
        assert p.storage_bits_per_core() / 8 == 96

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MapIPredictor(1, entries=100)

    def test_per_pc_separation(self):
        p = MapIPredictor(num_cores=1)
        pc_hit, pc_miss = 0x400000, 0x400004
        for _ in range(4):
            p.update(0, pc_hit, went_to_memory=False)
            p.update(0, pc_miss, went_to_memory=True)
        assert not p.predict(0, pc_hit)
        assert p.predict(0, pc_miss)

    def test_per_core_tables(self):
        p = MapIPredictor(num_cores=2)
        for _ in range(4):
            p.update(0, 0x400, went_to_memory=True)
        assert p.predict(0, 0x400)
        assert not p.predict(1, 0x400) == p.predict(0, 0x400) or True
        # core 1 never trained: stays at the midpoint (predicts memory).
        assert p.counter(1, 0x400) == MAC_MSB_THRESHOLD

    def test_counter_bounds(self):
        p = MapIPredictor(num_cores=1)
        for _ in range(100):
            p.update(0, 0x1234, went_to_memory=True)
        assert p.counter(0, 0x1234) == MAC_MAX

    def test_beats_mapg_on_mixed_pcs(self):
        """Interleaved always-hit and always-miss PCs defeat a single
        global counter but not the per-PC table — the MAP-I argument."""
        map_g = MapGPredictor(num_cores=1)
        map_i = MapIPredictor(num_cores=1)
        stream = [(0x400000, False), (0x400004, True)] * 200
        correct_g = correct_i = 0
        for pc, went in stream:
            correct_g += map_g.predict(0, pc) == went
            correct_i += map_i.predict(0, pc) == went
            map_g.update(0, pc, went)
            map_i.update(0, pc, went)
        assert correct_i > correct_g
        assert correct_i / len(stream) > 0.95


class TestPerfect:
    def test_oracle(self):
        p = PerfectPredictor(num_cores=1)
        assert p.predict_with_oracle(True)
        assert not p.predict_with_oracle(False)

    def test_direct_predict_forbidden(self):
        with pytest.raises(RuntimeError):
            PerfectPredictor(1).predict(0, 0)

    def test_flags(self):
        p = PerfectPredictor(1)
        assert p.is_perfect
        assert p.latency_cycles == 0


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("sam", SamPredictor),
            ("pam", PamPredictor),
            ("map-g", MapGPredictor),
            ("map-i", MapIPredictor),
            ("perfect", PerfectPredictor),
        ],
    )
    def test_known(self, name, cls):
        assert isinstance(make_predictor(name, 8), cls)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("tage", 8)

    def test_prediction_counters(self):
        p = make_predictor("pam", 1)
        p.predict(0, 0)
        p.predict(0, 0)
        assert p.predicted_memory == 2
        assert p.predicted_cache == 0
