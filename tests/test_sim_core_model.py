"""Tests for the trace-driven core model."""

import numpy as np
import pytest

from repro.sim.core_model import Core, warmup_split
from repro.workloads.trace import CoreTrace


def make_trace(n=5):
    return CoreTrace(
        gaps=np.arange(n, dtype=float),
        addresses=np.arange(n, dtype=np.int64) * 10,
        is_write=np.array([i % 2 == 1 for i in range(n)]),
        pcs=np.arange(n, dtype=np.int64) + 0x400,
        instructions=n * 100,
    )


class TestCore:
    def test_iteration(self):
        core = Core(0, make_trace(3))
        records = []
        while core.has_next():
            records.append(core.next_record())
        assert records == [(0, False, 0x400), (10, True, 0x401), (20, False, 0x402)]

    def test_peek_gap(self):
        core = Core(0, make_trace(3))
        assert core.peek_gap() == 0.0
        core.next_record()
        assert core.peek_gap() == 1.0

    def test_counts(self):
        core = Core(0, make_trace(4))
        while core.has_next():
            core.next_record()
        assert core.reads_issued == 2
        assert core.writes_issued == 2

    def test_start_index_skips_warmup(self):
        core = Core(0, make_trace(5), start_index=3)
        assert core.remaining == 2
        assert core.next_record()[0] == 30

    def test_progress(self):
        core = Core(0, make_trace(4))
        assert core.progress() == 0.0
        core.next_record()
        assert core.progress() == 0.25


class TestWarmupSplit:
    def test_quarter(self):
        assert warmup_split(make_trace(100), 0.25) == 25

    def test_zero(self):
        assert warmup_split(make_trace(100), 0.0) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            warmup_split(make_trace(10), 1.0)
        with pytest.raises(ValueError):
            warmup_split(make_trace(10), -0.1)
