"""Tests for experiment result containers and rendering."""

import pytest

from repro.experiments.report import ExperimentResult, render_table


@pytest.fixture
def result():
    r = ExperimentResult(
        experiment_id="figX",
        title="Demo",
        headers=["workload", "speedup"],
    )
    r.add_row("mcf_r", 1.234567)
    r.add_row("gcc_r", 2.0)
    r.add_note("a note")
    return r


class TestContainer:
    def test_add_row(self, result):
        assert len(result.rows) == 2

    def test_column(self, result):
        assert result.column("workload") == ["mcf_r", "gcc_r"]
        assert result.column("speedup") == [1.234567, 2.0]

    def test_column_unknown(self, result):
        with pytest.raises(ValueError):
            result.column("nope")

    def test_row_by_key(self, result):
        assert result.row_by_key("gcc_r")[1] == 2.0

    def test_row_by_key_missing(self, result):
        with pytest.raises(KeyError):
            result.row_by_key("lbm_r")


class TestRendering:
    def test_contains_title_and_id(self, result):
        text = render_table(result)
        assert "figX" in text and "Demo" in text

    def test_floats_formatted(self, result):
        assert "1.235" in render_table(result)

    def test_notes_appended(self, result):
        assert "note: a note" in render_table(result)

    def test_columns_aligned(self, result):
        lines = render_table(result).splitlines()
        header_line = lines[1]
        separator = lines[2]
        assert len(header_line) == len(separator)

    def test_str_dunder(self, result):
        assert str(result) == result.render()

    def test_int_cells(self):
        r = ExperimentResult("t", "t", headers=["a"], rows=[[42]])
        assert "42" in render_table(r)
