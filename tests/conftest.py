"""Suite-wide fixtures.

The persistent sweep cache (``repro.sim.parallel``) defaults to
``.repro_cache/`` under the working directory. Tests must never read
results cached by an earlier (possibly different-code) run, nor litter the
repo, so the whole session is pointed at a throwaway directory unless the
caller explicitly pins ``REPRO_CACHE_DIR``.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    if "REPRO_CACHE_DIR" in os.environ:
        yield
        return
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
