"""Write-path and background-traffic tests for every design.

Writebacks are posted (never block the core) but must generate the right
device traffic: cache writes on hits, memory writes on misses, and the
LH-Cache's read-modify-write tag dance.
"""

import pytest

from repro.dram.device import DramDevice
from repro.dramcache.alloy import AlloyCacheDesign
from repro.dramcache.ideal_lo import IdealLODesign
from repro.dramcache.lh_cache import LHCacheDesign
from repro.dramcache.sram_tag import SramTagDesign
from repro.sim.config import SystemConfig
from repro.units import MB


class FakeScheduler:
    def __init__(self):
        self.pending = []

    def __call__(self, when, fn):
        self.pending.append((when, fn))

    def drain(self):
        while self.pending:
            self.pending.sort(key=lambda item: item[0])
            when, fn = self.pending.pop(0)
            fn(when)


@pytest.fixture
def env():
    config = SystemConfig(cache_size_bytes=256 * MB, capacity_scale=4096)
    return (
        config,
        DramDevice(config.stacked, name="stacked"),
        DramDevice(config.offchip, name="memory"),
        FakeScheduler(),
    )


def write(design, line, sched, t=0.0):
    outcome = design.access(t, line, True, 0, 0)
    sched.drain()
    return outcome


class TestWritesArePosted:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda c, s, m, sch: SramTagDesign(c, s, m, sch, ways=32),
            lambda c, s, m, sch: LHCacheDesign(c, s, m, sch),
            lambda c, s, m, sch: AlloyCacheDesign(c, s, m, sch, predictor=None),
            lambda c, s, m, sch: IdealLODesign(c, s, m, sch),
        ],
    )
    def test_write_completes_immediately(self, env, factory):
        config, stacked, memory, sched = env
        design = factory(config, stacked, memory, sched)
        outcome = design.access(5.0, 0, True, 0, 0)
        assert outcome.done == 5.0


class TestWriteHits:
    def test_sram_write_hit_goes_to_stacked(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        design.warm(0, False, 0, 0)
        write(design, 0, sched)
        assert stacked.stats.counter("write_accesses").value == 1
        assert design.stats.counter("memory_writes").value == 0
        assert design.tags.is_dirty(0)

    def test_lh_write_hit_reads_tags_then_writes(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        write(design, 0, sched)
        # One tag read + one data write.
        assert stacked.stats.counter("read_accesses").value == 1
        assert stacked.stats.counter("write_accesses").value == 1

    def test_alloy_write_hit_probes_then_writes_tad(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        design.warm(0, False, 0, 0)
        write(design, 0, sched)
        assert stacked.stats.counter("read_accesses").value == 1
        assert stacked.stats.counter("write_accesses").value == 1
        assert design.cache.is_dirty(0)

    def test_ideal_write_hit_single_line_write(self, env):
        config, stacked, memory, sched = env
        design = IdealLODesign(config, stacked, memory, sched)
        design.warm(0, False, 0, 0)
        write(design, 0, sched)
        assert stacked.stats.counter("write_accesses").value == 1


class TestWriteMisses:
    def test_sram_write_miss_goes_to_memory(self, env):
        config, stacked, memory, sched = env
        design = SramTagDesign(config, stacked, memory, sched, ways=32)
        write(design, 0, sched)
        assert design.stats.counter("memory_writes").value == 1
        assert not design.tags.probe(0)  # no allocation on write miss

    def test_lh_write_miss_goes_to_memory(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        write(design, 0, sched)
        assert design.stats.counter("memory_writes").value == 1
        assert 0 not in design.missmap

    def test_alloy_write_miss_probe_then_memory(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        write(design, 0, sched)
        assert stacked.stats.counter("read_accesses").value == 1  # TAD probe
        assert design.stats.counter("memory_writes").value == 1


class TestDirtyDataIntegrity:
    def test_alloy_dirty_victim_reaches_memory(self, env):
        config, stacked, memory, sched = env
        design = AlloyCacheDesign(config, stacked, memory, sched, predictor=None)
        design.warm(0, False, 0, 0)
        write(design, 0, sched)  # dirty line 0
        # Conflict-fill its set through the timed miss path.
        conflict = design.cache.num_sets
        design.access(1000.0, conflict, False, 0, 0)
        sched.drain()
        assert design.stats.counter("memory_writes").value == 1
        assert design.cache.probe(conflict)
        assert not design.cache.probe(0)

    def test_lh_dirty_victim_read_then_written_back(self, env):
        config, stacked, memory, sched = env
        design = LHCacheDesign(config, stacked, memory, sched)
        span = design.tags.num_sets
        design.warm(0, False, 0, 0)
        write(design, 0, sched)  # dirty line 0 in set 0
        # Fill set 0 beyond 29 ways via the timed path.
        t = 1000.0
        k = 1
        while design.tags.probe(0):
            design.access(t, k * span, False, 0, 0)
            sched.drain()
            t += 1000.0
            k += 1
        assert design.stats.counter("victim_reads").value >= 1
        assert design.stats.counter("memory_writes").value >= 1
