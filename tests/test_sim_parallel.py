"""Tests for the parallel sweep executor and the persistent result cache."""

import dataclasses
import json

import pytest

from repro.sim.config import SystemConfig
from repro.sim.parallel import (
    ResultCache,
    SweepCell,
    cell_key,
    default_workers,
    make_cells,
    run_sweep,
)
from repro.sim.results import SimResult

DESIGNS = ("no-cache", "alloy-map-i")
BENCHMARKS = ("sphinx_r", "gcc_r")


def tiny_config() -> SystemConfig:
    return SystemConfig(capacity_scale=4096)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache", persist=True)


def tiny_cells(reads=300, warmup=0.25, config=None):
    return make_cells(
        DESIGNS,
        BENCHMARKS,
        config=config or tiny_config(),
        reads_per_core=reads,
        warmup_fraction=warmup,
    )


class TestSerialParallelEquivalence:
    def test_parallel_matches_serial_exactly(self, tmp_path):
        """max_workers=4 must return identical SimResult fields to the
        serial path for a 2-design x 2-benchmark grid."""
        serial = run_sweep(
            tiny_cells(),
            max_workers=1,
            cache=ResultCache(tmp_path / "serial", persist=True),
        )
        parallel = run_sweep(
            tiny_cells(),
            max_workers=4,
            cache=ResultCache(tmp_path / "parallel", persist=True),
        )
        assert len(serial.cells) == len(parallel.cells) == 4
        for design in DESIGNS:
            for benchmark in BENCHMARKS:
                a = serial.result(design, benchmark)
                b = parallel.result(design, benchmark)
                assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_grid_and_speedups(self, cache):
        report = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        speedups = report.speedups("no-cache")
        for benchmark in BENCHMARKS:
            assert speedups[("no-cache", benchmark)] == pytest.approx(1.0)


class TestPersistentCache:
    def test_repeat_sweep_served_entirely_from_cache(self, cache):
        first = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        assert first.cache_misses == 4 and first.cache_hits == 0
        again = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        assert again.cache_hits == 4 and again.cache_misses == 0
        for design in DESIGNS:
            for benchmark in BENCHMARKS:
                assert dataclasses.asdict(
                    first.result(design, benchmark)
                ) == dataclasses.asdict(again.result(design, benchmark))

    def test_cache_survives_process_state(self, cache):
        """A fresh ResultCache over the same directory (a new process after
        a crash) serves the completed cells from disk."""
        run_sweep(tiny_cells(), max_workers=1, cache=cache)
        resumed = ResultCache(cache.directory, persist=True)
        report = run_sweep(tiny_cells(), max_workers=1, cache=resumed)
        assert report.cache_hits == 4 and report.cache_misses == 0

    def test_round_trip_preserves_every_field(self, cache):
        cell = SweepCell(
            "alloy-map-i", "sphinx_r", tiny_config(), reads_per_core=300
        )
        direct = run_sweep([cell], max_workers=1, cache=cache).cells[0].result
        cached = ResultCache(cache.directory, persist=True).get(cell.key())
        assert dataclasses.asdict(cached) == dataclasses.asdict(direct)

    def test_warmup_fraction_changes_key(self):
        config = tiny_config()
        default = cell_key("alloy-map-i", "mcf_r", config, 300, 0.25, 1)
        other = cell_key("alloy-map-i", "mcf_r", config, 300, 0.5, 1)
        assert default != other

    def test_any_config_field_changes_key(self):
        """Every SystemConfig field participates in the content key."""
        base = tiny_config()
        overrides = {
            "num_cores": 4,
            "l3_latency": 30,
            "sram_tag_latency": 12,
            "missmap_latency": 12,
            "predictor_latency": 2,
            "cache_size_bytes": base.cache_size_bytes // 2,
            "capacity_scale": 2048,
            "write_issue_cycles": 2,
            "mshrs_per_core": 2,
            "offchip_page_policy": "closed",
            "stacked_page_policy": "closed",
            "offchip": base.offchip.scaled(t_cas=40),
            "stacked": base.stacked.scaled(t_cas=20),
        }
        reference = cell_key("alloy-map-i", "mcf_r", base, 300, 0.25, 1)
        for field_name, value in overrides.items():
            changed = dataclasses.replace(base, **{field_name: value})
            assert cell_key(
                "alloy-map-i", "mcf_r", changed, 300, 0.25, 1
            ) != reference, field_name

    def test_config_change_invalidates_disk_entry(self, cache):
        """Runs under a modified config must not be served from entries
        written under the original config (and vice versa)."""
        run_sweep(tiny_cells(), max_workers=1, cache=cache)
        changed = dataclasses.replace(tiny_config(), l3_latency=48)
        report = run_sweep(
            tiny_cells(config=changed), max_workers=1, cache=cache
        )
        assert report.cache_hits == 0 and report.cache_misses == 4

    def test_warmup_change_invalidates_disk_entry(self, cache):
        run_sweep(tiny_cells(warmup=0.25), max_workers=1, cache=cache)
        report = run_sweep(
            tiny_cells(warmup=0.4), max_workers=1, cache=cache
        )
        assert report.cache_hits == 0 and report.cache_misses == 4

    def test_corrupt_cache_file_is_a_miss(self, cache):
        cell = tiny_cells()[0]
        run_sweep([cell], max_workers=1, cache=cache)
        path = cache.directory / f"{cell.key()}.json"
        path.write_text("{not json")
        fresh = ResultCache(cache.directory, persist=True)
        assert fresh.get(cell.key()) is None
        report = run_sweep([cell], max_workers=1, cache=fresh)
        assert report.cache_misses == 1

    def test_no_cache_mode_never_writes(self, tmp_path):
        cache = ResultCache(tmp_path / "off", persist=False)
        run_sweep(tiny_cells(), max_workers=1, cache=cache, use_cache=False)
        assert not (tmp_path / "off").exists()

    def test_duplicate_cells_simulated_once(self, cache):
        cell = tiny_cells()[0]
        report = run_sweep([cell, cell], max_workers=1, cache=cache)
        assert report.cache_misses == 1 and report.cache_hits == 1
        assert dataclasses.asdict(report.cells[0].result) == dataclasses.asdict(
            report.cells[1].result
        )

    def test_remember_populates_memory_tier_only(self, cache):
        """The public adoption API for worker-persisted results: visible
        to lookups, but never re-written to disk by the parent."""
        cell = tiny_cells()[0]
        result = run_sweep([cell], max_workers=1, cache=cache).cells[0].result
        other = ResultCache(cache.directory / "elsewhere", persist=True)
        other.remember(cell.key(), result, {"wall_seconds": 1.5})
        assert other.get_entry(cell.key()) == (result, {"wall_seconds": 1.5})
        assert not (cache.directory / "elsewhere").exists()


class TestResultSchema:
    """SimResult's on-disk shape: round-trips exactly, and changing the
    shape (or the schema version) invalidates every cached entry."""

    def test_json_round_trip_bit_identical(self, cache):
        cell = tiny_cells()[0]
        direct = run_sweep([cell], max_workers=1, cache=cache).cells[0].result
        wire = json.loads(json.dumps(direct.to_dict()))
        assert dataclasses.asdict(SimResult.from_dict(wire)) == (
            dataclasses.asdict(direct)
        )

    def test_stage_fields_survive_cache(self, cache):
        cell = SweepCell(
            "alloy-map-i", "sphinx_r", tiny_config(), reads_per_core=300
        )
        direct = run_sweep([cell], max_workers=1, cache=cache).cells[0].result
        cached = ResultCache(cache.directory, persist=True).get(cell.key())
        assert direct.stage_latency_means  # populated, not defaulted
        assert cached.stage_latency_means == direct.stage_latency_means
        assert cached.stage_latency_p95 == direct.stage_latency_p95
        assert cached.unattributed_cycles == direct.unattributed_cycles == 0.0

    def test_from_dict_defaults_missing_stage_fields(self):
        """Entries written before the lifecycle fields existed still load."""
        legacy = SimResult.from_dict(
            {"workload": "w", "design": "d", "cycles": 1.0}
        )
        assert legacy.stage_latency_means == {}
        assert legacy.stage_latency_p95 == {}
        assert legacy.unattributed_cycles == 0.0

    def test_result_shape_participates_in_key(self, monkeypatch):
        """Adding/removing a SimResult field must change every cell key, so
        stale cache entries can never satisfy a sweep expecting new fields."""
        import repro.sim.parallel as parallel

        config = tiny_config()
        reference = cell_key("alloy-map-i", "mcf_r", config, 300, 0.25, 1)
        monkeypatch.setattr(
            parallel, "result_signature", lambda: ("some_other_shape",)
        )
        assert cell_key("alloy-map-i", "mcf_r", config, 300, 0.25, 1) != (
            reference
        )

    def test_schema_version_participates_in_key(self, monkeypatch):
        import repro.sim.parallel as parallel

        config = tiny_config()
        reference = cell_key("alloy-map-i", "mcf_r", config, 300, 0.25, 1)
        monkeypatch.setattr(parallel, "CACHE_SCHEMA", parallel.CACHE_SCHEMA + 1)
        assert cell_key("alloy-map-i", "mcf_r", config, 300, 0.25, 1) != (
            reference
        )


class TestTelemetry:
    def test_cells_report_events_and_wall(self, cache):
        report = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        for cell in report.cells:
            assert cell.heap_events > 0
            assert cell.wall_seconds > 0
            assert cell.events_per_sec > 0
        assert report.total_heap_events == sum(
            c.heap_events for c in report.cells
        )
        assert report.elapsed_seconds > 0

    def test_render_mentions_cache_and_events(self, cache):
        report = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        rendered = report.render()
        assert "events/sec" in rendered
        assert "4 cells" in rendered
        assert "miss" in rendered

    def test_serial_sweep_builds_each_workload_once(self, cache):
        """2 designs x 2 benchmarks: the arena memoizes, so only the first
        cell of each benchmark runs the generators."""
        report = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        assert report.workloads_unique == 2
        # Either built fresh here or loaded from an arena persisted by an
        # earlier test in this session — never more than one build each.
        assert report.workloads_built <= 2
        sources = {c.trace_source for c in report.cells}
        assert sources <= {"built", "memo", "npz"}
        assert report.trace_build_seconds >= 0.0
        assert "unique workloads" in report.render()

    def test_parallel_sweep_builds_each_workload_once(self, tmp_path):
        """The fabric's acceptance telemetry: the parent materializes each
        unique workload exactly once and workers attach it shared."""
        report = run_sweep(
            tiny_cells(),
            max_workers=2,
            cache=ResultCache(tmp_path / "cache", persist=True),
        )
        assert report.workloads_unique == 2
        assert report.workloads_built <= 2
        for cell in report.cells:
            assert cell.trace_source in ("shared", "shared-memo")

    def test_cached_sweep_builds_no_workloads(self, cache):
        run_sweep(tiny_cells(), max_workers=1, cache=cache)
        again = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        assert again.cache_hits == 4
        assert again.workloads_unique == 0
        assert again.workloads_built == 0


class TestWorkerConfiguration:
    def test_default_workers_parses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_workers() == 3

    def test_default_workers_floors_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert default_workers() == 1

    def test_default_workers_warns_on_garbage(self, monkeypatch, capsys):
        """An unparseable REPRO_JOBS must be named, not swallowed."""
        monkeypatch.setenv("REPRO_JOBS", "four")
        assert default_workers() == 1
        captured = capsys.readouterr()
        assert "REPRO_JOBS" in captured.err and "four" in captured.err
        # Regression: the warning once went to stdout, corrupting piped
        # machine-readable sweep output. stdout must stay clean.
        assert captured.out == ""

    def test_cache_file_contains_cell_echo(self, cache):
        cell = tiny_cells()[0]
        run_sweep([cell], max_workers=1, cache=cache)
        data = json.loads(
            (cache.directory / f"{cell.key()}.json").read_text()
        )
        assert data["cell"]["design"] == cell.design
        assert data["cell"]["warmup_fraction"] == cell.warmup_fraction
        assert data["telemetry"]["heap_events"] > 0
        assert SimResult.from_dict(data["result"]).design


class TestRunnerCacheIntegration:
    def test_baseline_respects_warmup_fraction(self, monkeypatch, tmp_path):
        """The old module-global baseline cache ignored warmup_fraction;
        the persistent cache must not serve a 0.25-warmup baseline to a
        0.5-warmup speedup computation."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.sim.runner import baseline_result

        config = tiny_config()
        default = baseline_result(
            "sphinx_r", config, reads_per_core=300, warmup_fraction=0.25
        )
        halved = baseline_result(
            "sphinx_r", config, reads_per_core=300, warmup_fraction=0.5
        )
        assert default.cycles != halved.cycles

    def test_speedup_threads_warmup(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.sim.runner import speedup

        config = tiny_config()
        s, result = speedup(
            "perfect-l3",
            "sphinx_r",
            config,
            reads_per_core=300,
            warmup_fraction=0.5,
        )
        assert s > 1.0


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_sweep([], max_workers=0)

    def test_missing_cell_raises(self, cache):
        report = run_sweep(tiny_cells(), max_workers=1, cache=cache)
        with pytest.raises(KeyError):
            report.result("sram-tag", "sphinx_r")
