"""Tests for the SPEC-like benchmark catalog (paper Table 3)."""

import pytest

from repro.units import GB, MB
from repro.workloads.spec import (
    ALL_BENCHMARKS,
    CORE_ADDRESS_STRIDE_LINES,
    PRIMARY_BENCHMARKS,
    SECONDARY_BENCHMARKS,
    build_workload,
    get_benchmark,
)


class TestCatalog:
    def test_ten_primary_benchmarks(self):
        assert len(PRIMARY_BENCHMARKS) == 10

    def test_fourteen_secondary_benchmarks(self):
        assert len(SECONDARY_BENCHMARKS) == 14

    def test_no_name_collisions(self):
        assert len(ALL_BENCHMARKS) == 24

    def test_table3_values(self):
        mcf = PRIMARY_BENCHMARKS["mcf_r"]
        assert mcf.paper_mpki == 52.0
        assert mcf.paper_footprint_bytes == int(10.4 * GB)
        assert mcf.paper_perfect_l3_speedup == 4.9
        libq = PRIMARY_BENCHMARKS["libquantum_r"]
        assert libq.paper_mpki == 25.4
        assert libq.paper_footprint_bytes == 262 * MB

    def test_primary_sorted_by_perfect_l3(self):
        speedups = [s.paper_perfect_l3_speedup for s in PRIMARY_BENCHMARKS.values()]
        assert speedups == sorted(speedups, reverse=True)

    def test_primary_flag(self):
        assert all(s.primary for s in PRIMARY_BENCHMARKS.values())
        assert not any(s.primary for s in SECONDARY_BENCHMARKS.values())

    def test_all_have_components_and_gaps(self):
        for spec in ALL_BENCHMARKS.values():
            assert spec.pattern.components
            assert spec.pattern.gap_mean_cycles > 0
            total = sum(c.weight for c in spec.pattern.components)
            # Weights are relative (normalized at generation time) but the
            # catalog keeps them near 1.0 for readability.
            assert total == pytest.approx(1.0, abs=0.05)

    def test_libquantum_is_streaming(self):
        libq = PRIMARY_BENCHMARKS["libquantum_r"]
        seq = [c for c in libq.pattern.components if c.kind == "sequential"]
        assert seq and seq[0].weight >= 0.8
        assert seq[0].run_length >= 64


class TestLookup:
    def test_exact_name(self):
        assert get_benchmark("mcf_r").name == "mcf_r"

    def test_suffix_added(self):
        assert get_benchmark("mcf").name == "mcf_r"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("doom3")


class TestBuildWorkload:
    def test_rate_mode_shape(self):
        w = build_workload("sphinx_r", num_cores=4, reads_per_core=200)
        assert w.num_cores == 4
        assert all(t.num_reads == 200 for t in w.cores)

    def test_cores_have_disjoint_ranges(self):
        w = build_workload("sphinx_r", num_cores=4, reads_per_core=200)
        for i, trace in enumerate(w.cores):
            low = i * CORE_ADDRESS_STRIDE_LINES
            high = (i + 1) * CORE_ADDRESS_STRIDE_LINES
            assert int(trace.addresses.min()) >= low
            assert int(trace.addresses.max()) < high

    def test_cores_differ(self):
        import numpy as np

        w = build_workload("mcf_r", num_cores=2, reads_per_core=200)
        a = w.cores[0].addresses - 0 * CORE_ADDRESS_STRIDE_LINES
        b = w.cores[1].addresses - 1 * CORE_ADDRESS_STRIDE_LINES
        assert not np.array_equal(a, b)

    def test_cached(self):
        a = build_workload("gcc_r", num_cores=2, reads_per_core=100)
        b = build_workload("gcc_r", num_cores=2, reads_per_core=100)
        assert a is b

    def test_stride_not_power_of_two(self):
        # Power-of-two strides alias rate-mode copies onto identical sets in
        # designs with power-of-two set counts (regression guard).
        assert CORE_ADDRESS_STRIDE_LINES & (CORE_ADDRESS_STRIDE_LINES - 1) != 0

    def test_mpki_tracks_paper(self):
        w = build_workload("mcf_r", num_cores=2, reads_per_core=2000)
        spec = PRIMARY_BENCHMARKS["mcf_r"]
        assert w.mpki == pytest.approx(spec.paper_mpki, rel=0.05)


class TestResolveWorkload:
    def test_benchmark_names_canonicalized(self):
        from repro.workloads.spec import resolve_workload

        assert resolve_workload("gcc") == "gcc_r"
        assert resolve_workload("gcc_r") == "gcc_r"

    def test_mixes_pass_through(self):
        from repro.workloads.spec import resolve_workload

        assert resolve_workload("mix6") == "mix6"

    def test_trace_specs_validated_and_passed_through(self, tmp_path):
        from repro.workloads.spec import resolve_workload
        from repro.workloads.tracefile import trace_workload_spec

        path = tmp_path / "k6_rw.trc"
        path.write_text("0x1000 P_MEM_RD 5\n")
        spec = trace_workload_spec(path)
        assert resolve_workload(spec) == spec
        with pytest.raises(ValueError, match="malformed trace spec"):
            resolve_workload("trace:k6:abcd:")

    def test_unknown_name_lists_all_kinds(self):
        from repro.workloads.spec import resolve_workload

        with pytest.raises(KeyError) as err:
            resolve_workload("quake3")
        message = err.value.args[0]
        assert "mix1" in message and "mcf_r" in message and "trace:" in message

    def test_build_workload_builds_mixes(self):
        from repro.workloads.spec import build_workload

        w = build_workload("mix1", num_cores=2, reads_per_core=150)
        assert w.name == "mix1"
        assert w.num_cores == 2
