"""Tests for ASCII figure rendering, parallel CLI, and latency percentiles."""

import pytest

from repro.experiments.report import ExperimentResult, render_bars


@pytest.fixture
def result():
    r = ExperimentResult("figX", "demo", headers=["workload", "speedup"])
    r.add_row("mcf_r", 1.0)
    r.add_row("gcc_r", 2.0)
    return r


class TestRenderBars:
    def test_scales_to_max(self, result):
        chart = render_bars(result, "speedup", width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_labels_present(self, result):
        chart = render_bars(result, "speedup")
        assert "mcf_r" in chart and "gcc_r" in chart

    def test_values_annotated(self, result):
        assert "2.000" in render_bars(result, "speedup")

    def test_zero_peak(self):
        r = ExperimentResult("z", "z", headers=["a", "v"], rows=[["x", 0.0]])
        chart = render_bars(r, "v")
        assert "#" not in chart

    def test_custom_label_column(self, result):
        chart = render_bars(result, "speedup", label_column="workload")
        assert chart.splitlines()[1].startswith("mcf_r")


class TestCliExtras:
    def test_bars_flag(self, capsys):
        from repro.cli import main

        assert main(["fig1", "--bars"]) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_jobs_parallel(self, capsys):
        from repro.cli import main

        assert main(["fig1", "table4", "overheads", "--jobs", "3"]) == 0
        out = capsys.readouterr().out
        assert "== fig1" in out and "== table4" in out and "== overheads" in out

    def test_jobs_preserves_order(self, capsys):
        from repro.cli import main

        main(["table4", "fig1", "--jobs", "2"])
        out = capsys.readouterr().out
        assert out.index("== table4") < out.index("== fig1")


class TestHistogramPercentiles:
    def test_percentile_basic(self):
        from repro.stats import Histogram

        h = Histogram("lat", [10, 20, 30])
        for v in (5, 15, 15, 25):
            h.sample(v)
        assert h.percentile(0.25) == 10
        assert h.percentile(0.75) == 20
        assert h.percentile(1.0) == 30

    def test_percentile_overflow(self):
        from repro.stats import Histogram

        h = Histogram("lat", [10])
        h.sample(99)
        assert h.percentile(0.5) == float("inf")

    def test_percentile_empty_and_invalid(self):
        from repro.stats import Histogram

        h = Histogram("lat", [10])
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_simulation_reports_percentiles(self):
        from repro.sim.config import SystemConfig
        from repro.sim.runner import run_benchmark

        config = SystemConfig(capacity_scale=2048)
        result = run_benchmark("alloy-map-i", "sphinx_r", config, reads_per_core=400)
        assert result.hit_latency_p50 > 0
        assert result.hit_latency_p95 >= result.hit_latency_p50
        assert result.read_latency_p95 >= result.hit_latency_p50


class TestStridedPattern:
    def test_fixed_stride(self):
        import numpy as np

        from repro.units import MB
        from repro.workloads.patterns import (
            Component,
            PatternConfig,
            generate_core_trace,
        )

        cfg = PatternConfig(
            name="strided",
            mpki=20.0,
            components=(Component("strided", 1.0, 16 * MB, run_length=32),),
            write_fraction=0.0,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 500, seed=1)
        diffs = np.diff(trace.addresses)
        wrap_free = diffs[diffs > 0]
        assert float(np.mean(wrap_free == 32)) > 0.95

    def test_row_buffer_hostile(self):
        """A 32-line stride touches a new 2 KB row on every access."""
        from repro.dram.mapping import AddressMapping
        from repro.units import MB
        from repro.workloads.patterns import (
            Component,
            PatternConfig,
            generate_core_trace,
        )

        cfg = PatternConfig(
            name="strided",
            mpki=20.0,
            components=(Component("strided", 1.0, 32 * MB, run_length=32),),
            write_fraction=0.0,
            gap_mean_cycles=10.0,
        )
        trace = generate_core_trace(cfg, 300, seed=2)
        mapping = AddressMapping(2, 8, 2048)
        addresses = trace.addresses.tolist()
        same_row = sum(
            mapping.locate(a) == mapping.locate(b)
            for a, b in zip(addresses, addresses[1:])
        )
        assert same_row / (len(addresses) - 1) < 0.05
