"""Tests for the numpy-backed direct-mapped cache."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache


@pytest.fixture
def cache():
    return DirectMappedCache(num_sets=7)


class TestBasics:
    def test_validates(self):
        with pytest.raises(ValueError):
            DirectMappedCache(0)

    def test_capacity(self, cache):
        assert cache.capacity_lines == 7

    def test_modulo_indexing(self, cache):
        assert cache.set_index(0) == 0
        assert cache.set_index(8) == 1

    def test_miss_then_fill_then_hit(self, cache):
        assert not cache.lookup(3)
        cache.fill(3)
        assert cache.lookup(3)

    def test_probe_silent(self, cache):
        cache.fill(3)
        assert cache.probe(3)
        assert not cache.probe(10)  # same set, different tag
        assert cache.stats.counter("hits").value == 0


class TestConflicts:
    def test_same_set_conflict_evicts(self, cache):
        cache.fill(0)
        evicted = cache.fill(7)  # 7 % 7 == 0
        assert evicted.valid and evicted.line_address == 0
        assert not cache.probe(0)
        assert cache.probe(7)

    def test_refill_same_line_no_eviction(self, cache):
        cache.fill(0)
        assert not cache.fill(0).valid

    def test_distinct_sets_coexist(self, cache):
        for line in range(7):
            cache.fill(line)
        assert all(cache.probe(line) for line in range(7))
        assert cache.occupancy() == 1.0


class TestDirty:
    def test_write_hit_dirties(self, cache):
        cache.fill(1)
        cache.lookup(1, is_write=True)
        assert cache.is_dirty(1)

    def test_dirty_eviction(self, cache):
        cache.fill(1, dirty=True)
        evicted = cache.fill(8)
        assert evicted.dirty

    def test_refill_keeps_dirty(self, cache):
        cache.fill(1, dirty=True)
        cache.fill(1)
        assert cache.is_dirty(1)

    def test_invalidate(self, cache):
        cache.fill(1, dirty=True)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert not cache.is_dirty(1)


class TestStats:
    def test_hit_rate(self, cache):
        cache.fill(0)
        cache.lookup(0)
        cache.lookup(1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_resident_lines(self, cache):
        cache.fill(0)
        cache.fill(3)
        assert sorted(cache.resident_lines()) == [0, 3]

    def test_counters(self, cache):
        cache.fill(0, dirty=True)
        cache.fill(7)
        assert cache.stats.counter("fills").value == 2
        assert cache.stats.counter("evictions").value == 1
        assert cache.stats.counter("dirty_evictions").value == 1


class TestEquivalenceWithSetAssoc:
    def test_matches_one_way_set_assoc(self):
        """Direct-mapped must behave identically to a 1-way SetAssocCache."""
        from repro.cache.set_assoc import SetAssocCache

        dm = DirectMappedCache(13)
        sa = SetAssocCache(13, 1)
        import random

        rng = random.Random(5)
        for _ in range(500):
            line = rng.randrange(60)
            write = rng.random() < 0.3
            hit_dm = dm.lookup(line, is_write=write)
            hit_sa = sa.lookup(line, is_write=write)
            assert hit_dm == hit_sa
            if not hit_dm and not write:
                ev_dm = dm.fill(line)
                ev_sa = sa.fill(line)
                assert ev_dm.valid == ev_sa.valid
                assert ev_dm.line_address == ev_sa.line_address or not ev_dm.valid
                assert ev_dm.dirty == ev_sa.dirty
        assert sorted(dm.resident_lines()) == sorted(sa.resident_lines())
